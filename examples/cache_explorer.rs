//! Explore cache organizations: enumerate states and trace transitions.
//!
//! ```text
//! cargo run --example cache_explorer -- one-dup 3
//! ```
//!
//! Organizations: minimal, overflow-opt, shuffles, n-plus-one, one-dup,
//! two-stacks, static-shuffle.

use stack_caching::core::{compute_transition, sig_slots, Org, Policy};
use stack_caching::vm::Inst;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "one-dup".to_string());
    let regs: u8 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let org = match name.as_str() {
        "minimal" => Org::minimal(regs),
        "overflow-opt" => Org::overflow_opt(regs),
        "shuffles" => Org::arbitrary_shuffles(regs),
        "n-plus-one" => Org::n_plus_one(regs),
        "one-dup" => Org::one_dup(regs),
        "two-stacks" => Org::two_stacks(regs),
        "static-shuffle" => Org::static_shuffle(regs),
        other => {
            eprintln!("unknown organization `{other}`");
            std::process::exit(1);
        }
    };

    println!("{} — {} states:", org.name(), org.state_count());
    for (i, s) in org.states().iter().enumerate() {
        println!("  s{i}: {s}");
    }

    // Trace a little instruction sequence through the state machine.
    let policy = Policy::on_demand(regs);
    let sigs = sig_slots();
    let seq = [
        Inst::Lit(0),
        Inst::Lit(0),
        Inst::Dup,
        Inst::Swap,
        Inst::Add,
        Inst::Drop,
    ];
    let mut state = org.canonical_of_depth(0).expect("empty state");
    println!("\ntransitions from the empty state:");
    for inst in seq {
        let t = compute_transition(&org, &policy, state, &sigs[inst.opcode() as usize], 0);
        println!(
            "  {:6} {} -> {}   loads={} stores={} moves={}{}",
            inst.name(),
            org.state(state),
            org.state(t.next),
            t.loads,
            t.stores,
            t.moves,
            if t.eliminated { "  [eliminated]" } else { "" },
        );
        state = t.next;
    }
}
