//! A Forth calculator driven by the stack-caching pipeline.
//!
//! Pass a Forth expression (default shown below); it is compiled to VM
//! code, statically stack-cached, and executed:
//!
//! ```text
//! cargo run --example forth_calculator -- "2 3 + 4 * ."
//! ```

use stack_caching::core::interp::{compile_static, run_staticcache};
use stack_caching::forth::Forth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1 2 3 4 5 dup * swap dup * + + + + .".to_string());

    let mut forth = Forth::new();
    forth.interpret(&format!(": main {expr} ;"))?;
    let image = forth.image("main")?;

    println!("source:   {expr}");
    println!("compiled: {} VM instructions", image.program.len());
    println!("{}", image.program.listing());

    let exe = compile_static(&image.program, 2);
    println!(
        "statically cached: {} dispatching instructions ({} eliminated)",
        exe.stats.compiled, exe.stats.eliminated
    );

    let mut machine = image.machine();
    run_staticcache(&exe, &mut machine, 10_000_000)?;
    println!("result:   {}", machine.output_string());
    if !machine.stack().is_empty() {
        println!("stack:    {:?}", machine.stack());
    }
    Ok(())
}
