//! An interactive Forth REPL on top of the stack-caching pipeline.
//!
//! ```text
//! cargo run --example forth_repl
//! > : square dup * ;
//! > 7 square .
//! 49  ok
//! > .s
//! < > ok
//! > bye
//! ```
//!
//! Words are interpreted/compiled by the `stackcache-forth` outer
//! interpreter; load-time output (from `.`/`emit`/`.s`) is shown after
//! each line, Forth-style.

use std::io::{BufRead, Write};

use stack_caching::forth::Forth;

fn main() {
    let mut forth = Forth::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut shown = 0usize; // output bytes already printed

    println!("stack-caching Forth — type `bye` to quit, `.s` to see the stack");
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("bye") {
            break;
        }
        match forth.interpret(&line) {
            Ok(()) => {
                let output = forth.machine().output();
                if output.len() > shown {
                    print!("{}", String::from_utf8_lossy(&output[shown..]));
                    shown = output.len();
                }
                println!(" ok");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
