//! Run the `prims2x`-style text filter end to end on the whole interpreter
//! ladder and compare wall-clock times — the scenario behind the paper's
//! "keeping one item in a register gives 11% on prims2x".
//!
//! ```text
//! cargo run --release --example text_filter
//! ```

use std::time::Instant;

use stack_caching::core::interp::{compile_static, run_dyncache, run_staticcache};
use stack_caching::vm::interp::{run_baseline, run_tos};
use stack_caching::workloads::{prims2x_workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = prims2x_workload(Scale::Small);
    let p = &w.image.program;
    let fuel = w.fuel();
    let (m, out) = w.run_reference()?;
    println!(
        "prims2x: {} VM instructions, {} bytes of generated C",
        out.executed,
        m.output().len()
    );
    println!("first generated function:\n");
    for line in m.output_string().lines().take(5) {
        println!("  {line}");
    }
    println!();

    let time = |name: &str, f: &dyn Fn()| {
        let t = Instant::now();
        f();
        println!("  {name:<22} {:8.2} ms", t.elapsed().as_secs_f64() * 1e3);
    };
    println!("interpreter ladder:");
    time("baseline (fig. 11)", &|| {
        let mut m = w.image.machine();
        run_baseline(p, &mut m, fuel).expect("runs");
    });
    time("top-of-stack (fig. 12)", &|| {
        let mut m = w.image.machine();
        run_tos(p, &mut m, fuel).expect("runs");
    });
    time("dynamic cache (sec. 4)", &|| {
        let mut m = w.image.machine();
        run_dyncache(p, &mut m, fuel).expect("runs");
    });
    let exe = compile_static(p, 1);
    time("static cache (sec. 5)", &|| {
        let mut m = w.image.machine();
        run_staticcache(&exe, &mut m, fuel).expect("runs");
    });
    Ok(())
}
