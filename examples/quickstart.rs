//! Quickstart: build a small program, measure it under every caching
//! regime, and statically compile it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stack_caching::core::interp::{compile_static, run_staticcache};
use stack_caching::core::regime::{CachedRegime, SimpleRegime};
use stack_caching::core::staticcache::{self, StaticOptions, StaticRegime};
use stack_caching::core::{CostModel, Org};
use stack_caching::vm::{exec, Inst, Machine, ProgramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // : sumsq ( n -- 1^2 + 2^2 + ... + n^2 )  via an explicit loop
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(0)); // sum
    b.push(Inst::Lit(1000)); // limit+...
    b.push(Inst::OnePlus);
    b.push(Inst::Lit(1));
    b.push(Inst::DoSetup);
    let top = b.new_label();
    b.bind(top)?;
    b.push(Inst::LoopI);
    b.push(Inst::Dup);
    b.push(Inst::Mul);
    b.push(Inst::Add);
    b.loop_inc(top);
    b.push(Inst::Dot);
    b.push(Inst::Halt);
    let program = b.finish()?;

    // 1. Run it under instrumentation: no caching vs. a 3-register cache.
    let model = CostModel::paper();
    let mut simple = SimpleRegime::new();
    let mut m = Machine::new();
    exec::run_with_observer(&program, &mut m, 1_000_000, &mut simple)?;
    println!("program output: {}", m.output_string());
    println!(
        "uncached:        {:.3} argument-access cycles per instruction",
        simple.counts.access_per_inst(&model)
    );

    let org = Org::minimal(3);
    let mut cached = CachedRegime::new(&org, 3);
    let mut m = Machine::new();
    exec::run_with_observer(&program, &mut m, 1_000_000, &mut cached)?;
    println!(
        "dynamic caching: {:.3} argument-access cycles per instruction",
        cached.counts.access_per_inst(&model)
    );

    // 2. Static caching: count what the compiler eliminates.
    let sp = staticcache::compile(&program, &Org::static_shuffle(3), &StaticOptions::default());
    let mut static_reg = StaticRegime::new(&sp);
    let mut m = Machine::new();
    exec::run_with_observer(&program, &mut m, 1_000_000, &mut static_reg)?;
    println!(
        "static caching:  {:.3} net cycles per instruction ({} of {} dispatches eliminated)",
        static_reg.counts.net_overhead_per_inst(&model),
        static_reg.counts.insts - static_reg.counts.dispatches,
        static_reg.counts.insts,
    );

    // 3. And actually execute the statically compiled code.
    let exe = compile_static(&program, 1);
    let mut m = Machine::new();
    let stats = run_staticcache(&exe, &mut m, 1_000_000)?;
    println!(
        "real static interpreter: {} compiled dispatches for {} original instructions",
        stats.executed, simple.counts.insts,
    );
    println!("  (the wall-clock interpreter uses a 6-state organization that only");
    println!("   eliminates swap/drop/2drop; the counting pipeline above models the");
    println!("   richer one-shuffle organization of the paper's measurements)");
    println!("output again: {}", m.output_string());
    Ok(())
}
