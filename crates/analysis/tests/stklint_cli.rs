//! End-to-end tests for the `stklint` binary: exit codes and output for
//! the shipped fixtures under `tests/lint/`, and the `--deny` escalation
//! path.

use std::path::PathBuf;
use std::process::Command;

fn lint_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint")
}

fn stklint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stklint"))
}

#[test]
fn clean_fixture_exits_zero_and_reports_total() {
    let out = stklint()
        .arg(lint_dir().join("lint-clean.asm"))
        .output()
        .expect("run stklint");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(": total"), "{text}");
    assert!(text.contains("fuel bound 5"), "{text}");
    assert!(text.contains("[fuel-bound]"), "{text}");
}

#[test]
fn definite_underflow_exits_nonzero_with_a_witness() {
    let out = stklint()
        .arg(lint_dir().join("lint-underflow.asm"))
        .output()
        .expect("run stklint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(": rejected"), "{text}");
    assert!(text.contains("definite stack underflow"), "{text}");
    assert!(text.contains("witness:"), "{text}");
}

#[test]
fn deny_escalates_an_informational_lint_to_an_error() {
    // the clean fixture is exit-0 by default but carries a
    // const-foldable lint; denying it flips the exit code
    let out = stklint()
        .arg("--deny")
        .arg("const-foldable")
        .arg(lint_dir().join("lint-clean.asm"))
        .output()
        .expect("run stklint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("denied lint [const-foldable]"), "{text}");
}

#[test]
fn deny_all_spares_the_fuel_bound_certificate() {
    // `--deny all` escalates the smell lints but not the fuel-bound
    // certificate: a program whose only lint is its fuel bound stays 0
    let dir = std::env::temp_dir().join("stklint-test-deny-all");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bound-only.asm");
    std::fs::write(&file, "entry:\n    lit 1\n    .\n    halt\n").unwrap();
    let out = stklint()
        .arg("--deny")
        .arg("all")
        .arg(&file)
        .output()
        .expect("run stklint");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[fuel-bound]"), "{text}");
}

#[test]
fn unknown_slugs_and_missing_files_are_usage_errors() {
    let out = stklint()
        .arg("--deny")
        .arg("no-such-lint")
        .arg(lint_dir().join("lint-clean.asm"))
        .output()
        .expect("run stklint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = stklint()
        .arg(lint_dir().join("no-such-file.asm"))
        .output()
        .expect("run stklint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = stklint().output().expect("run stklint");
    assert_eq!(out.status.code(), Some(2), "no input files: {out:?}");
}

#[test]
fn recorded_corpus_stays_clean_under_the_recursion_deny() {
    // the recorded corpus is proven depth-safe; denying the
    // unbounded-recursion lint over it must stay exit-0 (the CI
    // self-check runs the same invocation)
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut cmd = stklint();
    cmd.arg("--deny").arg("unbounded-recursion");
    let mut any = false;
    for e in std::fs::read_dir(corpus).expect("corpus dir") {
        let p = e.expect("entry").path();
        if p.extension().is_some_and(|x| x == "asm") {
            cmd.arg(p);
            any = true;
        }
    }
    assert!(any, "corpus must not be empty");
    let out = cmd.output().expect("run stklint");
    assert!(out.status.success(), "{out:?}");
}
