//! Golden tests for the analyzer's clippy-style diagnostics: hand-built
//! underflowing and overflowing programs must produce the *exact*
//! offending instruction index, the containing word (with its name when
//! the program carries one), and the witness path from the word's entry.

use stackcache_analysis::{analyze, Bound, Verdict};
use stackcache_vm::{program_of, Checks, Inst, Machine, ProgramBuilder};

#[test]
fn straight_line_underflow_pinpoints_the_drop() {
    // ip 0 lit, ip 1 drop (back to empty), ip 2 drop — underflows
    let p = program_of(&[Inst::Lit(1), Inst::Drop, Inst::Drop, Inst::Halt]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    assert_eq!(a.proof.data_needed, 1);
    assert_eq!(a.proof.diagnostics.len(), 1);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 2, "the second drop is the offender");
    assert_eq!(d.word, 0);
    assert_eq!(d.inst, "drop");
    assert_eq!(d.witness, vec![0, 1, 2], "entry-to-offender path");
    assert!(
        d.reason
            .contains("definitely underflows: needs 1 cell(s) but at most 0 can be on the stack"),
        "{}",
        d.reason
    );
}

#[test]
fn branch_arm_underflow_follows_the_taken_arm_in_the_witness() {
    // the underflow sits on the branch-taken arm; the witness must route
    // through the branch, not the fall-through. The condition is a fetch
    // of unanalyzed memory, so neither arm constant-folds away.
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown condition, depth 1
        Inst::BranchIfZero(4), // 2: pops, depth 0 on both arms
        Inst::Halt,            // 3: fall-through
        Inst::Drop,            // 4: underflows
        Inst::Halt,            // 5
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.witness, vec![0, 1, 2, 4], "skips the fall-through halt");
}

#[test]
fn underflow_inside_a_named_word_names_it() {
    let mut b = ProgramBuilder::new();
    let word = b.new_label();
    b.entry_here();
    b.push(Inst::Lit(3)); // ip 0
    b.call(word); // ip 1
    b.push(Inst::Halt); // ip 2
    b.bind(word).unwrap();
    b.name_here("eat2");
    b.push(Inst::Drop); // ip 3: consumes the argument
    b.push(Inst::Drop); // ip 4: underflows (relative to the word's entry
                        // the demand is 2, but the caller provides 1)
    b.push(Inst::Return); // ip 5
    let p = b.finish().unwrap();
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.word, 3, "the diagnostic is attributed to the callee");
    assert_eq!(d.word_name.as_deref(), Some("eat2"));
    assert_eq!(d.inst, "drop");
    assert_eq!(d.witness, vec![3, 4], "path from the word's entry");
    let text = d.to_string();
    assert!(
        text.contains("`drop` at ip 4 in `eat2` (entry 3)"),
        "{text}"
    );
    assert!(text.contains("witness: 3 -> 4"), "{text}");
}

#[test]
fn path_definite_underflow_rejects_with_the_uncovered_route() {
    // ip 4's drop is covered on the fall-through path (depth 1) but not
    // on the branch-taken path (depth 0). The interpreter keeps the two
    // paths as separate abstract frames, so the uncovered one is a
    // *definite* underflow on that path: the verdict is rejected with
    // data_needed = 1, and admission falls back to checked execution
    // (the service only refuses when the preset stack is shallower than
    // the demand).
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown condition
        Inst::BranchIfZero(4), // 2: pops
        Inst::Lit(9),          // 3: fall-through cover
        Inst::Drop,            // 4: join; needs 1, has 0 or 1
        Inst::Halt,            // 5
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    assert_eq!(a.proof.data_needed, 1);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.witness, vec![0, 1, 2, 4], "the uncovered route");
    assert!(d.reason.contains("definitely underflows"), "{}", d.reason);
    // a rejected verdict never rides a fast path, whatever the preset
    let mut covered = Machine::with_memory(64);
    covered.set_stack(&[7]);
    assert_eq!(a.proof.admit(&covered), Checks::Full);
}

#[test]
fn input_driven_demand_loop_cannot_prove_a_finite_bound() {
    // each iteration eats one cell from *below* the program's entry
    // depth, and the trip count is an unanalyzed memory cell: the demand
    // has no finite bound, so no preset stack can ever cover it
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown trip count
        Inst::Dup,             // 2: loop head
        Inst::BranchIfZero(8), // 3
        Inst::Nip,             // 4: eats one below-entry cell
        Inst::OneMinus,        // 5
        Inst::Branch(2),       // 6
        Inst::Halt,            // 7: unreachable
        Inst::Drop,            // 8
        Inst::Halt,            // 9
    ]);
    let a = analyze(&p, None);
    assert!(
        matches!(a.proof.verdict, Verdict::Unknown | Verdict::Rejected),
        "{:?}",
        a.proof.verdict
    );
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4, "the nip is where the demand diverges");
    assert!(!d.witness.is_empty());
    // even a generous preset cannot cover an unbounded demand
    let mut m = Machine::with_memory(64);
    m.set_stack(&[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(a.proof.admit(&m), Checks::Full);
}

#[test]
fn unbounded_growth_is_guarded_with_overflow_checks_kept() {
    // an infinite push loop: no underflow anywhere, growth unbounded
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.entry_here();
    b.push(Inst::Lit(1)); // 0
    b.bind(top).unwrap();
    b.push(Inst::Dup); // 1
    b.branch(top); // 2
    let p = b.finish().unwrap();
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Guarded);
    assert_eq!(a.proof.data_max, Bound::Unbounded);
    assert!(a.proof.diagnostics.is_empty(), "guarded is not a finding");
    let m = Machine::with_memory(64);
    assert_eq!(
        a.proof.admit(&m),
        Checks::NoUnderflow,
        "underflow checks elided, overflow traps kept exact"
    );
}

#[test]
fn bounded_programs_prove_with_exact_growth() {
    let p = program_of(&[Inst::Lit(6), Inst::Dup, Inst::Mul, Inst::Dot, Inst::Halt]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Proven);
    assert_eq!(a.proof.data_needed, 0);
    assert_eq!(a.proof.data_max, Bound::Finite(2));
    assert!(a.proof.diagnostics.is_empty());
    assert_eq!(a.proof.admit(&Machine::with_memory(64)), Checks::None);
}
