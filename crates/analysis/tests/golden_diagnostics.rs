//! Golden tests for the analyzer's clippy-style diagnostics: hand-built
//! underflowing and overflowing programs must produce the *exact*
//! offending instruction index, the containing word (with its name when
//! the program carries one), and the witness path from the word's entry.

use stackcache_analysis::{analyze, AnalysisBudget, Bound, LintKind, Verdict};
use stackcache_vm::{program_of, Checks, Inst, Machine, ProgramBuilder};

#[test]
fn straight_line_underflow_pinpoints_the_drop() {
    // ip 0 lit, ip 1 drop (back to empty), ip 2 drop — underflows
    let p = program_of(&[Inst::Lit(1), Inst::Drop, Inst::Drop, Inst::Halt]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    assert_eq!(a.proof.data_needed, 1);
    assert_eq!(a.proof.diagnostics.len(), 1);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 2, "the second drop is the offender");
    assert_eq!(d.word, 0);
    assert_eq!(d.inst, "drop");
    assert_eq!(d.witness, vec![0, 1, 2], "entry-to-offender path");
    assert!(
        d.reason
            .contains("definitely underflows: needs 1 cell(s) but at most 0 can be on the stack"),
        "{}",
        d.reason
    );
}

#[test]
fn branch_arm_underflow_follows_the_taken_arm_in_the_witness() {
    // the underflow sits on the branch-taken arm; the witness must route
    // through the branch, not the fall-through. The condition is a fetch
    // of unanalyzed memory, so neither arm constant-folds away.
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown condition, depth 1
        Inst::BranchIfZero(4), // 2: pops, depth 0 on both arms
        Inst::Halt,            // 3: fall-through
        Inst::Drop,            // 4: underflows
        Inst::Halt,            // 5
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.witness, vec![0, 1, 2, 4], "skips the fall-through halt");
}

#[test]
fn underflow_inside_a_named_word_names_it() {
    let mut b = ProgramBuilder::new();
    let word = b.new_label();
    b.entry_here();
    b.push(Inst::Lit(3)); // ip 0
    b.call(word); // ip 1
    b.push(Inst::Halt); // ip 2
    b.bind(word).unwrap();
    b.name_here("eat2");
    b.push(Inst::Drop); // ip 3: consumes the argument
    b.push(Inst::Drop); // ip 4: underflows (relative to the word's entry
                        // the demand is 2, but the caller provides 1)
    b.push(Inst::Return); // ip 5
    let p = b.finish().unwrap();
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.word, 3, "the diagnostic is attributed to the callee");
    assert_eq!(d.word_name.as_deref(), Some("eat2"));
    assert_eq!(d.inst, "drop");
    assert_eq!(d.witness, vec![3, 4], "path from the word's entry");
    let text = d.to_string();
    assert!(
        text.contains("`drop` at ip 4 in `eat2` (entry 3)"),
        "{text}"
    );
    assert!(text.contains("witness: 3 -> 4"), "{text}");
}

#[test]
fn path_definite_underflow_rejects_with_the_uncovered_route() {
    // ip 4's drop is covered on the fall-through path (depth 1) but not
    // on the branch-taken path (depth 0). The interpreter keeps the two
    // paths as separate abstract frames, so the uncovered one is a
    // *definite* underflow on that path: the verdict is rejected with
    // data_needed = 1, and admission falls back to checked execution
    // (the service only refuses when the preset stack is shallower than
    // the demand).
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown condition
        Inst::BranchIfZero(4), // 2: pops
        Inst::Lit(9),          // 3: fall-through cover
        Inst::Drop,            // 4: join; needs 1, has 0 or 1
        Inst::Halt,            // 5
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Rejected);
    assert_eq!(a.proof.data_needed, 1);
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4);
    assert_eq!(d.witness, vec![0, 1, 2, 4], "the uncovered route");
    assert!(d.reason.contains("definitely underflows"), "{}", d.reason);
    // a rejected verdict never rides a fast path, whatever the preset
    let mut covered = Machine::with_memory(64);
    covered.set_stack(&[7]);
    assert_eq!(a.proof.admit(&covered), Checks::Full);
}

#[test]
fn input_driven_demand_loop_cannot_prove_a_finite_bound() {
    // each iteration eats one cell from *below* the program's entry
    // depth, and the trip count is an unanalyzed memory cell: the demand
    // has no finite bound, so no preset stack can ever cover it
    let p = program_of(&[
        Inst::Lit(0),          // 0: the address
        Inst::Fetch,           // 1: unknown trip count
        Inst::Dup,             // 2: loop head
        Inst::BranchIfZero(8), // 3
        Inst::Nip,             // 4: eats one below-entry cell
        Inst::OneMinus,        // 5
        Inst::Branch(2),       // 6
        Inst::Halt,            // 7: unreachable
        Inst::Drop,            // 8
        Inst::Halt,            // 9
    ]);
    let a = analyze(&p, None);
    assert!(
        matches!(a.proof.verdict, Verdict::Unknown | Verdict::Rejected),
        "{:?}",
        a.proof.verdict
    );
    let d = &a.proof.diagnostics[0];
    assert_eq!(d.ip, 4, "the nip is where the demand diverges");
    assert!(!d.witness.is_empty());
    // even a generous preset cannot cover an unbounded demand
    let mut m = Machine::with_memory(64);
    m.set_stack(&[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(a.proof.admit(&m), Checks::Full);
}

#[test]
fn unbounded_growth_is_guarded_with_overflow_checks_kept() {
    // an infinite push loop: no underflow anywhere, growth unbounded
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.entry_here();
    b.push(Inst::Lit(1)); // 0
    b.bind(top).unwrap();
    b.push(Inst::Dup); // 1
    b.branch(top); // 2
    let p = b.finish().unwrap();
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Guarded);
    assert_eq!(a.proof.data_max, Bound::Unbounded);
    assert!(a.proof.diagnostics.is_empty(), "guarded is not a finding");
    let m = Machine::with_memory(64);
    assert_eq!(
        a.proof.admit(&m),
        Checks::NoUnderflow,
        "underflow checks elided, overflow traps kept exact"
    );
}

#[test]
fn bounded_programs_prove_with_exact_growth() {
    let p = program_of(&[Inst::Lit(6), Inst::Dup, Inst::Mul, Inst::Dot, Inst::Halt]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Total, "loop-free: total");
    assert_eq!(a.proof.fuel_bound, Bound::Finite(5));
    assert_eq!(a.proof.data_needed, 0);
    assert_eq!(a.proof.data_max, Bound::Finite(2));
    assert!(a.proof.diagnostics.is_empty());
    assert_eq!(a.proof.admit(&Machine::with_memory(64)), Checks::None);
}

#[test]
fn nonzero_arithmetic_folds_the_branch_and_lints_it() {
    // the condition is *computed* — a byte load (in [0, 255]) plus one is
    // in [1, 256], proven non-zero — so the ?branch can never be taken
    let p = program_of(&[
        Inst::Lit(0),          // 0: address
        Inst::CFetch,          // 1: [0, 255]
        Inst::OnePlus,         // 2: [1, 256] — non-zero
        Inst::BranchIfZero(5), // 3: never taken
        Inst::Halt,            // 4: the only reachable exit
        Inst::Halt,            // 5: unreachable branch target
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Total);
    assert_eq!(a.proof.fuel_bound, Bound::Finite(5), "ips 0..=4 dispatch");
    let l = a
        .proof
        .lints
        .iter()
        .find(|l| l.kind == LintKind::NonzeroBranchFold)
        .expect("nonzero-branch-fold lint");
    assert_eq!(l.diag.ip, 3);
    assert_eq!(l.diag.inst, "?branch");
    assert_eq!(l.diag.witness, vec![0, 1, 2, 3]);
    assert_eq!(
        l.diag.reason,
        "condition proven nonzero: the branch to 5 is never taken"
    );
}

#[test]
fn dead_arm_is_linted_and_its_growth_is_eliminated() {
    // `5 dup -` is always zero: the branch is always taken and the
    // fall-through arm (which would push three more cells) is unreachable,
    // so the proven growth bound shrinks to the live path's peak of 2
    let p = program_of(&[
        Inst::Lit(5),          // 0
        Inst::Dup,             // 1: peak depth 2
        Inst::Sub,             // 2: always 0
        Inst::BranchIfZero(8), // 3: always taken
        Inst::Lit(9),          // 4: dead arm...
        Inst::Lit(9),          // 5
        Inst::Lit(9),          // 6: ...would peak at depth 3
        Inst::Halt,            // 7
        Inst::Halt,            // 8: the live exit
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Total);
    assert_eq!(a.proof.fuel_bound, Bound::Finite(5), "ips 0,1,2,3,8");
    assert_eq!(
        a.proof.data_max,
        Bound::Finite(2),
        "the dead arm's pushes do not count"
    );
    let l = a
        .proof
        .lints
        .iter()
        .find(|l| l.kind == LintKind::DeadArm)
        .expect("dead-arm lint");
    assert_eq!(l.diag.ip, 3);
    assert_eq!(l.diag.witness, vec![0, 1, 2, 3]);
    assert_eq!(
        l.diag.reason,
        "condition is always zero: the fall-through arm at 4 is unreachable"
    );
    let c = a
        .proof
        .lints
        .iter()
        .find(|l| l.kind == LintKind::ConstFoldable)
        .expect("const-foldable lint");
    assert_eq!(c.diag.ip, 2);
    assert_eq!(c.diag.reason, "constant-foldable: always evaluates to 0");
}

#[test]
fn constant_countdown_loop_gets_a_proven_fuel_bound() {
    // lit 3; L: 1-; dup; ?branch X; branch L; X: drop; halt
    let p = program_of(&[
        Inst::Lit(3),          // 0
        Inst::OneMinus,        // 1: loop head
        Inst::Dup,             // 2
        Inst::BranchIfZero(5), // 3
        Inst::Branch(1),       // 4
        Inst::Drop,            // 5
        Inst::Halt,            // 6
    ]);
    let a = analyze(&p, None);
    assert_eq!(a.proof.verdict, Verdict::Total);
    // 1 (lit) + 4 + 4 (two full iterations) + 3 (exit iteration)
    // + 2 (drop; halt) = 14, matching the interpreter exactly.
    let mut m = Machine::new();
    let measured = stackcache_vm::exec::run(&p, &mut m, 1 << 16)
        .unwrap()
        .executed;
    assert_eq!(a.proof.fuel_bound, Bound::Finite(14));
    assert_eq!(measured, 14);
    let l = a
        .proof
        .lints
        .iter()
        .find(|l| l.kind == LintKind::FuelBound)
        .expect("fuel-bound lint");
    assert_eq!(l.diag.ip, 0, "anchored at the entry");
    assert_eq!(
        l.diag.reason,
        "terminates within 14 instruction dispatch(es) from entry"
    );
}

#[test]
fn long_countdown_widens_at_the_loop_head_but_stays_total() {
    // the quick budget cannot unroll 100 iterations: the counter interval
    // is widened at the loop head (and linted), yet the depth proof holds
    // and the path-sensitive fuel pass still unrolls the constant bound
    let p = program_of(&[
        Inst::Lit(100),        // 0
        Inst::OneMinus,        // 1: loop head — widening point
        Inst::Dup,             // 2
        Inst::BranchIfZero(5), // 3
        Inst::Branch(1),       // 4
        Inst::Drop,            // 5
        Inst::Halt,            // 6
    ]);
    let a = analyze(&p, None);
    let w = a
        .proof
        .lints
        .iter()
        .find(|l| l.kind == LintKind::WideningLoopHead)
        .expect("widening-loop-head lint");
    assert_eq!(w.diag.ip, 1);
    assert_eq!(w.diag.reason, "value interval widened at loop head");
    assert_eq!(a.proof.verdict, Verdict::Total);
    let mut m = Machine::new();
    let measured = stackcache_vm::exec::run(&p, &mut m, 1 << 16)
        .unwrap()
        .executed;
    assert_eq!(a.proof.fuel_bound, Bound::Finite(measured as i64));
}

#[test]
fn deep_budget_proves_what_quick_must_guard() {
    // a push-per-iteration counted loop: quick widens the growing depth
    // to ∞ (guarded), deep unrolls all 20 iterations exactly (total)
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    let out = b.new_label();
    b.entry_here();
    b.push(Inst::Lit(20));
    b.bind(top).unwrap();
    b.push(Inst::Dup); // keep the counter, grow the stack
    b.push(Inst::OneMinus);
    b.push(Inst::Dup);
    b.push(Inst::ZeroGt);
    b.branch_if_zero(out);
    b.branch(top);
    b.bind(out).unwrap();
    b.push(Inst::Halt);
    let p = b.finish().unwrap();

    let quick = stackcache_analysis::analyze_with(&p, None, &AnalysisBudget::quick());
    assert_eq!(quick.proof.verdict, Verdict::Guarded);
    assert_eq!(quick.proof.data_max, Bound::Unbounded);

    let deep = stackcache_analysis::analyze_with(&p, None, &AnalysisBudget::deep());
    assert_eq!(deep.proof.verdict, Verdict::Total, "{:?}", deep.proof);
    let mut m = Machine::new();
    let out = stackcache_vm::exec::run(&p, &mut m, 1 << 16).unwrap();
    assert_eq!(deep.proof.fuel_bound, Bound::Finite(out.executed as i64));
    match deep.proof.data_max {
        Bound::Finite(d) => assert!(d >= 21, "covers the 20 pushed cells: {d}"),
        Bound::Unbounded => panic!("deep budget must bound the growth"),
    }
}
