//! Plain-text rendering of analysis results for the `figures analysis`
//! report and the CI gate.

use std::fmt::Write as _;

use crate::absint::Analysis;
use crate::fsm::FsmReport;

/// Render the abstract interpreter's result for one program: verdict,
/// whole-program bounds, the per-word table, and any diagnostics.
#[must_use]
pub fn render_analysis(title: &str, analysis: &Analysis) -> String {
    let p = &analysis.proof;
    let mut out = String::new();
    let _ = writeln!(out, "{title}: {}", p.verdict.name());
    let _ = writeln!(
        out,
        "  needs {} cell(s) on entry; data growth {}; rstack growth {}; fuel bound {}; {} word(s); {} frozen dep(s); {} lint(s)",
        p.data_needed,
        p.data_max,
        p.rstack_max,
        p.fuel_bound,
        p.words_analyzed,
        p.frozen_deps.len(),
        p.lints.len()
    );
    let _ = writeln!(
        out,
        "  {:>6}  {:<18} {:<10} {:>11} {:>8} {:>8} {:>8}",
        "entry", "word", "status", "net", "consumes", "grow", "rgrow"
    );
    for w in &analysis.words {
        let name = w.name.as_deref().unwrap_or("?");
        let net = match w.net {
            Some((lo, hi)) if lo == hi => format!("{lo}"),
            Some((lo, hi)) => format!("[{}]", join_bound(lo, hi)),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:>6}  {:<18} {:<10} {:>11} {:>8} {:>8} {:>8}",
            w.entry,
            name,
            w.status,
            net,
            w.consumes,
            w.grow.to_string(),
            w.r_grow.to_string()
        );
    }
    for d in &p.diagnostics {
        let _ = writeln!(out, "  warning: {d}");
    }
    for l in &p.lints {
        let _ = writeln!(out, "  lint: {l}");
    }
    out
}

fn join_bound(lo: i64, hi: i64) -> String {
    let show = |v: i64| {
        if v.abs() >= i64::MAX / 8 {
            (if v < 0 { "-∞" } else { "∞" }).to_string()
        } else {
            v.to_string()
        }
    };
    format!("{}, {}", show(lo), show(hi))
}

/// Render the model-checker reports as a table, one organization per
/// row, followed by any violations.
#[must_use]
pub fn render_fsm(reports: &[FsmReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>7} {:>9} {:>12} {:>11} {:>7}  verdict",
        "organization", "regs", "states", "policies", "transitions", "eliminated", "reach",
    );
    for r in reports {
        let reach = if r.exempt > 0 {
            format!("{}+{}R", r.reachable, r.exempt)
        } else {
            format!("{}", r.reachable)
        };
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>7} {:>9} {:>12} {:>11} {:>7}  {}",
            r.org,
            r.registers,
            r.states,
            r.policies,
            r.transitions,
            r.eliminated,
            reach,
            if r.ok() { "verified" } else { "FAILED" }
        );
    }
    for r in reports {
        for v in &r.violations {
            let _ = writeln!(out, "  violation: {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::analyze;
    use crate::fsm::check_fig18;
    use stackcache_vm::{program_of, Inst};

    #[test]
    fn analysis_report_mentions_verdict_and_words() {
        let p = program_of(&[Inst::Lit(2), Inst::Lit(3), Inst::Add, Inst::Dot, Inst::Halt]);
        let a = analyze(&p, None);
        let text = render_analysis("demo", &a);
        assert!(text.contains("demo: total"), "{text}");
        assert!(text.contains("fuel bound 5"), "{text}");
        assert!(text.contains("entry"), "{text}");
    }

    #[test]
    fn fsm_report_renders_one_row_per_org() {
        let reports = check_fig18(2);
        let text = render_fsm(&reports);
        assert_eq!(text.lines().count(), reports.len() + 1, "{text}");
        assert!(text.contains("verified"), "{text}");
    }
}
