//! Whole-program static analysis for stack-cached interpreters.
//!
//! Two verifiers feed the *verified unchecked fast path*:
//!
//! * [`absint`] — a whole-program abstract interpreter computing
//!   per-program-point stack-depth intervals by fixpoint dataflow. Its
//!   result is a [`SafetyProof`]: either every point is bounded — proving
//!   the absence of data- and return-stack underflow (and overflow, up to
//!   a declared capacity) — or the offending instruction is pinpointed
//!   with a clippy-style [`Diagnostic`] (instruction index, word name,
//!   witness path).
//! * [`fsm`] — a model checker that exhaustively verifies the cache-state
//!   transition tables of every Fig. 18 organization: closure,
//!   cached-item conservation, stack-pointer-offset consistency,
//!   reachability of all states, and move-minimality.
//!
//! A proof is *relative*: [`SafetyProof::admit`] composes it with a
//! concrete machine's preset stacks and capacity limits to pick the
//! strongest sound [`Checks`](stackcache_vm::Checks) level, which
//! `CompiledArtifact::run_with_checks` then executes without the elided
//! depth checks.
//!
//! # Examples
//!
//! ```
//! use stackcache_analysis::{analyze, Bound, Verdict};
//! use stackcache_vm::{program_of, Inst, Machine};
//!
//! let p = program_of(&[Inst::Lit(6), Inst::Dup, Inst::Mul, Inst::Dot, Inst::Halt]);
//! let a = analyze(&p, None);
//! // Loop-free and depth-safe: proven *total* with a finite fuel bound.
//! assert_eq!(a.proof.verdict, Verdict::Total);
//! assert_eq!(a.proof.fuel_bound, Bound::Finite(5));
//! let m = Machine::new();
//! assert_eq!(a.proof.admit(&m), stackcache_vm::Checks::None);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod absint;
pub mod fsm;
mod fuel;
pub mod proof;
pub mod report;

pub use absint::{analyze, analyze_with, Analysis, AnalysisBudget, WordReport};
pub use fsm::{check_fig18, check_org, FsmReport};
pub use proof::{Bound, Diagnostic, Lint, LintKind, SafetyProof, Verdict};
pub use report::{render_analysis, render_fsm};
