//! Whole-program abstract interpretation of depth bounds.
//!
//! The interpreter computes, for every reachable program point, an
//! interval of possible data-stack depths *relative to the containing
//! word's entry depth*, an exact relative return-stack frame, and a small
//! window of known top-of-stack constants. Per-word summaries (net
//! effect, consumption below entry, maximum growth) are composed over the
//! call graph to a fixpoint, seeded by `stackcache_vm::depth` effects and
//! widened on recursion. The result is a [`SafetyProof`]: either every
//! point is bounded — proving the absence of stack underflow, and of
//! overflow up to a declared capacity — or the offending instruction is
//! pinpointed with a clippy-style [`Diagnostic`].
//!
//! Three design points matter for precision on real Forth images:
//!
//! - **Constant tops.** A window of known top-of-stack values lets the
//!   analysis route `BranchIfZero` deterministically and fold `?dup`,
//!   which is what keeps flag-returning words (`number?`-style, one
//!   variant nets −1 with a zero flag, the other nets 0 with a true
//!   flag) from collapsing into an imprecise interval.
//! - **Disjunctive frames.** Each point holds a bounded *set* of frames,
//!   so the two variants above stay separate until the branch consumes
//!   the flag.
//! - **Frozen memory.** `Lit(addr); Fetch; Execute` (deferred-word
//!   dispatch) resolves through cells that no runtime store can reach;
//!   the `(addr, value)` pairs used are recorded in the proof and
//!   re-validated at admission time.

use std::collections::{BTreeMap, BTreeSet};

use stackcache_vm::{depth, Cell, Inst, Machine, Program, CELL_BYTES, FALSE, TRUE};

use crate::proof::{Bound, Diagnostic, SafetyProof, Verdict};

/// Saturating "infinity" for depth arithmetic.
pub(crate) const INF: i64 = i64::MAX / 4;
const NEG_INF: i64 = -INF;
/// Known-constant window depth per frame.
const TOPS_WINDOW: usize = 4;
/// Maximum disjunctive frames per program point.
const MAX_FRAMES: usize = 8;
/// Maximum exact return variants per word summary.
const MAX_VARIANTS: usize = 4;
/// Point visits before interval widening kicks in.
const WIDEN_AFTER: u32 = 12;
/// Point visits before constant tracking is abandoned at that point.
const STRIP_AFTER: u32 = 32;
/// Global summary-fixpoint rounds before declaring divergence.
const MAX_ROUNDS: usize = 40;
/// Rounds before growing summary bounds are widened to infinity.
const WIDEN_ROUNDS: usize = 6;

fn sadd(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else if a <= NEG_INF || b <= NEG_INF {
        NEG_INF
    } else {
        (a + b).clamp(NEG_INF, INF)
    }
}

fn bound(v: i64) -> Bound {
    if v >= INF {
        Bound::Unbounded
    } else {
        Bound::Finite(v)
    }
}

fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Abstract value for a data-stack cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// Nothing known.
    Any,
    /// Known to be non-zero (flag routing).
    NonZero,
    /// Known constant.
    Const(Cell),
}

/// One disjunctive abstract frame at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    /// Lower bound of data depth relative to word entry.
    dlo: i64,
    /// Upper bound of data depth relative to word entry.
    dhi: i64,
    /// Known values near the top (`last()` is the top of stack).
    tops: Vec<AVal>,
    /// Exact return-stack cells pushed since word entry.
    r: usize,
}

impl Frame {
    fn entry() -> Self {
        Frame {
            dlo: 0,
            dhi: 0,
            tops: Vec::new(),
            r: 0,
        }
    }

    fn push(&mut self, v: AVal) {
        self.dlo = sadd(self.dlo, 1);
        self.dhi = sadd(self.dhi, 1);
        self.tops.push(v);
        if self.tops.len() > TOPS_WINDOW {
            self.tops.remove(0);
        }
    }

    fn pop(&mut self) -> AVal {
        self.dlo = sadd(self.dlo, -1);
        self.dhi = sadd(self.dhi, -1);
        self.tops.pop().unwrap_or(AVal::Any)
    }

    /// Drop uninformative bottom entries so equal knowledge compares equal.
    fn canon(&mut self) {
        while self.tops.first() == Some(&AVal::Any) {
            self.tops.remove(0);
        }
    }
}

/// Joined per-point facts used for classification and reporting.
#[derive(Debug, Clone, Copy)]
struct Point {
    /// Joined lower depth bound (relative to word entry).
    dlo: i64,
    /// Joined upper depth bound.
    dhi: i64,
    /// Cells this instruction demands on the data stack (pops, or callee
    /// consumption for calls).
    need: i64,
    /// Maximum depth reached while executing this instruction (includes
    /// callee growth at call sites).
    peak: i64,
    /// Maximum return-stack growth at this instruction (relative frame
    /// plus return address and callee growth at call sites).
    rpeak: i64,
}

impl Point {
    fn new() -> Self {
        Point {
            dlo: INF,
            dhi: NEG_INF,
            need: 0,
            peak: NEG_INF,
            rpeak: 0,
        }
    }
}

/// Per-word analysis summary composed over the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Summary {
    /// Exact `(net, top)` return variants (empty when collapsed).
    variants: Vec<(i64, AVal)>,
    /// Joined net-effect interval over all returns.
    net_lo: i64,
    net_hi: i64,
    /// Whether any return is reachable.
    has_return: bool,
    /// Cells the word may pop below its entry depth (transitive).
    consumes: i64,
    /// Deepest point at which `consumes` was established.
    consumes_at: Option<(usize, usize)>,
    /// Definite demand: `> 0` means some reachable point underflows even
    /// at the maximum possible depth (transitive).
    dd: i64,
    /// The point establishing `dd`.
    dd_at: Option<(usize, usize)>,
    /// Maximum data growth above entry (transitive; may be [`INF`]).
    grow: i64,
    /// Maximum return-stack growth (transitive; may be [`INF`]).
    r_grow: i64,
    /// Set when the word could not be analyzed: `(ip, reason)`.
    unknown: Option<(usize, String)>,
}

impl Summary {
    fn poisoned(ip: usize, reason: String) -> Self {
        Summary {
            variants: Vec::new(),
            net_lo: NEG_INF,
            net_hi: INF,
            has_return: true,
            consumes: INF,
            consumes_at: None,
            dd: NEG_INF,
            dd_at: None,
            grow: INF,
            r_grow: INF,
            unknown: Some((ip, reason)),
        }
    }

    fn provisional(effect: depth::WordEffect) -> Option<Self> {
        match effect {
            depth::WordEffect::Net { net, consumes } => Some(Summary {
                variants: vec![(i64::from(net), AVal::Any)],
                net_lo: i64::from(net),
                net_hi: i64::from(net),
                has_return: true,
                consumes: i64::from(consumes),
                consumes_at: None,
                dd: NEG_INF,
                dd_at: None,
                grow: INF,
                r_grow: INF,
                unknown: None,
            }),
            _ => None,
        }
    }
}

/// Statically frozen memory: byte ranges no runtime store can write.
struct FrozenMem {
    ranges: Vec<(Cell, Cell)>,
    all_mutable: bool,
}

impl FrozenMem {
    fn compute(p: &Program) -> Self {
        let leaders: BTreeSet<usize> = p.leaders().into_iter().collect();
        let mut ranges = Vec::new();
        let mut all_mutable = false;
        for (ip, inst) in p.insts().iter().enumerate() {
            let width = match inst {
                Inst::Store | Inst::PlusStore => CELL_BYTES as Cell,
                Inst::CStore => 1,
                _ => continue,
            };
            // The address is known only when the store directly follows
            // the Lit producing it (no branch can land between them).
            if ip > 0 && !leaders.contains(&ip) {
                if let Inst::Lit(a) = p.insts()[ip - 1] {
                    ranges.push((a, width));
                    continue;
                }
            }
            all_mutable = true;
        }
        FrozenMem {
            ranges,
            all_mutable,
        }
    }

    fn cell_frozen(&self, addr: Cell) -> bool {
        if self.all_mutable || addr < 0 {
            return false;
        }
        let w = CELL_BYTES as Cell;
        !self
            .ranges
            .iter()
            .any(|&(s, len)| s < addr.saturating_add(w) && addr < s.saturating_add(len))
    }
}

/// Per-word analysis output.
struct WordResult {
    summary: Summary,
    points: BTreeMap<usize, Point>,
    preds: BTreeMap<usize, usize>,
    deps: BTreeSet<(Cell, Cell)>,
    pending: BTreeSet<usize>,
}

/// Analysis context for a single word.
struct WordCtx<'a> {
    p: &'a Program,
    entry: usize,
    summaries: &'a BTreeMap<usize, Summary>,
    frozen: &'a FrozenMem,
    mem: Option<&'a Machine>,
    frames: BTreeMap<usize, Vec<Frame>>,
    visits: BTreeMap<usize, u32>,
    points: BTreeMap<usize, Point>,
    preds: BTreeMap<usize, usize>,
    variants: Vec<(i64, i64, AVal)>,
    consumes: i64,
    consumes_at: Option<(usize, usize)>,
    dd: i64,
    dd_at: Option<(usize, usize)>,
    deps: BTreeSet<(Cell, Cell)>,
    pending: BTreeSet<usize>,
}

impl<'a> WordCtx<'a> {
    /// Record a data-stack demand of `n` cells at `ip` given frame `f`.
    fn note_need(&mut self, ip: usize, f: &Frame, n: i64) {
        if n <= 0 {
            return;
        }
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        pt.need = pt.need.max(n);
        let contribution = sadd(n, -f.dlo);
        if contribution > self.consumes {
            self.consumes = contribution;
            self.consumes_at = Some((self.entry, ip));
        }
        let definite = sadd(n, -f.dhi);
        if definite > self.dd {
            self.dd = definite;
            self.dd_at = Some((self.entry, ip));
        }
    }

    /// Apply a resolved call to `target` from frame `f` at `ip`.
    fn do_call(
        &mut self,
        ip: usize,
        target: usize,
        f: &Frame,
    ) -> Result<Vec<(usize, Frame)>, String> {
        let Some(s) = self.summaries.get(&target) else {
            self.pending.insert(target);
            return Ok(Vec::new());
        };
        if s.unknown.is_some() {
            return Err(format!("calls word @{target} that could not be analyzed"));
        }
        // Transitive demands: the callee's consumption applies at the
        // caller's depth here; its definite demand composes on the upper
        // bound; its growth composes on both stacks.
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        pt.need = pt.need.max(s.consumes);
        pt.peak = pt.peak.max(sadd(f.dhi, s.grow));
        pt.rpeak = pt.rpeak.max(sadd(f.r as i64 + 1, s.r_grow));
        let contribution = sadd(s.consumes, -f.dlo);
        if contribution > self.consumes {
            self.consumes = contribution;
            self.consumes_at = s.consumes_at.or(Some((self.entry, ip)));
        }
        let definite = sadd(s.dd, -f.dhi);
        if definite > self.dd {
            self.dd = definite;
            self.dd_at = s.dd_at.or(Some((self.entry, ip)));
        }
        if !s.has_return {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        if s.variants.is_empty() {
            let mut g = f.clone();
            apply_call_effect(&mut g, s.consumes, s.net_lo, s.net_hi, AVal::Any);
            out.push((ip + 1, g));
        } else {
            for &(net, top) in &s.variants {
                let mut g = f.clone();
                apply_call_effect(&mut g, s.consumes, net, net, top);
                out.push((ip + 1, g));
            }
        }
        Ok(out)
    }

    /// Abstractly execute the instruction at `ip` on frame `f`.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, ip: usize, f: &Frame) -> Result<Vec<(usize, Frame)>, String> {
        let Some(&inst) = self.p.insts().get(ip) else {
            // Falling off the program is an InstructionOutOfBounds trap in
            // every mode: the path ends here.
            return Ok(Vec::new());
        };
        let eff = inst.effect();
        self.note_need(ip, f, i64::from(eff.pops));
        {
            let pt = self.points.entry(ip).or_insert_with(Point::new);
            pt.peak = pt.peak.max(f.dhi);
            pt.rpeak = pt.rpeak.max(f.r as i64);
        }
        let fall = ip + 1;
        let mut g = f.clone();
        let out: Vec<(usize, Frame)> = match inst {
            Inst::Lit(n) => {
                g.push(AVal::Const(n));
                vec![(fall, g)]
            }
            Inst::Div | Inst::Mod => {
                let b = g.pop();
                let a = g.pop();
                if b == AVal::Const(0) {
                    Vec::new() // definite division-by-zero: path ends
                } else {
                    g.push(fold2(inst, a, b));
                    vec![(fall, g)]
                }
            }
            Inst::Add
            | Inst::Sub
            | Inst::Mul
            | Inst::And
            | Inst::Or
            | Inst::Xor
            | Inst::Lshift
            | Inst::Rshift
            | Inst::Min
            | Inst::Max
            | Inst::Eq
            | Inst::Ne
            | Inst::Lt
            | Inst::Gt
            | Inst::Le
            | Inst::Ge
            | Inst::ULt
            | Inst::UGt => {
                let b = g.pop();
                let a = g.pop();
                g.push(fold2(inst, a, b));
                vec![(fall, g)]
            }
            Inst::Negate
            | Inst::Invert
            | Inst::Abs
            | Inst::OnePlus
            | Inst::OneMinus
            | Inst::TwoStar
            | Inst::TwoSlash
            | Inst::ZeroEq
            | Inst::ZeroNe
            | Inst::ZeroLt
            | Inst::ZeroGt
            | Inst::CellPlus
            | Inst::Cells
            | Inst::CharPlus => {
                let a = g.pop();
                g.push(fold1(inst, a));
                vec![(fall, g)]
            }
            Inst::Dup => {
                let a = g.pop();
                g.push(a);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Drop => {
                g.pop();
                vec![(fall, g)]
            }
            Inst::Swap => {
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Over => {
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Rot => {
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(c);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::MinusRot => {
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(c);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::Nip => {
                let b = g.pop();
                let _ = g.pop();
                g.push(b);
                vec![(fall, g)]
            }
            Inst::Tuck => {
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoDup => {
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoDrop => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::TwoSwap => {
                let d = g.pop();
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(c);
                g.push(d);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoOver => {
                let d = g.pop();
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(c);
                g.push(d);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::QDup => {
                let a = g.pop();
                match a {
                    AVal::Const(0) => {
                        g.push(AVal::Const(0));
                        vec![(fall, g)]
                    }
                    AVal::Const(v) => {
                        g.push(AVal::Const(v));
                        g.push(AVal::Const(v));
                        vec![(fall, g)]
                    }
                    AVal::NonZero => {
                        g.push(AVal::NonZero);
                        g.push(AVal::NonZero);
                        vec![(fall, g)]
                    }
                    AVal::Any => {
                        // Fork: the no-dup outcome pins the top to zero.
                        let mut z = g.clone();
                        z.push(AVal::Const(0));
                        g.push(AVal::NonZero);
                        g.push(AVal::NonZero);
                        vec![(fall, z), (fall, g)]
                    }
                }
            }
            Inst::Pick => {
                // The index pop is the only depth demand; the read is
                // guarded by the PickOutOfRange check every mode retains.
                let u = g.pop();
                if let AVal::Const(n) = u {
                    if n < 0 {
                        return Ok(Vec::new()); // always out of range
                    }
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Depth => {
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::ToR => {
                g.pop();
                g.r += 1;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::FromR => {
                if g.r < 1 {
                    return Err("pops the return stack below the word frame".into());
                }
                g.r -= 1;
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::RFetch => {
                if g.r < 1 {
                    return Err("reads the return stack below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::TwoToR => {
                g.pop();
                g.pop();
                g.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::TwoFromR => {
                if g.r < 2 {
                    return Err("pops the return stack below the word frame".into());
                }
                g.r -= 2;
                g.push(AVal::Any);
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::TwoRFetch => {
                if g.r < 2 {
                    return Err("reads the return stack below the word frame".into());
                }
                g.push(AVal::Any);
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Fetch => {
                let a = g.pop();
                let mut v = AVal::Any;
                if let (AVal::Const(addr), Some(m)) = (a, self.mem) {
                    if self.frozen.cell_frozen(addr) {
                        // Out-of-bounds loads stay Any: the admitted
                        // machine may be sized differently, and every
                        // mode retains the memory check.
                        if let Some(x) = m.load_cell(addr) {
                            self.deps.insert((addr, x));
                            v = AVal::Const(x);
                        }
                    }
                }
                g.push(v);
                vec![(fall, g)]
            }
            Inst::CFetch => {
                g.pop();
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Store | Inst::CStore | Inst::PlusStore => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::Branch(t) => vec![(t as usize, g)],
            Inst::BranchIfZero(t) => {
                let c = g.pop();
                match c {
                    AVal::Const(0) => vec![(t as usize, g)],
                    AVal::Const(_) | AVal::NonZero => vec![(fall, g)],
                    AVal::Any => vec![(t as usize, g.clone()), (fall, g)],
                }
            }
            Inst::Call(t) => self.do_call(ip, t as usize, f)?,
            Inst::Execute => {
                let tok = g.pop();
                match tok {
                    AVal::Const(c) => {
                        if c < 0 || c as usize >= self.p.len() {
                            Vec::new() // always an invalid token
                        } else {
                            self.do_call(ip, c as usize, &g)?
                        }
                    }
                    _ => return Err("executes an unresolvable token".into()),
                }
            }
            Inst::Return => {
                if g.r != 0 {
                    return Err("returns with word-frame cells still on the return stack".into());
                }
                let top = g.tops.last().copied().unwrap_or(AVal::Any);
                self.variants.push((g.dlo, g.dhi, top));
                Vec::new()
            }
            Inst::Halt => Vec::new(),
            Inst::Nop => vec![(fall, g)],
            Inst::DoSetup => {
                g.pop();
                g.pop();
                g.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::QDoSetup(t) => {
                let start = g.pop();
                let limit = g.pop();
                let mut enter = g.clone();
                enter.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(enter.r as i64);
                match (limit, start) {
                    (AVal::Const(l), AVal::Const(s)) if l == s => vec![(t as usize, g)],
                    (AVal::Const(l), AVal::Const(s)) if l != s => vec![(fall, enter)],
                    _ => vec![(t as usize, g), (fall, enter)],
                }
            }
            Inst::LoopInc(t) => {
                if g.r < 2 {
                    return Err("loop bookkeeping reaches below the word frame".into());
                }
                let mut exit = g.clone();
                exit.r -= 2;
                vec![(t as usize, g), (fall, exit)]
            }
            Inst::PlusLoopInc(t) => {
                g.pop();
                if g.r < 2 {
                    return Err("loop bookkeeping reaches below the word frame".into());
                }
                let mut exit = g.clone();
                exit.r -= 2;
                vec![(t as usize, g), (fall, exit)]
            }
            Inst::LoopI => {
                if g.r < 1 {
                    return Err("reads a loop index below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::LoopJ => {
                if g.r < 4 {
                    return Err("reads an outer loop index below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Unloop => {
                if g.r < 2 {
                    return Err("unloops below the word frame".into());
                }
                g.r -= 2;
                vec![(fall, g)]
            }
            Inst::Emit | Inst::Dot => {
                g.pop();
                vec![(fall, g)]
            }
            Inst::Type => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::Cr => vec![(fall, g)],
        };
        // Cover successor depths in this point's peaks (call sites already
        // added callee growth above).
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        for (_, s) in &out {
            pt.peak = pt.peak.max(s.dhi);
            pt.rpeak = pt.rpeak.max(s.r as i64);
        }
        Ok(out)
    }

    /// Join `f` into the frame set at `ip`; returns whether it changed.
    fn join(&mut self, ip: usize, from: usize, mut f: Frame) -> bool {
        f.canon();
        let visits = *self.visits.get(&ip).unwrap_or(&0);
        if visits > STRIP_AFTER {
            f.tops.clear();
        }
        let set = self.frames.entry(ip).or_default();
        let mut changed = false;
        if let Some(g) = set.iter_mut().find(|g| g.r == f.r && g.tops == f.tops) {
            if f.dlo < g.dlo {
                g.dlo = if visits > WIDEN_AFTER { NEG_INF } else { f.dlo };
                changed = true;
            }
            if f.dhi > g.dhi {
                g.dhi = if visits > WIDEN_AFTER { INF } else { f.dhi };
                changed = true;
            }
        } else if set.len() >= MAX_FRAMES {
            // Collapse: abandon constant tracking, merge per r-frame.
            let mut merged: Vec<Frame> = Vec::new();
            f.tops.clear();
            for mut g in set.drain(..).chain(std::iter::once(f)) {
                g.tops.clear();
                if let Some(m) = merged.iter_mut().find(|m| m.r == g.r) {
                    m.dlo = m.dlo.min(g.dlo);
                    m.dhi = m.dhi.max(g.dhi);
                } else {
                    merged.push(g);
                }
            }
            *set = merged;
            changed = true;
        } else {
            set.push(f);
            changed = true;
        }
        if changed {
            *self.visits.entry(ip).or_insert(0) += 1;
            self.preds.entry(ip).or_insert(from);
            if let Some(frames) = self.frames.get(&ip) {
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                for g in frames {
                    pt.dlo = pt.dlo.min(g.dlo);
                    pt.dhi = pt.dhi.max(g.dhi);
                }
            }
        }
        changed
    }

    fn run(&mut self) -> Result<(), (usize, String)> {
        let entry_frame = Frame::entry();
        self.join(self.entry, self.entry, entry_frame);
        let mut worklist: Vec<usize> = vec![self.entry];
        while let Some(ip) = worklist.pop() {
            let frames = self.frames.get(&ip).cloned().unwrap_or_default();
            for f in &frames {
                let succs = self.step(ip, f).map_err(|e| (ip, e))?;
                for (sip, sf) in succs {
                    if self.join(sip, ip, sf) && !worklist.contains(&sip) {
                        worklist.push(sip);
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(mut self) -> WordResult {
        // Record the entry point even for empty words.
        let pt = self.points.entry(self.entry).or_insert_with(Point::new);
        pt.dlo = pt.dlo.min(0);
        pt.dhi = pt.dhi.max(0);
        pt.peak = pt.peak.max(0);
        let mut variants: Vec<(i64, AVal)> = Vec::new();
        let mut exact = true;
        let mut net_lo = INF;
        let mut net_hi = NEG_INF;
        for &(lo, hi, top) in &self.variants {
            net_lo = net_lo.min(lo);
            net_hi = net_hi.max(hi);
            if lo == hi {
                if !variants.contains(&(lo, top)) {
                    variants.push((lo, top));
                }
            } else {
                exact = false;
            }
        }
        if !exact || variants.len() > MAX_VARIANTS {
            variants.clear();
        }
        let has_return = !self.variants.is_empty();
        if !has_return {
            net_lo = 0;
            net_hi = 0;
        }
        let grow = self
            .points
            .values()
            .map(|p| p.peak)
            .max()
            .unwrap_or(0)
            .max(0);
        let r_grow = self
            .points
            .values()
            .map(|p| p.rpeak)
            .max()
            .unwrap_or(0)
            .max(0);
        let summary = Summary {
            variants,
            net_lo,
            net_hi,
            has_return,
            consumes: self.consumes.max(0),
            consumes_at: self.consumes_at,
            dd: self.dd,
            dd_at: self.dd_at,
            grow,
            r_grow,
            unknown: None,
        };
        WordResult {
            summary,
            points: self.points,
            preds: self.preds,
            deps: self.deps,
            pending: self.pending,
        }
    }
}

/// Apply a callee's effect to the caller frame.
fn apply_call_effect(g: &mut Frame, consumes: i64, net_lo: i64, net_hi: i64, top: AVal) {
    let c = consumes.clamp(0, INF);
    let drop_n = (g.tops.len() as i64).min(c).max(0) as usize;
    let keep = g.tops.len() - drop_n;
    g.tops.truncate(keep);
    g.dlo = sadd(g.dlo, net_lo);
    g.dhi = sadd(g.dhi, net_hi);
    if net_lo == net_hi {
        let pushed = sadd(c, net_lo).max(0).min(TOPS_WINDOW as i64 + 1);
        if pushed > 0 {
            for _ in 0..pushed - 1 {
                g.tops.push(AVal::Any);
            }
            g.tops.push(top);
            while g.tops.len() > TOPS_WINDOW {
                g.tops.remove(0);
            }
        }
    } else {
        g.tops.clear();
    }
}

/// Fold a binary operation over abstract operands.
fn fold2(inst: Inst, a: AVal, b: AVal) -> AVal {
    let (AVal::Const(a), AVal::Const(b)) = (a, b) else {
        return AVal::Any;
    };
    let v = match inst {
        Inst::Add => a.wrapping_add(b),
        Inst::Sub => a.wrapping_sub(b),
        Inst::Mul => a.wrapping_mul(b),
        Inst::Div => {
            if b == 0 {
                return AVal::Any;
            }
            wrapping_div_euclid(a, b)
        }
        Inst::Mod => {
            if b == 0 {
                return AVal::Any;
            }
            wrapping_rem_euclid(a, b)
        }
        Inst::And => a & b,
        Inst::Or => a | b,
        Inst::Xor => a ^ b,
        Inst::Lshift => ((a as u64) << (b as u64 & 63)) as Cell,
        Inst::Rshift => ((a as u64) >> (b as u64 & 63)) as Cell,
        Inst::Min => a.min(b),
        Inst::Max => a.max(b),
        Inst::Eq => flag(a == b),
        Inst::Ne => flag(a != b),
        Inst::Lt => flag(a < b),
        Inst::Gt => flag(a > b),
        Inst::Le => flag(a <= b),
        Inst::Ge => flag(a >= b),
        Inst::ULt => flag((a as u64) < (b as u64)),
        Inst::UGt => flag((a as u64) > (b as u64)),
        _ => return AVal::Any,
    };
    AVal::Const(v)
}

fn wrapping_div_euclid(a: Cell, b: Cell) -> Cell {
    if a == Cell::MIN && b == -1 {
        a
    } else {
        a.div_euclid(b)
    }
}

fn wrapping_rem_euclid(a: Cell, b: Cell) -> Cell {
    if a == Cell::MIN && b == -1 {
        0
    } else {
        a.rem_euclid(b)
    }
}

/// Fold a unary operation over an abstract operand.
fn fold1(inst: Inst, a: AVal) -> AVal {
    match (inst, a) {
        (Inst::ZeroEq, AVal::NonZero) => AVal::Const(FALSE),
        (Inst::ZeroNe, AVal::NonZero) => AVal::Const(TRUE),
        (Inst::Negate | Inst::Abs, AVal::NonZero) => AVal::NonZero,
        (_, AVal::Const(a)) => {
            let v = match inst {
                Inst::Negate => a.wrapping_neg(),
                Inst::Invert => !a,
                Inst::Abs => a.wrapping_abs(),
                Inst::OnePlus => a.wrapping_add(1),
                Inst::OneMinus => a.wrapping_sub(1),
                Inst::TwoStar => a.wrapping_mul(2),
                Inst::TwoSlash => a >> 1,
                Inst::ZeroEq => flag(a == 0),
                Inst::ZeroNe => flag(a != 0),
                Inst::ZeroLt => flag(a < 0),
                Inst::ZeroGt => flag(a > 0),
                Inst::CellPlus => a.wrapping_add(CELL_BYTES as Cell),
                Inst::Cells => a.wrapping_mul(CELL_BYTES as Cell),
                Inst::CharPlus => a.wrapping_add(1),
                _ => return AVal::Any,
            };
            AVal::Const(v)
        }
        _ => AVal::Any,
    }
}

/// Per-word line of the analysis report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordReport {
    /// Entry instruction index.
    pub entry: usize,
    /// Symbolic name, when the program carries one.
    pub name: Option<String>,
    /// `"ok"` or the reason the word could not be analyzed.
    pub status: String,
    /// Net data-stack effect interval over all returns (`None` when the
    /// word never returns).
    pub net: Option<(i64, i64)>,
    /// Cells consumed below the entry depth (transitive).
    pub consumes: i64,
    /// Maximum data-stack growth above entry (transitive).
    pub grow: Bound,
    /// Maximum return-stack growth (transitive).
    pub r_grow: Bound,
}

/// The full analysis result: the proof plus per-word reporting detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The safety proof / verdict.
    pub proof: SafetyProof,
    /// Per-word summaries in entry order.
    pub words: Vec<WordReport>,
}

fn diagnostic_at(
    p: &Program,
    results: &BTreeMap<usize, WordResult>,
    word: usize,
    ip: usize,
    reason: String,
) -> Diagnostic {
    let witness = results
        .get(&word)
        .map(|r| witness_path(&r.preds, word, ip))
        .unwrap_or_default();
    Diagnostic {
        ip,
        word,
        word_name: p.name_at(word).map(ToString::to_string),
        inst: p
            .insts()
            .get(ip)
            .map_or_else(|| "<end>".to_string(), |i| i.name().to_string()),
        reason,
        witness,
    }
}

fn witness_path(preds: &BTreeMap<usize, usize>, entry: usize, ip: usize) -> Vec<usize> {
    let mut path = vec![ip];
    let mut cur = ip;
    let mut seen = BTreeSet::new();
    while cur != entry && seen.insert(cur) {
        match preds.get(&cur) {
            Some(&prev) if prev != cur => {
                path.push(prev);
                cur = prev;
            }
            _ => break,
        }
    }
    path.reverse();
    path
}

/// Run whole-program abstract interpretation.
///
/// `initial` is the machine image the program will start from (its memory
/// feeds frozen-cell resolution of `Lit; Fetch; Execute` dispatch); pass
/// `None` to analyze without memory knowledge — deferred dispatch then
/// yields [`Verdict::Unknown`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(program: &Program, initial: Option<&Machine>) -> Analysis {
    let frozen = FrozenMem::compute(program);
    let depth_info = depth::analyze(program);
    let mut words: BTreeSet<usize> = BTreeSet::new();
    words.insert(program.entry());
    let mut summaries: BTreeMap<usize, Summary> = BTreeMap::new();
    let mut results: BTreeMap<usize, WordResult> = BTreeMap::new();
    let mut converged = false;
    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for &w in &words.clone() {
            let mut ctx = WordCtx {
                p: program,
                entry: w,
                summaries: &summaries,
                frozen: &frozen,
                mem: initial,
                frames: BTreeMap::new(),
                visits: BTreeMap::new(),
                points: BTreeMap::new(),
                preds: BTreeMap::new(),
                variants: Vec::new(),
                consumes: 0,
                consumes_at: None,
                dd: NEG_INF,
                dd_at: None,
                deps: BTreeSet::new(),
                pending: BTreeSet::new(),
            };
            let res = match ctx.run() {
                Ok(()) => ctx.finalize(),
                Err((ip, reason)) => {
                    let points = std::mem::take(&mut ctx.points);
                    let preds = std::mem::take(&mut ctx.preds);
                    let deps = std::mem::take(&mut ctx.deps);
                    let pending = std::mem::take(&mut ctx.pending);
                    WordResult {
                        summary: Summary::poisoned(ip, reason),
                        points,
                        preds,
                        deps,
                        pending,
                    }
                }
            };
            for &t in &res.pending {
                if words.insert(t) {
                    if let Some(s) = depth_info.effect_of(t).and_then(Summary::provisional) {
                        summaries.insert(t, s);
                    }
                    changed = true;
                }
            }
            let mut new = res.summary.clone();
            if round >= WIDEN_ROUNDS {
                if let Some(old) = summaries.get(&w) {
                    if new != *old && new.unknown.is_none() && old.unknown.is_none() {
                        if new.grow > old.grow {
                            new.grow = INF;
                        }
                        if new.r_grow > old.r_grow {
                            new.r_grow = INF;
                        }
                        if new.consumes > old.consumes {
                            new.consumes = INF;
                        }
                        if new.net_lo < old.net_lo {
                            new.net_lo = NEG_INF;
                            new.variants.clear();
                        }
                        if new.net_hi > old.net_hi {
                            new.net_hi = INF;
                            new.variants.clear();
                        }
                        if new.variants != old.variants && !old.variants.is_empty() {
                            new.variants.clear();
                        }
                    }
                }
            }
            if summaries.get(&w) != Some(&new) {
                summaries.insert(w, new);
                changed = true;
            }
            results.insert(w, res);
        }
        if !changed {
            converged = true;
            break;
        }
    }

    let entry = program.entry();
    let entry_summary = summaries
        .get(&entry)
        .cloned()
        .unwrap_or_else(|| Summary::poisoned(entry, "entry word was never analyzed".to_string()));

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut frozen_deps: BTreeSet<(Cell, Cell)> = BTreeSet::new();
    for res in results.values() {
        frozen_deps.extend(res.deps.iter().copied());
    }

    let verdict;
    let data_needed;
    let data_max;
    let rstack_max;
    if !converged {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = Bound::Unbounded;
        rstack_max = Bound::Unbounded;
        diagnostics.push(diagnostic_at(
            program,
            &results,
            entry,
            entry,
            "the depth fixpoint did not converge".to_string(),
        ));
    } else if let Some((ip, reason)) = entry_summary.unknown.clone() {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = Bound::Unbounded;
        rstack_max = Bound::Unbounded;
        diagnostics.push(diagnostic_at(program, &results, entry, ip, reason));
        // Surface the root causes from poisoned callees too.
        for (&w, res) in &results {
            if w == entry {
                continue;
            }
            if let Some((ip, reason)) = res.summary.unknown.clone() {
                if !reason.starts_with("calls word @") {
                    diagnostics.push(diagnostic_at(program, &results, w, ip, reason));
                }
            }
        }
    } else if entry_summary.dd > 0 {
        verdict = Verdict::Rejected;
        data_needed = entry_summary.consumes;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.dd_at.unwrap_or((entry, entry));
        let need = results
            .get(&w)
            .and_then(|r| r.points.get(&ip))
            .map_or(0, |p| p.need);
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            format!(
                "definitely underflows: needs {need} cell(s) but at most {} can be on the stack",
                (need - entry_summary.dd).max(0)
            ),
        ));
    } else if entry_summary.consumes > 0 && entry_summary.consumes < INF {
        // Provable only with a preset stack; for an empty start this is
        // unproven. admit() re-evaluates against the actual preset.
        verdict = Verdict::Unknown;
        data_needed = entry_summary.consumes;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.consumes_at.unwrap_or((entry, entry));
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            format!(
                "cannot prove depth: needs {} cell(s) below the starting stack",
                entry_summary.consumes
            ),
        ));
    } else if entry_summary.consumes >= INF {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.consumes_at.unwrap_or((entry, entry));
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            "cannot prove a finite depth demand at this instruction".to_string(),
        ));
    } else if entry_summary.has_return {
        // A top-level Return pops whatever return stack the host preset;
        // that is outside the program and cannot be proven here.
        verdict = Verdict::Unknown;
        data_needed = 0;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        diagnostics.push(diagnostic_at(
            program,
            &results,
            entry,
            entry,
            "the entry word can return into a host-owned return stack".to_string(),
        ));
    } else {
        data_needed = 0;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        verdict = match (data_max, rstack_max) {
            (Bound::Finite(_), Bound::Finite(_)) => Verdict::Proven,
            _ => Verdict::Guarded,
        };
    }

    let words_report: Vec<WordReport> = words
        .iter()
        .filter_map(|&w| {
            let s = summaries.get(&w)?;
            Some(WordReport {
                entry: w,
                name: program.name_at(w).map(ToString::to_string),
                status: match &s.unknown {
                    None => "ok".to_string(),
                    Some((_, reason)) => reason.clone(),
                },
                net: if s.has_return && s.unknown.is_none() {
                    Some((s.net_lo, s.net_hi))
                } else {
                    None
                },
                consumes: s.consumes.min(INF),
                grow: bound(s.grow),
                r_grow: bound(s.r_grow),
            })
        })
        .collect();

    Analysis {
        proof: SafetyProof {
            verdict,
            data_needed,
            data_max,
            rstack_max,
            frozen_deps: frozen_deps.into_iter().collect(),
            diagnostics,
            words_analyzed: words.len(),
        },
        words: words_report,
    }
}
