//! Whole-program abstract interpretation of depth bounds.
//!
//! The interpreter computes, for every reachable program point, an
//! interval of possible data-stack depths *relative to the containing
//! word's entry depth*, an exact relative return-stack frame, and a small
//! window of known top-of-stack constants. Per-word summaries (net
//! effect, consumption below entry, maximum growth) are composed over the
//! call graph to a fixpoint, seeded by `stackcache_vm::depth` effects and
//! widened on recursion. The result is a [`SafetyProof`]: either every
//! point is bounded — proving the absence of stack underflow, and of
//! overflow up to a declared capacity — or the offending instruction is
//! pinpointed with a clippy-style [`Diagnostic`].
//!
//! Four design points matter for precision on real Forth images:
//!
//! - **Value intervals.** Each tracked stack slot carries an abstract
//!   value: a constant, a non-zero fact, or a `[lo, hi]` interval.
//!   Interval transfer functions over the arithmetic/compare ops (backed
//!   by the concrete [`stackcache_vm::fold`] hooks) let the analysis fold
//!   `BranchIfZero` on proven-nonzero *arithmetic* — `c@ 1+` is in
//!   `[1, 256]` and never zero — not just on literals.
//! - **Disjunctive frames + widening.** Each point holds a bounded *set*
//!   of frames, so flag-returning words (`number?`-style) keep their
//!   variants separate until the branch consumes the flag. At loop heads,
//!   where revisits accumulate, frames with equal return-stack shape are
//!   merged element-wise and growing interval endpoints are widened to
//!   ±∞ so the fixpoint terminates.
//! - **Frozen memory.** `Lit(addr); Fetch; Execute` (deferred-word
//!   dispatch) resolves through cells that no runtime store can reach;
//!   the `(addr, value)` pairs used are recorded in the proof and
//!   re-validated at admission time.
//! - **Budgets.** All precision knobs live in an [`AnalysisBudget`]:
//!   [`AnalysisBudget::quick`] bounds admission-path latency, while
//!   [`AnalysisBudget::deep`] spends more fixpoint rounds and a larger
//!   fuel exploration so a background pass can re-prove programs the
//!   quick pass had to widen to `guarded`.

use std::collections::{BTreeMap, BTreeSet};

use stackcache_vm::{depth, fold as vmfold, Cell, Inst, Machine, Program, CELL_BYTES, FALSE, TRUE};

use crate::proof::{Bound, Diagnostic, Lint, LintKind, SafetyProof, Verdict};

/// Saturating "infinity" for depth arithmetic.
pub(crate) const INF: i64 = i64::MAX / 4;
const NEG_INF: i64 = -INF;
/// Known-constant window depth per frame.
const TOPS_WINDOW: usize = 4;
/// Maximum exact return variants per word summary.
const MAX_VARIANTS: usize = 4;

/// Precision/effort knobs for [`analyze_with`].
///
/// The service analyzes at [`AnalysisBudget::quick`] on the admission path
/// (bounded latency) and re-analyzes cached guarded artifacts at
/// [`AnalysisBudget::deep`] in the background, where the extra widening
/// head-room and fuel-exploration budget can turn a widened `guarded`
/// verdict into a finite — even fuel-bounded — one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisBudget {
    /// Point visits before depth/value intervals are widened to ±∞.
    pub widen_after: u32,
    /// Point visits before constant tracking is abandoned at that point.
    pub strip_after: u32,
    /// Maximum disjunctive frames per program point.
    pub max_frames: usize,
    /// Point visits before unmatched frames are merged element-wise into
    /// an existing frame of equal return-stack shape (loop-head interval
    /// join). Below this, revisits keep exact disjunctive frames — raising
    /// it lets counted loops unroll exactly.
    pub value_join_after: u32,
    /// Global summary-fixpoint rounds before declaring divergence.
    pub max_rounds: usize,
    /// Rounds before growing summary bounds are widened to infinity.
    pub widen_rounds: usize,
    /// Total abstract steps the fuel-bound exploration may spend.
    pub fuel_steps: usize,
    /// Maximum abstract return-stack depth during fuel exploration.
    pub fuel_calls: usize,
}

impl AnalysisBudget {
    /// The admission-path budget: tight widening for bounded latency.
    #[must_use]
    pub fn quick() -> Self {
        AnalysisBudget {
            widen_after: 12,
            strip_after: 32,
            max_frames: 8,
            value_join_after: 4,
            max_rounds: 40,
            widen_rounds: 6,
            fuel_steps: 20_000,
            fuel_calls: 64,
        }
    }

    /// The background/tooling budget: enough widening head-room to unroll
    /// counted loops of a few hundred iterations exactly.
    #[must_use]
    pub fn deep() -> Self {
        AnalysisBudget {
            widen_after: 512,
            strip_after: 768,
            max_frames: 64,
            value_join_after: 48,
            max_rounds: 160,
            widen_rounds: 24,
            fuel_steps: 2_000_000,
            fuel_calls: 256,
        }
    }
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        AnalysisBudget::quick()
    }
}

fn sadd(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else if a <= NEG_INF || b <= NEG_INF {
        NEG_INF
    } else {
        (a + b).clamp(NEG_INF, INF)
    }
}

fn bound(v: i64) -> Bound {
    if v >= INF {
        Bound::Unbounded
    } else {
        Bound::Finite(v)
    }
}

/// Abstract value for a data-stack cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AVal {
    /// Nothing known.
    Any,
    /// Known to be non-zero, magnitude unknown (flag routing).
    NonZero,
    /// Known constant.
    Const(Cell),
    /// Known to lie in the inclusive interval `[lo, hi]`.
    ///
    /// Invariant: `lo < hi` and `(lo, hi) != (Cell::MIN, Cell::MAX)` —
    /// singletons are [`AVal::Const`], the full range is [`AVal::Any`].
    /// Construct through [`AVal::range`] to maintain this.
    Range(Cell, Cell),
}

impl AVal {
    /// Normalizing interval constructor.
    pub(crate) fn range(lo: Cell, hi: Cell) -> AVal {
        if lo > hi {
            AVal::Any
        } else if lo == hi {
            AVal::Const(lo)
        } else if lo == Cell::MIN && hi == Cell::MAX {
            AVal::Any
        } else {
            AVal::Range(lo, hi)
        }
    }

    /// The inclusive bounds, when the value carries any.
    pub(crate) fn bounds(self) -> Option<(Cell, Cell)> {
        match self {
            AVal::Const(c) => Some((c, c)),
            AVal::Range(lo, hi) => Some((lo, hi)),
            AVal::Any | AVal::NonZero => None,
        }
    }

    /// `true` when the value is proven non-zero.
    pub(crate) fn nonzero(self) -> bool {
        match self {
            AVal::Const(c) => c != 0,
            AVal::NonZero => true,
            AVal::Range(lo, hi) => lo > 0 || hi < 0,
            AVal::Any => false,
        }
    }
}

/// One disjunctive abstract frame at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    /// Lower bound of data depth relative to word entry.
    dlo: i64,
    /// Upper bound of data depth relative to word entry.
    dhi: i64,
    /// Known values near the top (`last()` is the top of stack).
    tops: Vec<AVal>,
    /// Exact return-stack cells pushed since word entry.
    r: usize,
}

impl Frame {
    fn entry() -> Self {
        Frame {
            dlo: 0,
            dhi: 0,
            tops: Vec::new(),
            r: 0,
        }
    }

    fn push(&mut self, v: AVal) {
        self.dlo = sadd(self.dlo, 1);
        self.dhi = sadd(self.dhi, 1);
        self.tops.push(v);
        if self.tops.len() > TOPS_WINDOW {
            self.tops.remove(0);
        }
    }

    fn pop(&mut self) -> AVal {
        self.dlo = sadd(self.dlo, -1);
        self.dhi = sadd(self.dhi, -1);
        self.tops.pop().unwrap_or(AVal::Any)
    }

    /// Drop uninformative bottom entries so equal knowledge compares equal.
    fn canon(&mut self) {
        while self.tops.first() == Some(&AVal::Any) {
            self.tops.remove(0);
        }
    }
}

/// Joined per-point facts used for classification and reporting.
#[derive(Debug, Clone, Copy)]
struct Point {
    /// Joined lower depth bound (relative to word entry).
    dlo: i64,
    /// Joined upper depth bound.
    dhi: i64,
    /// Cells this instruction demands on the data stack (pops, or callee
    /// consumption for calls).
    need: i64,
    /// Maximum depth reached while executing this instruction (includes
    /// callee growth at call sites).
    peak: i64,
    /// Maximum return-stack growth at this instruction (relative frame
    /// plus return address and callee growth at call sites).
    rpeak: i64,
}

impl Point {
    fn new() -> Self {
        Point {
            dlo: INF,
            dhi: NEG_INF,
            need: 0,
            peak: NEG_INF,
            rpeak: 0,
        }
    }
}

/// Per-word analysis summary composed over the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Summary {
    /// Exact `(net, top)` return variants (empty when collapsed).
    variants: Vec<(i64, AVal)>,
    /// Joined net-effect interval over all returns.
    net_lo: i64,
    net_hi: i64,
    /// Whether any return is reachable.
    has_return: bool,
    /// Cells the word may pop below its entry depth (transitive).
    consumes: i64,
    /// Deepest point at which `consumes` was established.
    consumes_at: Option<(usize, usize)>,
    /// Definite demand: `> 0` means some reachable point underflows even
    /// at the maximum possible depth (transitive).
    dd: i64,
    /// The point establishing `dd`.
    dd_at: Option<(usize, usize)>,
    /// Maximum data growth above entry (transitive; may be [`INF`]).
    grow: i64,
    /// Maximum return-stack growth (transitive; may be [`INF`]).
    r_grow: i64,
    /// Set when the word could not be analyzed: `(ip, reason)`.
    unknown: Option<(usize, String)>,
}

impl Summary {
    fn poisoned(ip: usize, reason: String) -> Self {
        Summary {
            variants: Vec::new(),
            net_lo: NEG_INF,
            net_hi: INF,
            has_return: true,
            consumes: INF,
            consumes_at: None,
            dd: NEG_INF,
            dd_at: None,
            grow: INF,
            r_grow: INF,
            unknown: Some((ip, reason)),
        }
    }

    fn provisional(effect: depth::WordEffect) -> Option<Self> {
        match effect {
            depth::WordEffect::Net { net, consumes } => Some(Summary {
                variants: vec![(i64::from(net), AVal::Any)],
                net_lo: i64::from(net),
                net_hi: i64::from(net),
                has_return: true,
                consumes: i64::from(consumes),
                consumes_at: None,
                dd: NEG_INF,
                dd_at: None,
                grow: INF,
                r_grow: INF,
                unknown: None,
            }),
            _ => None,
        }
    }
}

/// Statically frozen memory: byte ranges no runtime store can write.
struct FrozenMem {
    ranges: Vec<(Cell, Cell)>,
    all_mutable: bool,
}

impl FrozenMem {
    fn compute(p: &Program) -> Self {
        let leaders: BTreeSet<usize> = p.leaders().into_iter().collect();
        let mut ranges = Vec::new();
        let mut all_mutable = false;
        for (ip, inst) in p.insts().iter().enumerate() {
            let width = match inst {
                Inst::Store | Inst::PlusStore => CELL_BYTES as Cell,
                Inst::CStore => 1,
                _ => continue,
            };
            // The address is known only when the store directly follows
            // the Lit producing it (no branch can land between them).
            if ip > 0 && !leaders.contains(&ip) {
                if let Inst::Lit(a) = p.insts()[ip - 1] {
                    ranges.push((a, width));
                    continue;
                }
            }
            all_mutable = true;
        }
        FrozenMem {
            ranges,
            all_mutable,
        }
    }

    fn cell_frozen(&self, addr: Cell) -> bool {
        if self.all_mutable || addr < 0 {
            return false;
        }
        let w = CELL_BYTES as Cell;
        !self
            .ranges
            .iter()
            .any(|&(s, len)| s < addr.saturating_add(w) && addr < s.saturating_add(len))
    }
}

/// Per-word analysis output.
struct WordResult {
    summary: Summary,
    points: BTreeMap<usize, Point>,
    preds: BTreeMap<usize, usize>,
    deps: BTreeSet<(Cell, Cell)>,
    pending: BTreeSet<usize>,
    lints: Vec<(LintKind, usize, String)>,
}

/// Analysis context for a single word.
struct WordCtx<'a> {
    p: &'a Program,
    entry: usize,
    budget: &'a AnalysisBudget,
    summaries: &'a BTreeMap<usize, Summary>,
    frozen: &'a FrozenMem,
    mem: Option<&'a Machine>,
    frames: BTreeMap<usize, Vec<Frame>>,
    visits: BTreeMap<usize, u32>,
    points: BTreeMap<usize, Point>,
    preds: BTreeMap<usize, usize>,
    variants: Vec<(i64, i64, AVal)>,
    consumes: i64,
    consumes_at: Option<(usize, usize)>,
    dd: i64,
    dd_at: Option<(usize, usize)>,
    deps: BTreeSet<(Cell, Cell)>,
    pending: BTreeSet<usize>,
    /// Per-branch fold consistency: `Some(true)` = always taken (zero
    /// condition), `Some(false)` = never taken (non-zero), `None` = mixed.
    branch_folds: BTreeMap<usize, Option<bool>>,
    /// Per-instruction constant-fold consistency: `Some(v)` = the result
    /// is `v` on every abstract path, `None` = imprecise or varying.
    const_folds: BTreeMap<usize, Option<Cell>>,
    /// Join points where interval widening saturated an endpoint.
    widened: BTreeSet<usize>,
}

impl<'a> WordCtx<'a> {
    /// Record how a conditional branch resolved on this abstract path.
    fn note_branch(&mut self, ip: usize, taken: Option<bool>) {
        self.branch_folds
            .entry(ip)
            .and_modify(|e| {
                if *e != taken {
                    *e = None;
                }
            })
            .or_insert(taken);
    }

    /// Record the folded result of a computational instruction.
    fn note_fold(&mut self, ip: usize, v: AVal) {
        let c = match v {
            AVal::Const(c) => Some(c),
            _ => None,
        };
        self.const_folds
            .entry(ip)
            .and_modify(|e| {
                if *e != c {
                    *e = None;
                }
            })
            .or_insert(c);
    }
    /// Record a data-stack demand of `n` cells at `ip` given frame `f`.
    fn note_need(&mut self, ip: usize, f: &Frame, n: i64) {
        if n <= 0 {
            return;
        }
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        pt.need = pt.need.max(n);
        let contribution = sadd(n, -f.dlo);
        if contribution > self.consumes {
            self.consumes = contribution;
            self.consumes_at = Some((self.entry, ip));
        }
        let definite = sadd(n, -f.dhi);
        if definite > self.dd {
            self.dd = definite;
            self.dd_at = Some((self.entry, ip));
        }
    }

    /// Apply a resolved call to `target` from frame `f` at `ip`.
    fn do_call(
        &mut self,
        ip: usize,
        target: usize,
        f: &Frame,
    ) -> Result<Vec<(usize, Frame)>, String> {
        let Some(s) = self.summaries.get(&target) else {
            self.pending.insert(target);
            return Ok(Vec::new());
        };
        if s.unknown.is_some() {
            return Err(format!("calls word @{target} that could not be analyzed"));
        }
        // Transitive demands: the callee's consumption applies at the
        // caller's depth here; its definite demand composes on the upper
        // bound; its growth composes on both stacks.
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        pt.need = pt.need.max(s.consumes);
        pt.peak = pt.peak.max(sadd(f.dhi, s.grow));
        pt.rpeak = pt.rpeak.max(sadd(f.r as i64 + 1, s.r_grow));
        let contribution = sadd(s.consumes, -f.dlo);
        if contribution > self.consumes {
            self.consumes = contribution;
            self.consumes_at = s.consumes_at.or(Some((self.entry, ip)));
        }
        let definite = sadd(s.dd, -f.dhi);
        if definite > self.dd {
            self.dd = definite;
            self.dd_at = s.dd_at.or(Some((self.entry, ip)));
        }
        if !s.has_return {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        if s.variants.is_empty() {
            let mut g = f.clone();
            apply_call_effect(&mut g, s.consumes, s.net_lo, s.net_hi, AVal::Any);
            out.push((ip + 1, g));
        } else {
            for &(net, top) in &s.variants {
                let mut g = f.clone();
                apply_call_effect(&mut g, s.consumes, net, net, top);
                out.push((ip + 1, g));
            }
        }
        Ok(out)
    }

    /// Abstractly execute the instruction at `ip` on frame `f`.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, ip: usize, f: &Frame) -> Result<Vec<(usize, Frame)>, String> {
        let Some(&inst) = self.p.insts().get(ip) else {
            // Falling off the program is an InstructionOutOfBounds trap in
            // every mode: the path ends here.
            return Ok(Vec::new());
        };
        let eff = inst.effect();
        self.note_need(ip, f, i64::from(eff.pops));
        {
            let pt = self.points.entry(ip).or_insert_with(Point::new);
            pt.peak = pt.peak.max(f.dhi);
            pt.rpeak = pt.rpeak.max(f.r as i64);
        }
        let fall = ip + 1;
        let mut g = f.clone();
        let out: Vec<(usize, Frame)> = match inst {
            Inst::Lit(n) => {
                g.push(AVal::Const(n));
                vec![(fall, g)]
            }
            Inst::Div | Inst::Mod => {
                let b = g.pop();
                let a = g.pop();
                if b == AVal::Const(0) {
                    Vec::new() // definite division-by-zero: path ends
                } else {
                    let v = fold2(inst, a, b);
                    self.note_fold(ip, v);
                    g.push(v);
                    vec![(fall, g)]
                }
            }
            Inst::Add
            | Inst::Sub
            | Inst::Mul
            | Inst::And
            | Inst::Or
            | Inst::Xor
            | Inst::Lshift
            | Inst::Rshift
            | Inst::Min
            | Inst::Max
            | Inst::Eq
            | Inst::Ne
            | Inst::Lt
            | Inst::Gt
            | Inst::Le
            | Inst::Ge
            | Inst::ULt
            | Inst::UGt => {
                let b = g.pop();
                let a = g.pop();
                let v = fold2(inst, a, b);
                self.note_fold(ip, v);
                g.push(v);
                vec![(fall, g)]
            }
            Inst::Negate
            | Inst::Invert
            | Inst::Abs
            | Inst::OnePlus
            | Inst::OneMinus
            | Inst::TwoStar
            | Inst::TwoSlash
            | Inst::ZeroEq
            | Inst::ZeroNe
            | Inst::ZeroLt
            | Inst::ZeroGt
            | Inst::CellPlus
            | Inst::Cells
            | Inst::CharPlus => {
                let a = g.pop();
                let v = fold1(inst, a);
                self.note_fold(ip, v);
                g.push(v);
                vec![(fall, g)]
            }
            Inst::Dup => {
                let a = g.pop();
                g.push(a);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Drop => {
                g.pop();
                vec![(fall, g)]
            }
            Inst::Swap => {
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Over => {
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::Rot => {
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(c);
                g.push(a);
                vec![(fall, g)]
            }
            Inst::MinusRot => {
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(c);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::Nip => {
                let b = g.pop();
                let _ = g.pop();
                g.push(b);
                vec![(fall, g)]
            }
            Inst::Tuck => {
                let b = g.pop();
                let a = g.pop();
                g.push(b);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoDup => {
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoDrop => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::TwoSwap => {
                let d = g.pop();
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(c);
                g.push(d);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::TwoOver => {
                let d = g.pop();
                let c = g.pop();
                let b = g.pop();
                let a = g.pop();
                g.push(a);
                g.push(b);
                g.push(c);
                g.push(d);
                g.push(a);
                g.push(b);
                vec![(fall, g)]
            }
            Inst::QDup => {
                let a = g.pop();
                match a {
                    AVal::Const(0) => {
                        g.push(AVal::Const(0));
                        vec![(fall, g)]
                    }
                    AVal::Const(v) => {
                        g.push(AVal::Const(v));
                        g.push(AVal::Const(v));
                        vec![(fall, g)]
                    }
                    v if v.nonzero() => {
                        g.push(v);
                        g.push(v);
                        vec![(fall, g)]
                    }
                    v => {
                        // Fork: the no-dup outcome pins the top to zero,
                        // the dup outcome refines the value as non-zero.
                        let mut z = g.clone();
                        z.push(AVal::Const(0));
                        let nz = match v {
                            AVal::Any => AVal::NonZero,
                            AVal::Range(0, h) => AVal::range(1, h),
                            AVal::Range(l, 0) => AVal::range(l, -1),
                            other => other,
                        };
                        g.push(nz);
                        g.push(nz);
                        vec![(fall, z), (fall, g)]
                    }
                }
            }
            Inst::Pick => {
                // The index pop is the only depth demand; the read is
                // guarded by the PickOutOfRange check every mode retains.
                let u = g.pop();
                if let AVal::Const(n) = u {
                    if n < 0 {
                        return Ok(Vec::new()); // always out of range
                    }
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Depth => {
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::ToR => {
                g.pop();
                g.r += 1;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::FromR => {
                if g.r < 1 {
                    return Err("pops the return stack below the word frame".into());
                }
                g.r -= 1;
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::RFetch => {
                if g.r < 1 {
                    return Err("reads the return stack below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::TwoToR => {
                g.pop();
                g.pop();
                g.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::TwoFromR => {
                if g.r < 2 {
                    return Err("pops the return stack below the word frame".into());
                }
                g.r -= 2;
                g.push(AVal::Any);
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::TwoRFetch => {
                if g.r < 2 {
                    return Err("reads the return stack below the word frame".into());
                }
                g.push(AVal::Any);
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Fetch => {
                let a = g.pop();
                let mut v = AVal::Any;
                if let (AVal::Const(addr), Some(m)) = (a, self.mem) {
                    if self.frozen.cell_frozen(addr) {
                        // Out-of-bounds loads stay Any: the admitted
                        // machine may be sized differently, and every
                        // mode retains the memory check.
                        if let Some(x) = m.load_cell(addr) {
                            self.deps.insert((addr, x));
                            v = AVal::Const(x);
                        }
                    }
                }
                g.push(v);
                vec![(fall, g)]
            }
            Inst::CFetch => {
                // Byte loads are zero-extended: the result is in [0, 255].
                g.pop();
                g.push(AVal::range(0, 255));
                vec![(fall, g)]
            }
            Inst::Store | Inst::CStore | Inst::PlusStore => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::Branch(t) => vec![(t as usize, g)],
            Inst::BranchIfZero(t) => {
                let c = g.pop();
                if c == AVal::Const(0) {
                    self.note_branch(ip, Some(true));
                    vec![(t as usize, g)]
                } else if c.nonzero() {
                    self.note_branch(ip, Some(false));
                    vec![(fall, g)]
                } else {
                    self.note_branch(ip, None);
                    vec![(t as usize, g.clone()), (fall, g)]
                }
            }
            Inst::Call(t) => self.do_call(ip, t as usize, f)?,
            Inst::Execute => {
                let tok = g.pop();
                match tok {
                    AVal::Const(c) => {
                        if c < 0 || c as usize >= self.p.len() {
                            Vec::new() // always an invalid token
                        } else {
                            self.do_call(ip, c as usize, &g)?
                        }
                    }
                    _ => return Err("executes an unresolvable token".into()),
                }
            }
            Inst::Return => {
                if g.r != 0 {
                    return Err("returns with word-frame cells still on the return stack".into());
                }
                let top = g.tops.last().copied().unwrap_or(AVal::Any);
                self.variants.push((g.dlo, g.dhi, top));
                Vec::new()
            }
            Inst::Halt => Vec::new(),
            Inst::Nop => vec![(fall, g)],
            Inst::DoSetup => {
                g.pop();
                g.pop();
                g.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(g.r as i64);
                vec![(fall, g)]
            }
            Inst::QDoSetup(t) => {
                let start = g.pop();
                let limit = g.pop();
                let mut enter = g.clone();
                enter.r += 2;
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                pt.rpeak = pt.rpeak.max(enter.r as i64);
                match (limit, start) {
                    (AVal::Const(l), AVal::Const(s)) if l == s => vec![(t as usize, g)],
                    (AVal::Const(l), AVal::Const(s)) if l != s => vec![(fall, enter)],
                    _ => vec![(t as usize, g), (fall, enter)],
                }
            }
            Inst::LoopInc(t) => {
                if g.r < 2 {
                    return Err("loop bookkeeping reaches below the word frame".into());
                }
                let mut exit = g.clone();
                exit.r -= 2;
                vec![(t as usize, g), (fall, exit)]
            }
            Inst::PlusLoopInc(t) => {
                g.pop();
                if g.r < 2 {
                    return Err("loop bookkeeping reaches below the word frame".into());
                }
                let mut exit = g.clone();
                exit.r -= 2;
                vec![(t as usize, g), (fall, exit)]
            }
            Inst::LoopI => {
                if g.r < 1 {
                    return Err("reads a loop index below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::LoopJ => {
                if g.r < 4 {
                    return Err("reads an outer loop index below the word frame".into());
                }
                g.push(AVal::Any);
                vec![(fall, g)]
            }
            Inst::Unloop => {
                if g.r < 2 {
                    return Err("unloops below the word frame".into());
                }
                g.r -= 2;
                vec![(fall, g)]
            }
            Inst::Emit | Inst::Dot => {
                g.pop();
                vec![(fall, g)]
            }
            Inst::Type => {
                g.pop();
                g.pop();
                vec![(fall, g)]
            }
            Inst::Cr => vec![(fall, g)],
        };
        // Cover successor depths in this point's peaks (call sites already
        // added callee growth above).
        let pt = self.points.entry(ip).or_insert_with(Point::new);
        for (_, s) in &out {
            pt.peak = pt.peak.max(s.dhi);
            pt.rpeak = pt.rpeak.max(s.r as i64);
        }
        Ok(out)
    }

    /// Join `f` into the frame set at `ip`; returns whether it changed.
    fn join(&mut self, ip: usize, from: usize, mut f: Frame) -> bool {
        f.canon();
        let visits = *self.visits.get(&ip).unwrap_or(&0);
        if visits > self.budget.strip_after {
            f.tops.clear();
        }
        let widen = visits > self.budget.widen_after;
        let set = self.frames.entry(ip).or_default();
        let mut changed = false;
        let mut saturated = false;
        if let Some(g) = set.iter_mut().find(|g| g.r == f.r && g.tops == f.tops) {
            if f.dlo < g.dlo {
                g.dlo = if widen { NEG_INF } else { f.dlo };
                changed = true;
            }
            if f.dhi > g.dhi {
                g.dhi = if widen { INF } else { f.dhi };
                changed = true;
            }
        } else if visits >= self.budget.value_join_after && set.iter().any(|g| g.r == f.r) {
            // Loop-head value join: revisits are accumulating, so instead
            // of growing the frame set merge element-wise (aligned at the
            // top of stack) into a frame of equal return-stack shape, and
            // widen interval endpoints that keep growing.
            let g = set.iter_mut().find(|g| g.r == f.r).unwrap();
            let n = g.tops.len().min(f.tops.len());
            let mut tops: Vec<AVal> = Vec::with_capacity(n);
            for k in 0..n {
                let ga = g.tops[g.tops.len() - n + k];
                let fa = f.tops[f.tops.len() - n + k];
                let (j, sat) = join_aval(ga, fa, widen);
                saturated |= sat;
                tops.push(j);
            }
            while tops.first() == Some(&AVal::Any) {
                tops.remove(0);
            }
            if g.tops != tops {
                g.tops = tops;
                changed = true;
            }
            if f.dlo < g.dlo {
                g.dlo = if widen { NEG_INF } else { f.dlo };
                changed = true;
            }
            if f.dhi > g.dhi {
                g.dhi = if widen { INF } else { f.dhi };
                changed = true;
            }
        } else if set.len() >= self.budget.max_frames {
            // Collapse: abandon constant tracking, merge per r-frame.
            let mut merged: Vec<Frame> = Vec::new();
            f.tops.clear();
            for mut g in set.drain(..).chain(std::iter::once(f)) {
                g.tops.clear();
                if let Some(m) = merged.iter_mut().find(|m| m.r == g.r) {
                    m.dlo = m.dlo.min(g.dlo);
                    m.dhi = m.dhi.max(g.dhi);
                } else {
                    merged.push(g);
                }
            }
            *set = merged;
            changed = true;
        } else {
            set.push(f);
            changed = true;
        }
        if saturated {
            self.widened.insert(ip);
        }
        if changed {
            *self.visits.entry(ip).or_insert(0) += 1;
            self.preds.entry(ip).or_insert(from);
            if let Some(frames) = self.frames.get(&ip) {
                let pt = self.points.entry(ip).or_insert_with(Point::new);
                for g in frames {
                    pt.dlo = pt.dlo.min(g.dlo);
                    pt.dhi = pt.dhi.max(g.dhi);
                }
            }
        }
        changed
    }

    fn run(&mut self) -> Result<(), (usize, String)> {
        let entry_frame = Frame::entry();
        self.join(self.entry, self.entry, entry_frame);
        let mut worklist: Vec<usize> = vec![self.entry];
        while let Some(ip) = worklist.pop() {
            let frames = self.frames.get(&ip).cloned().unwrap_or_default();
            for f in &frames {
                let succs = self.step(ip, f).map_err(|e| (ip, e))?;
                for (sip, sf) in succs {
                    if self.join(sip, ip, sf) && !worklist.contains(&sip) {
                        worklist.push(sip);
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(mut self) -> WordResult {
        // Record the entry point even for empty words.
        let pt = self.points.entry(self.entry).or_insert_with(Point::new);
        pt.dlo = pt.dlo.min(0);
        pt.dhi = pt.dhi.max(0);
        pt.peak = pt.peak.max(0);
        let mut variants: Vec<(i64, AVal)> = Vec::new();
        let mut exact = true;
        let mut net_lo = INF;
        let mut net_hi = NEG_INF;
        for &(lo, hi, top) in &self.variants {
            net_lo = net_lo.min(lo);
            net_hi = net_hi.max(hi);
            if lo == hi {
                if !variants.contains(&(lo, top)) {
                    variants.push((lo, top));
                }
            } else {
                exact = false;
            }
        }
        if !exact || variants.len() > MAX_VARIANTS {
            variants.clear();
        }
        let has_return = !self.variants.is_empty();
        if !has_return {
            net_lo = 0;
            net_hi = 0;
        }
        let grow = self
            .points
            .values()
            .map(|p| p.peak)
            .max()
            .unwrap_or(0)
            .max(0);
        let r_grow = self
            .points
            .values()
            .map(|p| p.rpeak)
            .max()
            .unwrap_or(0)
            .max(0);
        let summary = Summary {
            variants,
            net_lo,
            net_hi,
            has_return,
            consumes: self.consumes.max(0),
            consumes_at: self.consumes_at,
            dd: self.dd,
            dd_at: self.dd_at,
            grow,
            r_grow,
            unknown: None,
        };
        let mut lints: Vec<(LintKind, usize, String)> = Vec::new();
        for (&ip, &state) in &self.branch_folds {
            match (state, self.p.insts().get(ip)) {
                (Some(true), Some(Inst::BranchIfZero(_))) => lints.push((
                    LintKind::DeadArm,
                    ip,
                    format!(
                        "condition is always zero: the fall-through arm at {} is unreachable",
                        ip + 1
                    ),
                )),
                (Some(false), Some(&Inst::BranchIfZero(t))) => lints.push((
                    LintKind::NonzeroBranchFold,
                    ip,
                    format!("condition proven nonzero: the branch to {t} is never taken"),
                )),
                _ => {}
            }
        }
        for (&ip, &v) in &self.const_folds {
            if let Some(v) = v {
                lints.push((
                    LintKind::ConstFoldable,
                    ip,
                    format!("constant-foldable: always evaluates to {v}"),
                ));
            }
        }
        for &ip in &self.widened {
            lints.push((
                LintKind::WideningLoopHead,
                ip,
                "value interval widened at loop head".to_string(),
            ));
        }
        WordResult {
            summary,
            points: self.points,
            preds: self.preds,
            deps: self.deps,
            pending: self.pending,
            lints,
        }
    }
}

/// Join two abstract values; with `widen`, saturate endpoints that grew
/// relative to the existing value `a`. Returns the join and whether an
/// endpoint was widened away.
fn join_aval(a: AVal, b: AVal, widen: bool) -> (AVal, bool) {
    if a == b {
        return (a, false);
    }
    match (a.bounds(), b.bounds()) {
        (Some((la, ha)), Some((lb, hb))) => {
            let mut lo = la.min(lb);
            let mut hi = ha.max(hb);
            let mut sat = false;
            if widen {
                if lb < la {
                    lo = Cell::MIN;
                    sat = true;
                }
                if hb > ha {
                    hi = Cell::MAX;
                    sat = true;
                }
            }
            (AVal::range(lo, hi), sat)
        }
        _ => {
            if a.nonzero() && b.nonzero() {
                (AVal::NonZero, false)
            } else {
                (AVal::Any, false)
            }
        }
    }
}

/// Apply a callee's effect to the caller frame.
fn apply_call_effect(g: &mut Frame, consumes: i64, net_lo: i64, net_hi: i64, top: AVal) {
    let c = consumes.clamp(0, INF);
    let drop_n = (g.tops.len() as i64).min(c).max(0) as usize;
    let keep = g.tops.len() - drop_n;
    g.tops.truncate(keep);
    g.dlo = sadd(g.dlo, net_lo);
    g.dhi = sadd(g.dhi, net_hi);
    if net_lo == net_hi {
        let pushed = sadd(c, net_lo).max(0).min(TOPS_WINDOW as i64 + 1);
        if pushed > 0 {
            for _ in 0..pushed - 1 {
                g.tops.push(AVal::Any);
            }
            g.tops.push(top);
            while g.tops.len() > TOPS_WINDOW {
                g.tops.remove(0);
            }
        }
    } else {
        g.tops.clear();
    }
}

/// Interval from `i128` endpoints, degrading to [`AVal::Any`] on overflow.
fn wide(lo: i128, hi: i128) -> AVal {
    if lo >= Cell::MIN as i128 && hi <= Cell::MAX as i128 {
        AVal::range(lo as Cell, hi as Cell)
    } else {
        AVal::Any
    }
}

/// Fold a comparison that is decided when `always` or `never` holds.
fn cmp_fold(always: bool, never: bool) -> AVal {
    if always {
        AVal::Const(TRUE)
    } else if never {
        AVal::Const(FALSE)
    } else {
        AVal::Any
    }
}

/// Smallest all-ones mask covering a non-negative value.
fn ones_cover(v: Cell) -> Cell {
    let mut m = v;
    m |= m >> 1;
    m |= m >> 2;
    m |= m >> 4;
    m |= m >> 8;
    m |= m >> 16;
    m |= m >> 32;
    m
}

/// Fold a binary operation over abstract operands: concrete folding via
/// the shared [`stackcache_vm::fold`] hooks, then interval transfer.
#[allow(clippy::too_many_lines)]
pub(crate) fn fold2(inst: Inst, a: AVal, b: AVal) -> AVal {
    if let (AVal::Const(x), AVal::Const(y)) = (a, b) {
        // Division by zero is routed by the caller before folding.
        return vmfold::fold2(inst, x, y).map_or(AVal::Any, AVal::Const);
    }
    match (inst, a.bounds(), b.bounds()) {
        (Inst::Add, Some((la, ha)), Some((lb, hb))) => {
            wide(la as i128 + lb as i128, ha as i128 + hb as i128)
        }
        (Inst::Sub, Some((la, ha)), Some((lb, hb))) => {
            wide(la as i128 - hb as i128, ha as i128 - lb as i128)
        }
        (Inst::Mul, Some((la, ha)), Some((lb, hb))) => {
            let ps = [
                la as i128 * lb as i128,
                la as i128 * hb as i128,
                ha as i128 * lb as i128,
                ha as i128 * hb as i128,
            ];
            wide(*ps.iter().min().unwrap(), *ps.iter().max().unwrap())
        }
        (Inst::Min, Some((la, ha)), Some((lb, hb))) => AVal::range(la.min(lb), ha.min(hb)),
        (Inst::Max, Some((la, ha)), Some((lb, hb))) => AVal::range(la.max(lb), ha.max(hb)),
        (Inst::Div, Some((la, ha)), Some((d, d2))) if d == d2 && d > 0 => {
            AVal::range(la.div_euclid(d), ha.div_euclid(d))
        }
        // Divisor proven positive: floored remainder lies in [0, b-1].
        (Inst::Mod, _, Some((lb, hb))) if lb > 0 => AVal::range(0, hb - 1),
        (Inst::And, _, Some((lb, hb))) if lb >= 0 => AVal::range(0, hb),
        (Inst::And, Some((la, ha)), _) if la >= 0 => AVal::range(0, ha),
        (Inst::Or, Some((la, ha)), Some((lb, hb))) if la >= 0 && lb >= 0 => {
            AVal::range(la.max(lb), ones_cover(ha | hb))
        }
        (Inst::Xor, Some((la, ha)), Some((lb, hb))) if la >= 0 && lb >= 0 => {
            AVal::range(0, ones_cover(ha | hb))
        }
        (Inst::Rshift, _, Some((k, k2))) if k == k2 => {
            let k = (k as u64) & 63;
            if k == 0 {
                a
            } else {
                AVal::range(0, (u64::MAX >> k) as Cell)
            }
        }
        (Inst::Lshift, Some((la, ha)), Some((k, k2))) if k == k2 && la >= 0 => {
            let k = (k as u64) & 63;
            if k < 63 && (ha as i128) << k <= Cell::MAX as i128 {
                AVal::range(la << k, ha << k)
            } else {
                AVal::Any
            }
        }
        (Inst::Eq, Some((la, ha)), Some((lb, hb))) => cmp_fold(false, ha < lb || hb < la),
        (Inst::Ne, Some((la, ha)), Some((lb, hb))) => cmp_fold(ha < lb || hb < la, false),
        (Inst::Lt, Some((la, ha)), Some((lb, hb))) => cmp_fold(ha < lb, la >= hb),
        (Inst::Gt, Some((la, ha)), Some((lb, hb))) => cmp_fold(la > hb, ha <= lb),
        (Inst::Le, Some((la, ha)), Some((lb, hb))) => cmp_fold(ha <= lb, la > hb),
        (Inst::Ge, Some((la, ha)), Some((lb, hb))) => cmp_fold(la >= hb, ha < lb),
        (Inst::ULt, Some((la, ha)), Some((lb, hb))) if la >= 0 && lb >= 0 => {
            cmp_fold(ha < lb, la >= hb)
        }
        (Inst::UGt, Some((la, ha)), Some((lb, hb))) if la >= 0 && lb >= 0 => {
            cmp_fold(la > hb, ha <= lb)
        }
        _ => AVal::Any,
    }
}

/// Fold a unary operation over an abstract operand.
pub(crate) fn fold1(inst: Inst, a: AVal) -> AVal {
    if let AVal::Const(x) = a {
        return vmfold::fold1(inst, x).map_or(AVal::Any, AVal::Const);
    }
    match (inst, a) {
        (Inst::ZeroEq, v) if v.nonzero() => return AVal::Const(FALSE),
        (Inst::ZeroNe, v) if v.nonzero() => return AVal::Const(TRUE),
        (Inst::Negate | Inst::Abs, AVal::NonZero) => return AVal::NonZero,
        _ => {}
    }
    let Some((l, h)) = a.bounds() else {
        return AVal::Any;
    };
    match inst {
        Inst::Negate | Inst::Abs if l == Cell::MIN => AVal::Any, // wraps
        Inst::Negate => AVal::range(-h, -l),
        Inst::Abs => {
            if l >= 0 {
                a
            } else if h <= 0 {
                AVal::range(-h, -l)
            } else {
                AVal::range(0, h.max(-l))
            }
        }
        Inst::Invert => AVal::range(!h, !l),
        Inst::OnePlus | Inst::CharPlus => wide(l as i128 + 1, h as i128 + 1),
        Inst::OneMinus => wide(l as i128 - 1, h as i128 - 1),
        Inst::TwoStar => wide(l as i128 * 2, h as i128 * 2),
        Inst::TwoSlash => AVal::range(l >> 1, h >> 1),
        Inst::CellPlus => wide(
            l as i128 + CELL_BYTES as i128,
            h as i128 + CELL_BYTES as i128,
        ),
        Inst::Cells => wide(
            l as i128 * CELL_BYTES as i128,
            h as i128 * CELL_BYTES as i128,
        ),
        Inst::ZeroLt => cmp_fold(h < 0, l >= 0),
        Inst::ZeroGt => cmp_fold(l > 0, h <= 0),
        _ => AVal::Any,
    }
}

/// Per-word line of the analysis report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordReport {
    /// Entry instruction index.
    pub entry: usize,
    /// Symbolic name, when the program carries one.
    pub name: Option<String>,
    /// `"ok"` or the reason the word could not be analyzed.
    pub status: String,
    /// Net data-stack effect interval over all returns (`None` when the
    /// word never returns).
    pub net: Option<(i64, i64)>,
    /// Cells consumed below the entry depth (transitive).
    pub consumes: i64,
    /// Maximum data-stack growth above entry (transitive).
    pub grow: Bound,
    /// Maximum return-stack growth (transitive).
    pub r_grow: Bound,
}

/// The full analysis result: the proof plus per-word reporting detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The safety proof / verdict.
    pub proof: SafetyProof,
    /// Per-word summaries in entry order.
    pub words: Vec<WordReport>,
}

fn diagnostic_at(
    p: &Program,
    results: &BTreeMap<usize, WordResult>,
    word: usize,
    ip: usize,
    reason: String,
) -> Diagnostic {
    let witness = results
        .get(&word)
        .map(|r| witness_path(&r.preds, word, ip))
        .unwrap_or_default();
    Diagnostic {
        ip,
        word,
        word_name: p.name_at(word).map(ToString::to_string),
        inst: p
            .insts()
            .get(ip)
            .map_or_else(|| "<end>".to_string(), |i| i.name().to_string()),
        reason,
        witness,
    }
}

fn witness_path(preds: &BTreeMap<usize, usize>, entry: usize, ip: usize) -> Vec<usize> {
    let mut path = vec![ip];
    let mut cur = ip;
    let mut seen = BTreeSet::new();
    while cur != entry && seen.insert(cur) {
        match preds.get(&cur) {
            Some(&prev) if prev != cur => {
                path.push(prev);
                cur = prev;
            }
            _ => break,
        }
    }
    path.reverse();
    path
}

/// Run whole-program abstract interpretation.
///
/// `initial` is the machine image the program will start from (its memory
/// feeds frozen-cell resolution of `Lit; Fetch; Execute` dispatch); pass
/// `None` to analyze without memory knowledge — deferred dispatch then
/// yields [`Verdict::Unknown`].
#[must_use]
pub fn analyze(program: &Program, initial: Option<&Machine>) -> Analysis {
    analyze_with(program, initial, &AnalysisBudget::quick())
}

/// Run whole-program abstract interpretation under an explicit
/// [`AnalysisBudget`].
///
/// [`AnalysisBudget::quick`] is what the serving path uses;
/// [`AnalysisBudget::deep`] spends more rounds and frames (and unrolls
/// counted loops further) in exchange for tighter verdicts — it is what the
/// background re-admission pass and `stklint` run.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze_with(
    program: &Program,
    initial: Option<&Machine>,
    budget: &AnalysisBudget,
) -> Analysis {
    let frozen = FrozenMem::compute(program);
    let depth_info = depth::analyze(program);
    let mut words: BTreeSet<usize> = BTreeSet::new();
    words.insert(program.entry());
    let mut summaries: BTreeMap<usize, Summary> = BTreeMap::new();
    let mut results: BTreeMap<usize, WordResult> = BTreeMap::new();
    let mut converged = false;
    for round in 0..budget.max_rounds {
        let mut changed = false;
        for &w in &words.clone() {
            let mut ctx = WordCtx {
                p: program,
                entry: w,
                summaries: &summaries,
                frozen: &frozen,
                mem: initial,
                budget,
                frames: BTreeMap::new(),
                visits: BTreeMap::new(),
                points: BTreeMap::new(),
                preds: BTreeMap::new(),
                variants: Vec::new(),
                consumes: 0,
                consumes_at: None,
                dd: NEG_INF,
                dd_at: None,
                deps: BTreeSet::new(),
                pending: BTreeSet::new(),
                branch_folds: BTreeMap::new(),
                const_folds: BTreeMap::new(),
                widened: BTreeSet::new(),
            };
            let res = match ctx.run() {
                Ok(()) => ctx.finalize(),
                Err((ip, reason)) => {
                    let points = std::mem::take(&mut ctx.points);
                    let preds = std::mem::take(&mut ctx.preds);
                    let deps = std::mem::take(&mut ctx.deps);
                    let pending = std::mem::take(&mut ctx.pending);
                    WordResult {
                        summary: Summary::poisoned(ip, reason),
                        points,
                        preds,
                        deps,
                        pending,
                        lints: Vec::new(),
                    }
                }
            };
            for &t in &res.pending {
                if words.insert(t) {
                    if let Some(s) = depth_info.effect_of(t).and_then(Summary::provisional) {
                        summaries.insert(t, s);
                    }
                    changed = true;
                }
            }
            let mut new = res.summary.clone();
            if round >= budget.widen_rounds {
                if let Some(old) = summaries.get(&w) {
                    if new != *old && new.unknown.is_none() && old.unknown.is_none() {
                        if new.grow > old.grow {
                            new.grow = INF;
                        }
                        if new.r_grow > old.r_grow {
                            new.r_grow = INF;
                        }
                        if new.consumes > old.consumes {
                            new.consumes = INF;
                        }
                        if new.net_lo < old.net_lo {
                            new.net_lo = NEG_INF;
                            new.variants.clear();
                        }
                        if new.net_hi > old.net_hi {
                            new.net_hi = INF;
                            new.variants.clear();
                        }
                        if new.variants != old.variants && !old.variants.is_empty() {
                            new.variants.clear();
                        }
                    }
                }
            }
            if summaries.get(&w) != Some(&new) {
                summaries.insert(w, new);
                changed = true;
            }
            results.insert(w, res);
        }
        if !changed {
            converged = true;
            break;
        }
    }

    let entry = program.entry();
    let entry_summary = summaries
        .get(&entry)
        .cloned()
        .unwrap_or_else(|| Summary::poisoned(entry, "entry word was never analyzed".to_string()));

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut frozen_deps: BTreeSet<(Cell, Cell)> = BTreeSet::new();
    for res in results.values() {
        frozen_deps.extend(res.deps.iter().copied());
    }

    let mut verdict;
    let data_needed;
    let data_max;
    let rstack_max;
    if !converged {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = Bound::Unbounded;
        rstack_max = Bound::Unbounded;
        diagnostics.push(diagnostic_at(
            program,
            &results,
            entry,
            entry,
            "the depth fixpoint did not converge".to_string(),
        ));
    } else if let Some((ip, reason)) = entry_summary.unknown.clone() {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = Bound::Unbounded;
        rstack_max = Bound::Unbounded;
        diagnostics.push(diagnostic_at(program, &results, entry, ip, reason));
        // Surface the root causes from poisoned callees too.
        for (&w, res) in &results {
            if w == entry {
                continue;
            }
            if let Some((ip, reason)) = res.summary.unknown.clone() {
                if !reason.starts_with("calls word @") {
                    diagnostics.push(diagnostic_at(program, &results, w, ip, reason));
                }
            }
        }
    } else if entry_summary.dd > 0 {
        verdict = Verdict::Rejected;
        data_needed = entry_summary.consumes;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.dd_at.unwrap_or((entry, entry));
        let need = results
            .get(&w)
            .and_then(|r| r.points.get(&ip))
            .map_or(0, |p| p.need);
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            format!(
                "definitely underflows: needs {need} cell(s) but at most {} can be on the stack",
                (need - entry_summary.dd).max(0)
            ),
        ));
    } else if entry_summary.consumes > 0 && entry_summary.consumes < INF {
        // Provable only with a preset stack; for an empty start this is
        // unproven. admit() re-evaluates against the actual preset.
        verdict = Verdict::Unknown;
        data_needed = entry_summary.consumes;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.consumes_at.unwrap_or((entry, entry));
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            format!(
                "cannot prove depth: needs {} cell(s) below the starting stack",
                entry_summary.consumes
            ),
        ));
    } else if entry_summary.consumes >= INF {
        verdict = Verdict::Unknown;
        data_needed = INF;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        let (w, ip) = entry_summary.consumes_at.unwrap_or((entry, entry));
        diagnostics.push(diagnostic_at(
            program,
            &results,
            w,
            ip,
            "cannot prove a finite depth demand at this instruction".to_string(),
        ));
    } else if entry_summary.has_return {
        // A top-level Return pops whatever return stack the host preset;
        // that is outside the program and cannot be proven here.
        verdict = Verdict::Unknown;
        data_needed = 0;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        diagnostics.push(diagnostic_at(
            program,
            &results,
            entry,
            entry,
            "the entry word can return into a host-owned return stack".to_string(),
        ));
    } else {
        data_needed = 0;
        data_max = bound(entry_summary.grow);
        rstack_max = bound(entry_summary.r_grow);
        verdict = match (data_max, rstack_max) {
            (Bound::Finite(_), Bound::Finite(_)) => Verdict::Proven,
            _ => Verdict::Guarded,
        };
    }

    // Assemble value-range lints from the per-word passes, then try to
    // strengthen a depth proof into a termination proof with the fuel pass.
    let mut lints: Vec<Lint> = Vec::new();
    for (&w, res) in &results {
        for (kind, ip, reason) in &res.lints {
            lints.push(Lint {
                kind: *kind,
                diag: diagnostic_at(program, &results, w, *ip, reason.clone()),
            });
        }
    }
    if converged {
        for (&w, s) in &summaries {
            if s.unknown.is_none() && s.r_grow >= INF {
                lints.push(Lint {
                    kind: LintKind::UnboundedRecursion,
                    diag: diagnostic_at(
                        program,
                        &results,
                        w,
                        w,
                        "return-stack growth is unbounded: possible unbounded recursion"
                            .to_string(),
                    ),
                });
            }
        }
    }
    let mut fuel_bound = Bound::Unbounded;
    if verdict == Verdict::Proven {
        if let Some(n) = crate::fuel::fuel_bound(program, budget) {
            if let Ok(b) = i64::try_from(n) {
                fuel_bound = Bound::Finite(b);
                verdict = Verdict::Total;
                lints.push(Lint {
                    kind: LintKind::FuelBound,
                    diag: diagnostic_at(
                        program,
                        &results,
                        entry,
                        entry,
                        format!("terminates within {n} instruction dispatch(es) from entry"),
                    ),
                });
            }
        }
    }
    lints.sort_by_key(|l| (l.diag.word, l.diag.ip));

    let words_report: Vec<WordReport> = words
        .iter()
        .filter_map(|&w| {
            let s = summaries.get(&w)?;
            Some(WordReport {
                entry: w,
                name: program.name_at(w).map(ToString::to_string),
                status: match &s.unknown {
                    None => "ok".to_string(),
                    Some((_, reason)) => reason.clone(),
                },
                net: if s.has_return && s.unknown.is_none() {
                    Some((s.net_lo, s.net_hi))
                } else {
                    None
                },
                consumes: s.consumes.min(INF),
                grow: bound(s.grow),
                r_grow: bound(s.r_grow),
            })
        })
        .collect();

    Analysis {
        proof: SafetyProof {
            verdict,
            data_needed,
            data_max,
            rstack_max,
            frozen_deps: frozen_deps.into_iter().collect(),
            diagnostics,
            words_analyzed: words.len(),
            fuel_bound,
            lints,
        },
        words: words_report,
    }
}
