//! Safety proofs: the verdict of the abstract interpreter and the
//! admission decision that routes a program to an unchecked engine.
//!
//! A [`SafetyProof`] is *relative to the program's entry*: it records how
//! many cells the program may consume below its starting depth
//! ([`data_needed`](SafetyProof::data_needed)) and how far it can grow
//! above it ([`data_max`](SafetyProof::data_max),
//! [`rstack_max`](SafetyProof::rstack_max)). [`SafetyProof::admit`]
//! composes those relative bounds with a concrete machine's preset stacks
//! and capacity limits to pick the strongest sound [`Checks`] level.

use std::fmt;

use stackcache_vm::{Cell, Checks, Machine};

/// An upper bound that may be unbounded (recursion, unbalanced loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// A finite bound, in cells.
    Finite(i64),
    /// No finite bound could be established.
    Unbounded,
}

impl Bound {
    /// The finite value, if any.
    #[must_use]
    pub fn finite(self) -> Option<i64> {
        match self {
            Bound::Finite(v) => Some(v),
            Bound::Unbounded => None,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(v) => write!(f, "{v}"),
            Bound::Unbounded => write!(f, "∞"),
        }
    }
}

/// The overall verdict for a program started on empty stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// [`Verdict::Proven`], *and* the fuel pass established a finite
    /// dispatch bound ([`SafetyProof::fuel_bound`]): the program provably
    /// terminates, so a server granting at least that much fuel needs no
    /// deadline timer.
    Total,
    /// Every program point has finite depth bounds and no underflow is
    /// possible: all depth checks may be elided ([`Checks::None`]) on a
    /// machine whose capacity covers [`SafetyProof::data_max`].
    Proven,
    /// Underflow is impossible but growth is unbounded (e.g. input-driven
    /// recursion): underflow checks may be elided ([`Checks::NoUnderflow`])
    /// while overflow traps stay exact.
    Guarded,
    /// Some reachable instruction *definitely* underflows on every
    /// abstract path that reaches it; the offending instruction is
    /// pinpointed in [`SafetyProof::diagnostics`].
    Rejected,
    /// The analysis could not bound the program (unresolvable `execute`,
    /// return-stack indiscipline, or imprecision); checked engines only.
    Unknown,
}

impl Verdict {
    /// Short lower-case name (`total`, `proven`, `guarded`, `rejected`,
    /// `unknown`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Total => "total",
            Verdict::Proven => "proven",
            Verdict::Guarded => "guarded",
            Verdict::Rejected => "rejected",
            Verdict::Unknown => "unknown",
        }
    }
}

/// The category of a [`Lint`] — informational findings from the interval
/// pass, reported separately from the admission-relevant
/// [`SafetyProof::diagnostics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A `?branch` whose condition is proven non-zero: never taken.
    NonzeroBranchFold,
    /// A `?branch` whose condition is always zero: the fall-through arm
    /// is unreachable.
    DeadArm,
    /// A computational instruction whose result is the same constant on
    /// every abstract path.
    ConstFoldable,
    /// A loop head where interval widening saturated an endpoint —
    /// precision was lost; a deeper budget may do better.
    WideningLoopHead,
    /// A word whose return-stack growth is unbounded: a possible
    /// unbounded-recursion site.
    UnboundedRecursion,
    /// The fuel pass proved a finite dispatch bound from the entry.
    FuelBound,
}

impl LintKind {
    /// The `stklint --deny` slug (`nonzero-branch-fold`, `dead-arm`, ...).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            LintKind::NonzeroBranchFold => "nonzero-branch-fold",
            LintKind::DeadArm => "dead-arm",
            LintKind::ConstFoldable => "const-foldable",
            LintKind::WideningLoopHead => "widening-loop-head",
            LintKind::UnboundedRecursion => "unbounded-recursion",
            LintKind::FuelBound => "fuel-bound",
        }
    }

    /// All lint kinds, for CLI enumeration.
    #[must_use]
    pub fn all() -> &'static [LintKind] {
        &[
            LintKind::NonzeroBranchFold,
            LintKind::DeadArm,
            LintKind::ConstFoldable,
            LintKind::WideningLoopHead,
            LintKind::UnboundedRecursion,
            LintKind::FuelBound,
        ]
    }
}

/// An informational finding from the interval/fuel passes, anchored to an
/// instruction with the same witness machinery as a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// The category (drives `stklint --deny`).
    pub kind: LintKind,
    /// Location, reason, and witness path.
    pub diag: Diagnostic,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.slug(), self.diag)
    }
}

/// A clippy-style finding: the offending (or unprovable) instruction,
/// the word containing it, and a witness path from the word's entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index of the finding.
    pub ip: usize,
    /// Entry index of the word containing `ip`.
    pub word: usize,
    /// Symbolic name of the word, when the program carries one.
    pub word_name: Option<String>,
    /// Mnemonic of the instruction at `ip`.
    pub inst: String,
    /// Human-readable explanation.
    pub reason: String,
    /// Instruction indices from the word's entry to `ip`, following the
    /// first abstract path that reached the finding.
    pub witness: Vec<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match &self.word_name {
            Some(n) => format!("`{n}` (entry {})", self.word),
            None => format!("word@{}", self.word),
        };
        write!(
            f,
            "`{}` at ip {} in {}: {}",
            self.inst, self.ip, word, self.reason
        )?;
        if !self.witness.is_empty() {
            let path: Vec<String> = self.witness.iter().map(ToString::to_string).collect();
            write!(f, "\n  witness: {}", path.join(" -> "))?;
        }
        Ok(())
    }
}

/// The result of whole-program abstract interpretation: depth bounds,
/// frozen-memory dependencies, and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyProof {
    /// Verdict for a run started on empty stacks.
    pub verdict: Verdict,
    /// Cells the program may pop below its entry depth (0 when it never
    /// reaches below its starting stack; `i64::MAX/4` when unprovable).
    pub data_needed: i64,
    /// Maximum data-stack growth above the entry depth.
    pub data_max: Bound,
    /// Maximum return-stack growth above the entry return-stack depth.
    pub rstack_max: Bound,
    /// `(byte address, cell value)` pairs the proof constant-folded from
    /// initial memory (deferred-word dispatch); [`SafetyProof::admit`]
    /// re-validates them against the machine it admits.
    pub frozen_deps: Vec<(Cell, Cell)>,
    /// Findings: the single definite-underflow witness for
    /// [`Verdict::Rejected`], or the lints explaining a
    /// [`Verdict::Unknown`].
    pub diagnostics: Vec<Diagnostic>,
    /// Number of words (entry points) analyzed.
    pub words_analyzed: usize,
    /// Upper bound on instruction dispatches for any run of the program
    /// (finite only with [`Verdict::Total`]).
    pub fuel_bound: Bound,
    /// Informational value-range findings: branch folds, dead arms,
    /// constant-foldable regions, widening sites, recursion sites, and
    /// the fuel bound itself.
    pub lints: Vec<Lint>,
}

impl SafetyProof {
    /// Engine stack capacities are clamped to this many cells.
    pub const ENGINE_CLAMP: i64 = 1 << 20;

    /// The strongest [`Checks`] level sound for running the proven
    /// program on `machine` (with its preset stacks and capacity limits).
    ///
    /// Returns [`Checks::Full`] whenever the proof does not cover the
    /// machine: unknown/rejected verdicts, frozen-memory mismatch, or a
    /// preset stack too shallow for [`data_needed`](Self::data_needed).
    #[must_use]
    pub fn admit(&self, machine: &Machine) -> Checks {
        if matches!(self.verdict, Verdict::Rejected | Verdict::Unknown) {
            return Checks::Full;
        }
        for &(addr, value) in &self.frozen_deps {
            if machine.load_cell(addr) != Some(value) {
                return Checks::Full;
            }
        }
        let preset = machine.stack().len() as i64;
        let rpreset = machine.rstack().len() as i64;
        if preset < self.data_needed {
            return Checks::Full;
        }
        let dlimit = (machine.stack_limit() as i64).min(Self::ENGINE_CLAMP);
        let rlimit = (machine.rstack_limit() as i64).min(Self::ENGINE_CLAMP);
        let overflow_ok = match (self.data_max, self.rstack_max) {
            (Bound::Finite(d), Bound::Finite(r)) => {
                preset.saturating_add(d) <= dlimit && rpreset.saturating_add(r) <= rlimit
            }
            _ => false,
        };
        if overflow_ok {
            Checks::None
        } else {
            Checks::NoUnderflow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proven() -> SafetyProof {
        SafetyProof {
            verdict: Verdict::Proven,
            data_needed: 0,
            data_max: Bound::Finite(4),
            rstack_max: Bound::Finite(2),
            frozen_deps: Vec::new(),
            diagnostics: Vec::new(),
            words_analyzed: 1,
            fuel_bound: Bound::Unbounded,
            lints: Vec::new(),
        }
    }

    #[test]
    fn total_admits_like_proven() {
        let mut p = proven();
        p.verdict = Verdict::Total;
        p.fuel_bound = Bound::Finite(12);
        let m = Machine::with_memory(64);
        assert_eq!(p.admit(&m), Checks::None);
    }

    #[test]
    fn admit_elides_everything_within_capacity() {
        let m = Machine::with_memory(64);
        assert_eq!(proven().admit(&m), Checks::None);
    }

    #[test]
    fn admit_keeps_overflow_checks_when_unbounded() {
        let mut p = proven();
        p.verdict = Verdict::Guarded;
        p.data_max = Bound::Unbounded;
        let m = Machine::with_memory(64);
        assert_eq!(p.admit(&m), Checks::NoUnderflow);
    }

    #[test]
    fn admit_rejects_shallow_presets() {
        let mut p = proven();
        p.data_needed = 2;
        let m = Machine::with_memory(64);
        assert_eq!(p.admit(&m), Checks::Full);
        let mut m = Machine::with_memory(64);
        m.set_stack(&[1, 2]);
        assert_eq!(p.admit(&m), Checks::None);
    }

    #[test]
    fn admit_validates_frozen_memory() {
        let mut p = proven();
        p.frozen_deps.push((8, 42));
        let mut m = Machine::with_memory(64);
        assert_eq!(p.admit(&m), Checks::Full);
        m.store_cell(8, 42);
        assert_eq!(p.admit(&m), Checks::None);
    }
}
