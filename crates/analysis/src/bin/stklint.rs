//! `stklint` — clippy-style static diagnostics for stack-machine
//! assembly programs.
//!
//! Runs the whole-program abstract interpreter (deep budget by default)
//! over each `vm::asm` file and reports everything the interval pass can
//! see: definite-underflow witnesses, proven-dead branch arms, branches
//! folded on proven-nonzero arithmetic, constant-foldable regions,
//! widened loop heads, possible unbounded-recursion sites, and proven
//! fuel bounds.
//!
//! Exit codes, clippy-style:
//!
//! * `0` — every file analyzed; no definite underflow, no denied lint;
//! * `1` — at least one file was rejected (definite underflow) or fired
//!   a lint escalated by `--deny`;
//! * `2` — usage, I/O, or assembly error.

use std::process::ExitCode;

use stackcache_analysis::{analyze_with, render_analysis, AnalysisBudget, LintKind, Verdict};

const USAGE: &str = "\
usage: stklint [options] <file.asm>...

options:
  --quick         analyze under the admission-path (quick) budget
                  instead of the deep tooling budget
  --deny <slug>   escalate a lint kind to an error (repeatable);
                  `--deny all` denies every kind except `fuel-bound`
                  (a fuel bound is a certificate, not a smell)
  -h, --help      print this help

lint slugs:
  nonzero-branch-fold  dead-arm  const-foldable  widening-loop-head
  unbounded-recursion  fuel-bound

exit codes: 0 clean; 1 definite underflow or denied lint; 2 usage error";

fn slug_to_kind(slug: &str) -> Option<LintKind> {
    LintKind::all().iter().copied().find(|k| k.slug() == slug)
}

fn main() -> ExitCode {
    let mut budget = AnalysisBudget::deep();
    let mut denied: Vec<LintKind> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--quick" => budget = AnalysisBudget::quick(),
            "--deny" => {
                let Some(slug) = args.next() else {
                    eprintln!("stklint: --deny needs a lint slug\n{USAGE}");
                    return ExitCode::from(2);
                };
                if slug == "all" {
                    denied.extend(
                        LintKind::all()
                            .iter()
                            .copied()
                            .filter(|k| *k != LintKind::FuelBound),
                    );
                } else if let Some(kind) = slug_to_kind(&slug) {
                    denied.push(kind);
                } else {
                    eprintln!("stklint: unknown lint slug `{slug}`\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!("stklint: unknown option `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("stklint: no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("stklint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match stackcache_vm::asm::assemble(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("stklint: {file}: assembly error: {e}");
                return ExitCode::from(2);
            }
        };
        let analysis = analyze_with(&program, None, &budget);
        print!("{}", render_analysis(file, &analysis));
        if analysis.proof.verdict == Verdict::Rejected {
            println!("error: {file}: definite stack underflow");
            errors += 1;
        }
        for lint in &analysis.proof.lints {
            if denied.contains(&lint.kind) {
                println!("error: {file}: denied lint {lint}");
                errors += 1;
            }
        }
    }
    if errors > 0 {
        println!("stklint: {errors} error(s) across {} file(s)", files.len());
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
