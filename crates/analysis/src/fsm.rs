//! Model checker for the cache-state transition tables.
//!
//! The transition engine ([`stackcache_core::engine`]) is the single
//! source of truth for what executing an instruction does to the stack
//! cache — the dynamic interpreters, the static compiler and every
//! instrumentation regime all consume its output. This module verifies
//! that engine *exhaustively* over the finite state space of each
//! Fig. 18 organization:
//!
//! * **closure** — every transition lands on a state of the
//!   organization (no dangling successor ids),
//! * **cached-item conservation** — the cached depth change plus the
//!   memory traffic balances the operation's net stack effect: no stack
//!   item is fabricated or silently dropped,
//! * **sp-offset consistency** — under stack-pointer-update
//!   minimization the in-memory pointer moves exactly when the cache
//!   exchanges items with memory; under the constant-k regime it tracks
//!   every depth change,
//! * **reachability** — every state is reachable from the empty cache
//!   through some sequence of instruction transitions (considering all
//!   candidate placements, as the optimal static code generator does),
//! * **move-minimality** — the greedy transition never pays more
//!   register moves than the cheapest candidate placement, and
//!   *eliminated* transitions are exactly the zero-cost shuffles.
//!
//! The `two-stacks` organization models its cached return-stack items
//! through a dedicated regime observer, not through the data-stack
//! engine, so its `rdepth > 0` states are exempt from the reachability
//! invariant (and reported as such).

use std::collections::VecDeque;

use stackcache_core::{
    compute_transition, compute_transition_all, sig_slot_name, sig_slots, CacheState, OpSig, Org,
    Policy, SigKind, StateId, Trans,
};

/// The register count the `figures analysis` report and the CI gate
/// check: large enough that every organization has non-trivial shuffle
/// states, small enough that the richest state spaces stay exhaustive.
pub const CHECKED_REGISTERS: u8 = 3;

/// Stack items assumed below the cache when probing refill policies.
const DEEPERS: [u8; 2] = [0, 8];

/// The outcome of model-checking one organization.
#[derive(Debug, Clone)]
pub struct FsmReport {
    /// Organization display name.
    pub org: String,
    /// Cache registers.
    pub registers: u8,
    /// States in the organization.
    pub states: usize,
    /// Policies probed (on-demand shallow/full followup, constant-k).
    pub policies: usize,
    /// Transitions verified (greedy plus all candidate placements, per
    /// policy and memory-stack depth).
    pub transitions: u64,
    /// Greedy transitions realized purely as a state change (the
    /// statically removable stack manipulations).
    pub eliminated: u64,
    /// States reachable from the empty cache.
    pub reachable: usize,
    /// States exempt from the reachability invariant (cached
    /// return-stack items of the two-stacks organization).
    pub exempt: usize,
    /// Invariant violations, human-readable. Empty means verified.
    pub violations: Vec<String>,
}

impl FsmReport {
    /// `true` when every invariant held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Expected refill after an opaque (cache-flushing) operation.
fn opaque_refill(policy: &Policy, deeper: u8, d: u8, sig: &OpSig) -> u16 {
    let total_after = (u16::from(deeper) + u16::from(d) + u16::from(sig.pushes))
        .saturating_sub(u16::from(sig.pops));
    match policy.refill_to {
        Some(k) => u16::from(k).min(total_after),
        None => 0,
    }
}

/// Check one transition against the conservation and sp-offset
/// invariants, appending violations to `out`.
#[allow(clippy::too_many_arguments)]
fn check_trans(
    org: &Org,
    policy: &Policy,
    from: StateId,
    slot: usize,
    sig: &OpSig,
    deeper: u8,
    t: &Trans,
    out: &mut Vec<String>,
) {
    let ctx = || {
        format!(
            "{} {} --{}--> (policy followup={} refill={:?} deeper={deeper})",
            org.name(),
            org.state(from),
            sig_slot_name(slot),
            policy.overflow_depth,
            policy.refill_to,
        )
    };

    // Closure.
    if t.next.index() >= org.state_count() {
        out.push(format!("{}: successor {} out of range", ctx(), t.next));
        return;
    }

    let d = i64::from(org.state(from).depth());
    let d2 = i64::from(org.state(t.next).depth());
    let net = i64::from(sig.pushes) - i64::from(sig.pops);

    if matches!(sig.kind, SigKind::Opaque) {
        // Flush semantics: everything cached is stored, the operation
        // runs against memory, the policy may refill into a canonical
        // followup that keeps the source's cached return items.
        let next_state = org.state(t.next);
        if !next_state.is_canonical() || next_state.rdepth() != org.state(from).rdepth() {
            out.push(format!(
                "{}: opaque successor {next_state} is not a canonical flush followup",
                ctx()
            ));
        }
        let cap = opaque_refill(policy, deeper, org.state(from).depth(), sig);
        if d2 > i64::from(cap) || (policy.refill_to.is_none() && d2 != 0) {
            out.push(format!(
                "{}: opaque refill depth {d2} exceeds policy cap {cap}",
                ctx()
            ));
        }
        // The refill is exactly the successor depth, so the traffic is
        // fully determined.
        let want_stores = d + i64::from(sig.pushes);
        let want_loads = i64::from(sig.pops) + d2;
        if i64::from(t.stores) != want_stores || i64::from(t.loads) != want_loads {
            out.push(format!(
                "{}: opaque traffic loads={} stores={} want {want_loads}/{want_stores}",
                ctx(),
                t.loads,
                t.stores
            ));
        }
    } else {
        // Cached-item conservation: cached depth change + memory-stack
        // change must equal the operation's net stack effect, and cached
        // return-stack items are untouched by data transitions.
        let balance = d2 - d + i64::from(t.stores) - i64::from(t.loads);
        if balance != net {
            out.push(format!(
                "{}: conservation broken: depth {d}->{d2}, loads={} stores={}, net {net}",
                ctx(),
                t.loads,
                t.stores
            ));
        }
        if org.state(t.next).rdepth() != org.state(from).rdepth() {
            out.push(format!(
                "{}: cached return items changed: {} -> {}",
                ctx(),
                org.state(from),
                org.state(t.next)
            ));
        }
    }

    // Sp-offset consistency.
    if policy.sp_tracks_depth {
        let want = u16::from(sig.pops != sig.pushes);
        if t.updates != want {
            out.push(format!(
                "{}: constant-k sp updates {} != {want}",
                ctx(),
                t.updates
            ));
        }
    } else if policy.refill_to.is_none() {
        if t.loads == 0 && t.stores == 0 && t.updates != 0 {
            out.push(format!(
                "{}: sp updated ({}) without memory traffic",
                ctx(),
                t.updates
            ));
        }
        if t.loads != t.stores && t.updates == 0 {
            out.push(format!(
                "{}: memory stack moved (loads={} stores={}) without an sp update",
                ctx(),
                t.loads,
                t.stores
            ));
        }
    }

    // Eliminated transitions are exactly the zero-cost shuffles.
    if t.eliminated
        && (!matches!(sig.kind, SigKind::Shuffle(_))
            || t.loads != 0
            || t.stores != 0
            || t.moves != 0
            || t.updates != 0)
    {
        out.push(format!("{}: eliminated transition has cost {t:?}", ctx()));
    }
}

/// Model-check one organization: every state, every signature slot,
/// on-demand (shallow and full followup) and constant-k policies, with
/// and without items below the cache.
#[must_use]
pub fn check_org(org: &Org) -> FsmReport {
    let sigs = sig_slots();
    let n = org.registers();
    let mut policies = vec![Policy::on_demand(1), Policy::constant_k(n)];
    if n > 1 {
        policies.insert(1, Policy::on_demand(n));
    }

    let mut violations = Vec::new();
    let mut transitions = 0u64;
    let mut eliminated = 0u64;

    for policy in &policies {
        for s in 0..org.state_count() {
            let from = StateId(s as u32);
            for (slot, sig) in sigs.iter().enumerate() {
                for &deeper in &DEEPERS {
                    let greedy = compute_transition(org, policy, from, sig, deeper);
                    let all = compute_transition_all(org, policy, from, sig, deeper);
                    transitions += all.len() as u64 + 1;
                    check_trans(
                        org,
                        policy,
                        from,
                        slot,
                        sig,
                        deeper,
                        &greedy,
                        &mut violations,
                    );
                    for t in &all {
                        check_trans(org, policy, from, slot, sig, deeper, t, &mut violations);
                    }
                    // Move-minimality: the greedy choice is one of the
                    // candidates and none of them pays fewer moves.
                    if !all.contains(&greedy) {
                        violations.push(format!(
                            "{} {} --{}--> greedy {greedy:?} not among {} candidates",
                            org.name(),
                            org.state(from),
                            sig_slot_name(slot),
                            all.len()
                        ));
                    }
                    if all.iter().any(|t| t.moves < greedy.moves) {
                        violations.push(format!(
                            "{} {} --{}--> greedy pays {} moves, a candidate pays fewer",
                            org.name(),
                            org.state(from),
                            sig_slot_name(slot),
                            greedy.moves
                        ));
                    }
                    if greedy.eliminated {
                        eliminated += 1;
                    }
                }
            }
        }
    }

    // Reachability from the empty cache, over all candidate placements
    // of the on-demand policies (what the optimal code generator may
    // use). Cached return-stack states are driven by the two-stacks
    // regime observer, not by data transitions: exempt.
    let empty = org
        .lookup(&CacheState::empty())
        .expect("organizations include the empty state");
    let mut seen = vec![false; org.state_count()];
    seen[empty.index()] = true;
    let mut queue = VecDeque::from([empty]);
    let demand: Vec<&Policy> = policies.iter().filter(|p| p.refill_to.is_none()).collect();
    while let Some(from) = queue.pop_front() {
        for policy in &demand {
            for sig in &sigs {
                for &deeper in &DEEPERS {
                    for t in compute_transition_all(org, policy, from, sig, deeper) {
                        if !seen[t.next.index()] {
                            seen[t.next.index()] = true;
                            queue.push_back(t.next);
                        }
                    }
                }
            }
        }
    }
    let mut reachable = 0usize;
    let mut exempt = 0usize;
    for (i, s) in org.states().iter().enumerate() {
        if seen[i] {
            reachable += 1;
        } else if s.rdepth() > 0 {
            exempt += 1;
        } else {
            violations.push(format!("{}: state {s} is unreachable", org.name()));
        }
    }

    FsmReport {
        org: org.name().to_string(),
        registers: n,
        states: org.state_count(),
        policies: policies.len(),
        transitions,
        eliminated,
        reachable,
        exempt,
        violations,
    }
}

/// The six Fig. 18 organizations at `registers` cache registers, in the
/// figure's row order.
#[must_use]
pub fn fig18_orgs(registers: u8) -> Vec<Org> {
    vec![
        Org::minimal(registers),
        Org::overflow_opt(registers),
        Org::arbitrary_shuffles(registers),
        Org::n_plus_one(registers),
        Org::one_dup(registers),
        Org::two_stacks(registers),
    ]
}

/// Model-check every Fig. 18 organization at `registers` registers.
#[must_use]
pub fn check_fig18(registers: u8) -> Vec<FsmReport> {
    fig18_orgs(registers).iter().map(check_org).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_orgs_verify_at_two_registers() {
        for report in check_fig18(2) {
            assert!(
                report.ok(),
                "{}:\n{}",
                report.org,
                report.violations.join("\n")
            );
            assert_eq!(report.reachable + report.exempt, report.states);
            assert!(report.transitions > 0);
        }
    }

    #[test]
    fn fig18_orgs_verify_at_three_registers() {
        for report in check_fig18(CHECKED_REGISTERS) {
            assert!(
                report.ok(),
                "{}:\n{}",
                report.org,
                report.violations.join("\n")
            );
        }
    }

    #[test]
    fn static_shuffle_org_verifies_too() {
        // Not a Fig. 18 row, but the organization the Section 6 static
        // measurements use — the same invariants must hold.
        let report = check_org(&Org::static_shuffle(3));
        assert!(report.ok(), "{}", report.violations.join("\n"));
    }

    #[test]
    fn two_stacks_exempts_only_rstack_states() {
        let report = check_org(&Org::two_stacks(3));
        assert!(report.ok(), "{}", report.violations.join("\n"));
        // 3n states total; n+1 have rdepth == 0 at 3 registers (depths
        // 0..=3), the rest cache return items.
        assert_eq!(report.states, 9);
        assert_eq!(report.reachable, 4);
        assert_eq!(report.exempt, 5);
    }

    #[test]
    fn eliminated_transitions_exist_in_shuffle_orgs() {
        let report = check_org(&Org::arbitrary_shuffles(3));
        assert!(report.ok(), "{}", report.violations.join("\n"));
        assert!(report.eliminated > 0, "shuffle org must eliminate moves");
    }
}
