//! The fuel-bound pass: proves an upper bound on instruction dispatches.
//!
//! This runs only on programs whose depth proof came back
//! [`Verdict::Proven`](crate::Verdict::Proven): both stacks are finitely
//! bounded and no preset-stack cell is consumed. The pass abstractly
//! executes the program over the same value domain as `absint`
//! ([`AVal`]), but path-sensitively: conditional branches with undecided
//! conditions *fork* the exploration, counted loops with constant bounds
//! are unrolled exactly, and the result is the maximum dispatch count over
//! every completed path — `None` if any path escapes the abstraction (an
//! unresolvable `Execute`/`Return`, an unbounded loop that keeps spinning,
//! or an exploration that exceeds the [`AnalysisBudget`] fuel knobs).
//!
//! # Soundness argument
//!
//! The claim encoded in [`Bound::Finite`](crate::Bound)\(`n`\) is: *every*
//! run of the program, from *any* starting machine, on *any* engine and
//! checks level, executes at most `n` instruction dispatches before
//! halting or trapping. The argument:
//!
//! - **Counting mirrors the interpreter.** `exec` checks
//!   `InstructionOutOfBounds` *before* incrementing its dispatch counter,
//!   counts the trapping instruction on every other trap, and counts
//!   `Halt`. The abstract walk does exactly the same: falling off the
//!   program ends a path without counting, everything else counts first.
//! - **Unknowns never shorten a path.** Where a trap is merely possible
//!   (a maybe-zero divisor, a maybe-invalid memory address) the walk takes
//!   the *continuing* path with the result widened — the trapping run is a
//!   strict prefix of the continuing abstract path, so the max covers it.
//!   Only *definite* traps (constant zero divisor, constant bad token) end
//!   a path early.
//! - **No environment knowledge is assumed.** Loads (`Fetch`, `LoopI`
//!   reads of host cells, `Depth`, `Pick`) produce `Any`/interval values
//!   unless the program itself wrote the cell being read; frozen-memory
//!   facts are deliberately *not* used, so the bound needs no revalidation
//!   against the admitted machine image.
//! - **Preset stacks cannot extend paths.** A `Proven` verdict guarantees
//!   the program never pops below its entry depth and never returns into a
//!   host-owned return stack, so the abstract walk starting from empty
//!   stacks covers runs on machines with preset stacks; defensive
//!   give-ups (`None`) back the guarantee where the walk would need a
//!   host-owned cell anyway.
//!
//! When the walk cannot decide a loop bound, the looping path revisits the
//! same abstract state until the step budget runs out and the pass returns
//! `None` — the program keeps its plain `Proven` verdict and deadline
//! timers stay in place.

use stackcache_vm::{Cell, Inst, Program};

use crate::absint::{fold1, fold2, AVal, AnalysisBudget};

/// One abstract execution path.
#[derive(Debug, Clone)]
struct Path {
    ip: usize,
    count: u64,
    data: Vec<AVal>,
    rstack: Vec<AVal>,
}

impl Path {
    fn pop(&mut self) -> AVal {
        // `Proven` rules out pops below the entry depth; the fallback
        // models a preset-stack cell, about which nothing is known.
        self.data.pop().unwrap_or(AVal::Any)
    }

    fn push(&mut self, v: AVal) {
        self.data.push(v);
    }
}

/// Compute the maximum dispatch count over all paths, or `None` when the
/// program escapes the abstraction or the budget.
#[must_use]
#[allow(clippy::too_many_lines)]
pub(crate) fn fuel_bound(program: &Program, budget: &AnalysisBudget) -> Option<u64> {
    let insts = program.insts();
    let mut steps: usize = 0;
    let mut best: u64 = 0;
    let mut work: Vec<Path> = vec![Path {
        ip: program.entry(),
        count: 0,
        data: Vec::new(),
        rstack: Vec::new(),
    }];
    while let Some(mut s) = work.pop() {
        loop {
            steps += 1;
            if steps > budget.fuel_steps {
                return None;
            }
            let Some(&inst) = insts.get(s.ip) else {
                // InstructionOutOfBounds traps before the dispatch counter
                // moves: the path ends without counting this slot.
                best = best.max(s.count);
                break;
            };
            s.count += 1;
            let fall = s.ip + 1;
            s.ip = fall;
            match inst {
                Inst::Halt => {
                    best = best.max(s.count);
                    break;
                }
                Inst::Lit(n) => s.push(AVal::Const(n)),
                Inst::Div | Inst::Mod => {
                    let b = s.pop();
                    let a = s.pop();
                    if b == AVal::Const(0) {
                        // Definite division-by-zero trap; it was counted.
                        best = best.max(s.count);
                        break;
                    }
                    s.push(fold2(inst, a, b));
                }
                Inst::Add
                | Inst::Sub
                | Inst::Mul
                | Inst::And
                | Inst::Or
                | Inst::Xor
                | Inst::Lshift
                | Inst::Rshift
                | Inst::Min
                | Inst::Max
                | Inst::Eq
                | Inst::Ne
                | Inst::Lt
                | Inst::Gt
                | Inst::Le
                | Inst::Ge
                | Inst::ULt
                | Inst::UGt => {
                    let b = s.pop();
                    let a = s.pop();
                    s.push(fold2(inst, a, b));
                }
                Inst::Negate
                | Inst::Invert
                | Inst::Abs
                | Inst::OnePlus
                | Inst::OneMinus
                | Inst::TwoStar
                | Inst::TwoSlash
                | Inst::ZeroEq
                | Inst::ZeroNe
                | Inst::ZeroLt
                | Inst::ZeroGt
                | Inst::CellPlus
                | Inst::Cells
                | Inst::CharPlus => {
                    let a = s.pop();
                    s.push(fold1(inst, a));
                }
                Inst::Dup => {
                    let a = s.pop();
                    s.push(a);
                    s.push(a);
                }
                Inst::Drop => {
                    s.pop();
                }
                Inst::Swap => {
                    let b = s.pop();
                    let a = s.pop();
                    s.push(b);
                    s.push(a);
                }
                Inst::Over => {
                    let b = s.pop();
                    let a = s.pop();
                    s.push(a);
                    s.push(b);
                    s.push(a);
                }
                Inst::Rot => {
                    let c = s.pop();
                    let b = s.pop();
                    let a = s.pop();
                    s.push(b);
                    s.push(c);
                    s.push(a);
                }
                Inst::MinusRot => {
                    let c = s.pop();
                    let b = s.pop();
                    let a = s.pop();
                    s.push(c);
                    s.push(a);
                    s.push(b);
                }
                Inst::Nip => {
                    let b = s.pop();
                    let _ = s.pop();
                    s.push(b);
                }
                Inst::Tuck => {
                    let b = s.pop();
                    let a = s.pop();
                    s.push(b);
                    s.push(a);
                    s.push(b);
                }
                Inst::TwoDup => {
                    let b = s.pop();
                    let a = s.pop();
                    s.push(a);
                    s.push(b);
                    s.push(a);
                    s.push(b);
                }
                Inst::TwoDrop => {
                    s.pop();
                    s.pop();
                }
                Inst::TwoSwap => {
                    let d = s.pop();
                    let c = s.pop();
                    let b = s.pop();
                    let a = s.pop();
                    s.push(c);
                    s.push(d);
                    s.push(a);
                    s.push(b);
                }
                Inst::TwoOver => {
                    let d = s.pop();
                    let c = s.pop();
                    let b = s.pop();
                    let a = s.pop();
                    s.push(a);
                    s.push(b);
                    s.push(c);
                    s.push(d);
                    s.push(a);
                    s.push(b);
                }
                Inst::QDup => {
                    let a = s.pop();
                    match a {
                        AVal::Const(0) => s.push(a),
                        v if v.nonzero() => {
                            s.push(v);
                            s.push(v);
                        }
                        v => {
                            let mut z = s.clone();
                            z.push(AVal::Const(0));
                            work.push(z);
                            let nz = match v {
                                AVal::Any => AVal::NonZero,
                                AVal::Range(0, h) => AVal::range(1, h),
                                AVal::Range(l, 0) => AVal::range(l, -1),
                                other => other,
                            };
                            s.push(nz);
                            s.push(nz);
                        }
                    }
                }
                Inst::Pick => {
                    let u = s.pop();
                    if matches!(u, AVal::Const(n) if n < 0) {
                        best = best.max(s.count);
                        break;
                    }
                    s.push(AVal::Any);
                }
                Inst::Depth => s.push(AVal::Any),
                Inst::ToR => {
                    let a = s.pop();
                    s.rstack.push(a);
                    if s.rstack.len() > budget.fuel_calls {
                        return None;
                    }
                }
                Inst::FromR => {
                    let a = s.rstack.pop()?;
                    s.push(a);
                }
                Inst::RFetch => {
                    let &a = s.rstack.last()?;
                    s.push(a);
                }
                Inst::TwoToR => {
                    let b = s.pop();
                    let a = s.pop();
                    s.rstack.push(a);
                    s.rstack.push(b);
                    if s.rstack.len() > budget.fuel_calls {
                        return None;
                    }
                }
                Inst::TwoFromR => {
                    let b = s.rstack.pop()?;
                    let a = s.rstack.pop()?;
                    s.push(a);
                    s.push(b);
                }
                Inst::TwoRFetch => {
                    let n = s.rstack.len();
                    if n < 2 {
                        return None;
                    }
                    let (a, b) = (s.rstack[n - 2], s.rstack[n - 1]);
                    s.push(a);
                    s.push(b);
                }
                Inst::Fetch => {
                    // Deliberately ignore frozen memory: the bound must
                    // hold with no machine-image revalidation.
                    s.pop();
                    s.push(AVal::Any);
                }
                Inst::CFetch => {
                    s.pop();
                    s.push(AVal::range(0, 255));
                }
                Inst::Store | Inst::CStore | Inst::PlusStore => {
                    s.pop();
                    s.pop();
                }
                Inst::Branch(t) => s.ip = t as usize,
                Inst::BranchIfZero(t) => {
                    let c = s.pop();
                    if c == AVal::Const(0) {
                        s.ip = t as usize;
                    } else if !c.nonzero() {
                        let mut taken = s.clone();
                        taken.ip = t as usize;
                        work.push(taken);
                    }
                }
                Inst::Call(t) => {
                    s.rstack.push(AVal::Const(fall as Cell));
                    if s.rstack.len() > budget.fuel_calls {
                        return None;
                    }
                    s.ip = t as usize;
                }
                Inst::Execute => {
                    let tok = s.pop();
                    match tok {
                        AVal::Const(c) if c < 0 || c as usize >= insts.len() => {
                            best = best.max(s.count);
                            break;
                        }
                        AVal::Const(c) => {
                            s.rstack.push(AVal::Const(fall as Cell));
                            if s.rstack.len() > budget.fuel_calls {
                                return None;
                            }
                            s.ip = c as usize;
                        }
                        _ => return None,
                    }
                }
                Inst::Return => {
                    let r = s.rstack.pop()?;
                    match r {
                        AVal::Const(c) if c < 0 || c as usize > insts.len() => {
                            best = best.max(s.count);
                            break;
                        }
                        AVal::Const(c) => s.ip = c as usize,
                        _ => return None,
                    }
                }
                Inst::Nop | Inst::Cr => {}
                Inst::DoSetup => {
                    let start = s.pop();
                    let limit = s.pop();
                    s.rstack.push(limit);
                    s.rstack.push(start);
                    if s.rstack.len() > budget.fuel_calls {
                        return None;
                    }
                }
                Inst::QDoSetup(t) => {
                    let start = s.pop();
                    let limit = s.pop();
                    let decided = match (limit, start) {
                        (AVal::Const(l), AVal::Const(st)) => Some(l == st),
                        _ => None,
                    };
                    if decided.is_none() {
                        let mut skip = s.clone();
                        skip.ip = t as usize;
                        work.push(skip);
                    }
                    if decided == Some(true) {
                        s.ip = t as usize;
                    } else {
                        s.rstack.push(limit);
                        s.rstack.push(start);
                        if s.rstack.len() > budget.fuel_calls {
                            return None;
                        }
                    }
                }
                Inst::LoopInc(t) => {
                    let n = s.rstack.len();
                    if n < 2 {
                        return None;
                    }
                    match (s.rstack[n - 2], s.rstack[n - 1]) {
                        (AVal::Const(l), AVal::Const(i)) => {
                            let next = i.wrapping_add(1);
                            if next == l {
                                s.rstack.truncate(n - 2);
                            } else {
                                s.rstack[n - 1] = AVal::Const(next);
                                s.ip = t as usize;
                            }
                        }
                        _ => {
                            let mut exit = s.clone();
                            exit.rstack.truncate(n - 2);
                            work.push(exit);
                            s.rstack[n - 1] = AVal::Any;
                            s.ip = t as usize;
                        }
                    }
                }
                Inst::PlusLoopInc(t) => {
                    let step = s.pop();
                    let n = s.rstack.len();
                    if n < 2 {
                        return None;
                    }
                    match (step, s.rstack[n - 2], s.rstack[n - 1]) {
                        (AVal::Const(st), AVal::Const(l), AVal::Const(o)) => {
                            let new = o.wrapping_add(st);
                            let crossed = if st >= 0 {
                                o < l && new >= l
                            } else {
                                o >= l && new < l
                            };
                            if crossed {
                                s.rstack.truncate(n - 2);
                            } else {
                                s.rstack[n - 1] = AVal::Const(new);
                                s.ip = t as usize;
                            }
                        }
                        _ => {
                            let mut exit = s.clone();
                            exit.rstack.truncate(n - 2);
                            work.push(exit);
                            s.rstack[n - 1] = AVal::Any;
                            s.ip = t as usize;
                        }
                    }
                }
                Inst::LoopI => {
                    let &i = s.rstack.last()?;
                    s.push(i);
                }
                Inst::LoopJ => {
                    let n = s.rstack.len();
                    if n < 4 {
                        return None;
                    }
                    let j = s.rstack[n - 3];
                    s.push(j);
                }
                Inst::Unloop => {
                    let n = s.rstack.len();
                    if n < 2 {
                        return None;
                    }
                    s.rstack.truncate(n - 2);
                }
                Inst::Emit | Inst::Dot => {
                    s.pop();
                }
                Inst::Type => {
                    s.pop();
                    s.pop();
                }
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::{exec, program_of, Machine};

    fn measured(p: &Program) -> u64 {
        let mut m = Machine::new();
        exec::run(p, &mut m, 1 << 20).unwrap().executed
    }

    #[test]
    fn straight_line_bound_is_exact() {
        let p = program_of(&[Inst::Lit(2), Inst::Lit(3), Inst::Add, Inst::Dot, Inst::Halt]);
        let bound = fuel_bound(&p, &AnalysisBudget::quick()).unwrap();
        assert_eq!(bound, measured(&p));
        assert_eq!(bound, 5);
    }

    #[test]
    fn constant_countdown_loop_unrolls_exactly() {
        // lit 10; L: 1-; dup; ?branch exit; branch L; exit: drop; halt
        let p = program_of(&[
            Inst::Lit(10),
            Inst::OneMinus,
            Inst::Dup,
            Inst::BranchIfZero(5),
            Inst::Branch(1),
            Inst::Drop,
            Inst::Halt,
        ]);
        let bound = fuel_bound(&p, &AnalysisBudget::quick()).unwrap();
        assert_eq!(bound, measured(&p));
    }

    #[test]
    fn counted_do_loop_unrolls_exactly() {
        // 5 0 ?do i . loop ; halt
        let p = program_of(&[
            Inst::Lit(5),
            Inst::Lit(0),
            Inst::QDoSetup(6),
            Inst::LoopI,
            Inst::Dot,
            Inst::LoopInc(3),
            Inst::Halt,
        ]);
        let bound = fuel_bound(&p, &AnalysisBudget::quick()).unwrap();
        assert_eq!(bound, measured(&p));
    }

    #[test]
    fn unknown_branch_takes_the_longer_arm() {
        // depth ?branch 4; lit 1; dot; halt  /  4: halt
        let p = program_of(&[
            Inst::Depth,
            Inst::BranchIfZero(4),
            Inst::Lit(1),
            Inst::Dot,
            Inst::Halt,
        ]);
        let bound = fuel_bound(&p, &AnalysisBudget::quick()).unwrap();
        assert_eq!(bound, 5);
    }

    #[test]
    fn unbounded_loops_get_no_bound() {
        let p = program_of(&[Inst::Branch(0)]);
        assert_eq!(fuel_bound(&p, &AnalysisBudget::quick()), None);
        // Data-driven loop: the trip count is not a compile-time constant.
        let p = program_of(&[
            Inst::Depth,
            Inst::Dup,
            Inst::BranchIfZero(5),
            Inst::OneMinus,
            Inst::Branch(1),
            Inst::Drop,
            Inst::Halt,
        ]);
        assert_eq!(fuel_bound(&p, &AnalysisBudget::quick()), None);
    }

    #[test]
    fn calls_count_their_returns() {
        // call f; halt; f: lit 1; dot; return
        let p = program_of(&[
            Inst::Call(2),
            Inst::Halt,
            Inst::Lit(1),
            Inst::Dot,
            Inst::Return,
        ]);
        let bound = fuel_bound(&p, &AnalysisBudget::quick()).unwrap();
        assert_eq!(bound, measured(&p));
        assert_eq!(bound, 5);
    }
}
