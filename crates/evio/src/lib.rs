//! # stackcache-evio — readiness-driven connection engine
//!
//! A std-only evented serving core: one poller thread multiplexes
//! every TCP connection through nonblocking reads and writes, with the
//! application protocol plugged in as a [`Protocol`] implementation
//! whose callbacks never block. Built for the stack-caching execution
//! service's front end, but protocol-agnostic.
//!
//! The layers, bottom up:
//!
//! * [`sys`] — the only unsafe code: raw `epoll` (Linux) / `poll`
//!   (other Unixes) and `rlimit` via direct `extern "C"` declarations;
//!   no `libc` crate.
//! * [`poll`] — a safe level-triggered [`Poller`] over raw fds, plus a
//!   socketpair [`Waker`] for cross-thread wakeups.
//! * [`buf`] — per-connection [`ReadBuf`]/[`WriteBuf`] state machines
//!   with budgeted fills and partial-flush tracking.
//! * [`wheel`] — a hashed [`DeadlineWheel`] driving lazy idle and
//!   write-stall eviction.
//! * [`engine`] — the [`Engine`]: accept loop, connection budget,
//!   readiness dispatch, [`Handle`] mailbox for worker→poller reply
//!   delivery, and the eviction contract.
//!
//! Blocking work (executing a request) happens on other threads; they
//! answer through [`Handle::send`], which parks the message in a
//! mailbox and wakes the poller to write the reply bytes.

pub mod buf;
pub mod engine;
pub mod poll;
pub mod sys;
pub mod wheel;

pub use buf::{FillOutcome, FlushOutcome, ReadBuf, WriteBuf};
pub use engine::{
    Action, CloseReason, ConnIo, Engine, EngineConfig, EngineStats, Handle, Protocol,
};
pub use poll::{Event, Interest, Poller, WakeReceiver, Waker};
pub use sys::raise_nofile_limit;
pub use wheel::DeadlineWheel;
