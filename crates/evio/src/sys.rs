//! The minimal FFI shim under the poller: raw `epoll` (Linux) or
//! `poll` (other Unixes) plus `rlimit`, declared directly as `extern
//! "C"` symbols — no `libc` crate, no bindings generator. The standard
//! library already links the C runtime, so these symbols resolve; this
//! module is the only unsafe surface of the crate, and every call site
//! converts failures into [`io::Error`] via `last_os_error`.

use std::ffi::c_int;
use std::io;

/// One epoll readiness record (`struct epoll_event`). The kernel packs
/// this on x86-64, so field reads must stay by-value (copy out, never
/// borrow).
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLLIN | EPOLLOUT | …` readiness bits.
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: c_int = 3;

/// `EPOLL_CLOEXEC`: the poller fd must not leak across `exec`.
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

/// One `poll(2)` descriptor record (`struct pollfd`), the fallback
/// backend on non-Linux Unixes.
#[cfg(all(unix, not(target_os = "linux")))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: c_int,
    /// Requested readiness (`POLLIN | POLLOUT`).
    pub events: i16,
    /// Returned readiness.
    pub revents: i16,
}

#[cfg(all(unix, not(target_os = "linux")))]
pub const POLLIN: i16 = 0x001;
#[cfg(all(unix, not(target_os = "linux")))]
pub const POLLOUT: i16 = 0x004;
#[cfg(all(unix, not(target_os = "linux")))]
pub const POLLERR: i16 = 0x008;
#[cfg(all(unix, not(target_os = "linux")))]
pub const POLLHUP: i16 = 0x010;

#[cfg(all(unix, not(target_os = "linux")))]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
}

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// `struct rlimit` for [`raise_nofile_limit`].
#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

/// `RLIMIT_NOFILE` on Linux and the BSDs.
const RLIMIT_NOFILE: c_int = 7;

/// Create an epoll instance, returning its fd.
///
/// # Errors
///
/// The kernel's, via `last_os_error`.
#[cfg(target_os = "linux")]
pub fn sys_epoll_create() -> io::Result<c_int> {
    // SAFETY: no pointers cross the boundary.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Add/modify/delete interest in `fd` on epoll instance `epfd`.
///
/// # Errors
///
/// The kernel's, via `last_os_error`.
#[cfg(target_os = "linux")]
pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` outlives the call; the kernel copies it.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait for readiness on `epfd`, filling `events`; `timeout_ms < 0`
/// blocks indefinitely. Returns the number of events.
///
/// # Errors
///
/// The kernel's, via `last_os_error` (`EINTR` is retried by the caller).
#[cfg(target_os = "linux")]
pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    // SAFETY: the slice's pointer/length pair is valid for writes.
    let rc = unsafe {
        epoll_wait(
            epfd,
            events.as_mut_ptr(),
            events.len().min(c_int::MAX as usize) as c_int,
            timeout_ms,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Wait for readiness on the given descriptor set (`poll(2)` fallback).
///
/// # Errors
///
/// The kernel's, via `last_os_error`.
#[cfg(all(unix, not(target_os = "linux")))]
pub fn sys_poll(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    // SAFETY: the slice's pointer/length pair is valid for writes.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Close a raw descriptor owned by the poller.
pub fn sys_close(fd: c_int) {
    // SAFETY: the caller owns `fd`; double-close is excluded by move
    // semantics in the Poller.
    let _ = unsafe { close(fd) };
}

/// Raise `RLIMIT_NOFILE` toward `want` (clamped to the hard limit) and
/// return the resulting soft limit. A no-op when the soft limit already
/// covers `want`.
///
/// # Errors
///
/// The kernel's, if the limit cannot be read or raised.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` outlives the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let new = Rlimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    // SAFETY: `new` outlives the call.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(new.cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_is_readable_and_monotone() {
        let cur = raise_nofile_limit(64).expect("read limit");
        assert!(cur >= 64);
        // asking again for less never lowers it
        let again = raise_nofile_limit(1).expect("read limit");
        assert!(again >= cur.min(64));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_instance_opens_and_closes() {
        let fd = sys_epoll_create().expect("epoll_create1");
        assert!(fd >= 0);
        sys_close(fd);
    }
}
