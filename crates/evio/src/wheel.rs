//! A hashed timing wheel for connection deadlines (idle timeout, write
//! stall). Insertion and expiry are O(1) amortized; precision is one
//! tick (10 ms by default), which is far finer than the second-scale
//! timeouts it guards.
//!
//! The wheel stores opaque tokens. It does **not** try to cancel
//! entries when a connection becomes active again — cancellation is
//! lazy: the engine checks the connection's actual last-activity time
//! when a token expires and re-arms it if the connection earned more
//! time. That keeps the hot path (bytes moving) free of timer
//! bookkeeping.

use std::time::{Duration, Instant};

/// Default tick width.
const TICK: Duration = Duration::from_millis(10);

/// Default slot count (a power of two; spans `TICK * SLOTS` = 5.12 s
/// per revolution, with overflow entries parked on their slot until
/// their revolution arrives).
const SLOTS: usize = 512;

/// One parked entry: the absolute tick it fires on, plus the token.
struct Entry<T> {
    fires_at: u64,
    token: T,
}

/// A hashed timing wheel over opaque tokens.
pub struct DeadlineWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    origin: Instant,
    tick: Duration,
    /// The last tick fully expired.
    cursor: u64,
    len: usize,
}

impl<T> DeadlineWheel<T> {
    /// A wheel anchored at `now` with default geometry.
    pub fn new(now: Instant) -> DeadlineWheel<T> {
        DeadlineWheel::with_geometry(now, TICK, SLOTS)
    }

    /// A wheel with explicit tick width and slot count (tests use a
    /// coarse wheel to avoid sleeping).
    pub fn with_geometry(now: Instant, tick: Duration, slots: usize) -> DeadlineWheel<T> {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        DeadlineWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            origin: now,
            tick,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of parked entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_for(&self, when: Instant) -> u64 {
        let nanos = when.saturating_duration_since(self.origin).as_nanos();
        let ticks = (nanos / self.tick.as_nanos().max(1)) as u64;
        // never schedule into a tick that has already expired
        ticks.max(self.cursor + 1)
    }

    /// Park `token` to fire at `when` (clamped to the next unexpired
    /// tick if `when` is in the past).
    pub fn insert(&mut self, when: Instant, token: T) {
        let fires_at = self.tick_for(when);
        let slot = (fires_at as usize) & (self.slots.len() - 1);
        self.slots[slot].push(Entry { fires_at, token });
        self.len += 1;
    }

    /// Advance to `now`, appending every token whose tick has passed to
    /// `expired`. Returns the number expired.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<T>) -> usize {
        let target = {
            let nanos = now.saturating_duration_since(self.origin).as_nanos();
            (nanos / self.tick.as_nanos().max(1)) as u64
        };
        if target <= self.cursor {
            return 0;
        }
        let mut fired = 0usize;
        // if a whole revolution (or more) passed, visiting each slot
        // once suffices — entries filter on their absolute tick.
        let steps = (target - self.cursor).min(self.slots.len() as u64);
        let base = self.cursor;
        for step in 1..=steps {
            let slot = ((base + step) as usize) & (self.slots.len() - 1);
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].fires_at <= target {
                    let entry = bucket.swap_remove(i);
                    expired.push(entry.token);
                    fired += 1;
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = target;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> (DeadlineWheel<u32>, Instant) {
        let origin = Instant::now();
        (
            DeadlineWheel::with_geometry(origin, Duration::from_millis(10), 8),
            origin,
        )
    }

    #[test]
    fn entries_fire_in_their_tick_not_before() {
        let (mut w, t0) = wheel();
        w.insert(t0 + Duration::from_millis(35), 1);
        w.insert(t0 + Duration::from_millis(95), 2);

        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(20), &mut out);
        assert!(out.is_empty(), "{out:?}");

        w.advance(t0 + Duration::from_millis(40), &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(w.len(), 1);

        out.clear();
        w.advance(t0 + Duration::from_millis(200), &mut out);
        assert_eq!(out, vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_entries_wait_their_revolution() {
        // 8 slots × 10ms = 80ms per revolution; 250ms is 3 revolutions out
        let (mut w, t0) = wheel();
        w.insert(t0 + Duration::from_millis(250), 7);

        let mut out = Vec::new();
        // a full revolution later it still must not fire
        w.advance(t0 + Duration::from_millis(120), &mut out);
        assert!(out.is_empty(), "fired a revolution early: {out:?}");

        w.advance(t0 + Duration::from_millis(260), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn past_deadlines_clamp_to_the_next_tick() {
        let (mut w, t0) = wheel();
        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(50), &mut out);

        // "already due" parks on the next unexpired tick
        w.insert(t0 + Duration::from_millis(10), 3);
        w.advance(t0 + Duration::from_millis(70), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn a_long_stall_expires_everything_once() {
        let (mut w, t0) = wheel();
        for i in 0..100u32 {
            w.insert(t0 + Duration::from_millis(10 + u64::from(i)), i);
        }
        let mut out = Vec::new();
        // jump far past every deadline and several revolutions
        w.advance(t0 + Duration::from_secs(10), &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(w.is_empty());
    }
}
