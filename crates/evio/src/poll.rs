//! The readiness poller: a thin, safe wrapper over the [`sys`] shim
//! that registers raw fds with interest sets and reports
//! [`Event`]s. Level-triggered on both backends — if a socket stays
//! readable, the next `wait` reports it again — which keeps the
//! engine's state machine simple: it never has to drain to `WouldBlock`
//! inside a single wakeup to stay correct.
//!
//! A [`Waker`] (a loopback socketpair registered like any other
//! connection) lets other threads interrupt a blocking `wait`.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

use crate::sys;

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction: stay registered (errors and hangups are still
    /// reported) but request no readiness wakeups. Used for half-open
    /// connections whose write buffer is momentarily empty.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// The fd has bytes (or EOF) to read.
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// The fd is in an error or hang-up state; the connection should be
    /// read to EOF and torn down.
    pub error: bool,
}

/// A level-triggered readiness poller over raw fds.
///
/// Linux uses `epoll`; other Unixes fall back to `poll(2)` over a
/// registration table kept in userspace. Registrations are keyed by fd;
/// the token travels with the fd and comes back in each [`Event`].
pub struct Poller {
    backend: Backend,
}

#[cfg(target_os = "linux")]
struct Backend {
    epfd: RawFd,
    scratch: Vec<sys::EpollEvent>,
}

#[cfg(all(unix, not(target_os = "linux")))]
struct Backend {
    // (fd, token, interest), linear-scanned; fine for the fallback.
    table: Vec<(RawFd, u64, Interest)>,
    scratch: Vec<sys::PollFd>,
}

impl Poller {
    /// Open a poller.
    ///
    /// # Errors
    ///
    /// If the kernel refuses an epoll instance.
    #[cfg(target_os = "linux")]
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::sys_epoll_create()?;
        Ok(Poller {
            backend: Backend {
                epfd,
                scratch: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            },
        })
    }

    /// Open a poller (poll(2) fallback).
    ///
    /// # Errors
    ///
    /// Never on this backend; kept for signature parity.
    #[cfg(all(unix, not(target_os = "linux")))]
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend {
                table: Vec::new(),
                scratch: Vec::new(),
            },
        })
    }

    /// Start watching `fd` with `interest`, tagging events with `token`.
    ///
    /// # Errors
    ///
    /// If the kernel rejects the registration.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::sys_epoll_ctl(
                self.backend.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                epoll_mask(interest),
                token,
            )
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            self.backend.table.push((fd, token, interest));
            Ok(())
        }
    }

    /// Change the interest set for an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// If the fd is not registered.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::sys_epoll_ctl(
                self.backend.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                epoll_mask(interest),
                token,
            )
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            for slot in &mut self.backend.table {
                if slot.0 == fd {
                    slot.1 = token;
                    slot.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    ///
    /// # Errors
    ///
    /// If the fd is not registered.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::sys_epoll_ctl(self.backend.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            let before = self.backend.table.len();
            self.backend.table.retain(|slot| slot.0 != fd);
            if self.backend.table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }
    }

    /// Block up to `timeout_ms` (`None` = forever) and append readiness
    /// reports to `events`. Returns the number appended; `EINTR` is
    /// retried internally.
    ///
    /// # Errors
    ///
    /// The kernel's, for anything other than `EINTR`.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        let timeout = timeout_ms.unwrap_or(-1);
        #[cfg(target_os = "linux")]
        {
            let n = loop {
                match sys::sys_epoll_wait(self.backend.epfd, &mut self.backend.scratch, timeout) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.backend.scratch[..n] {
                // copy packed fields by value
                let bits = { ev.events };
                let token = { ev.data };
                events.push(Event {
                    token,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            self.backend.scratch.clear();
            for &(fd, _, interest) in &self.backend.table {
                let mut mask = 0i16;
                if interest.readable {
                    mask |= sys::POLLIN;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                self.backend.scratch.push(sys::PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
            }
            let n = loop {
                match sys::sys_poll(&mut self.backend.scratch, timeout) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for (slot, &(_, token, _)) in self.backend.scratch.iter().zip(&self.backend.table) {
                if slot.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: slot.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: slot.revents & sys::POLLOUT != 0,
                    error: slot.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.backend.epfd);
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = sys::EPOLLRDHUP;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

/// Cross-thread wakeup for a poller blocked in [`Poller::wait`]: a
/// loopback socketpair whose read half is registered on the poller with
/// a reserved token. `wake` writes one byte; the poller thread calls
/// `drain` when it sees the token.
pub struct Waker {
    tx: UnixStream,
}

/// The poller-side half of a [`Waker`] pair.
pub struct WakeReceiver {
    rx: UnixStream,
}

impl Waker {
    /// Build a waker pair. Register [`WakeReceiver::raw_fd`] with the
    /// poller under a reserved token.
    ///
    /// # Errors
    ///
    /// If the socketpair cannot be created.
    pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReceiver { rx }))
    }

    /// Interrupt the poller. Safe from any thread; a full pipe counts
    /// as success (the poller is already due to wake).
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            tx: self.tx.try_clone().expect("clone waker socket"),
        }
    }
}

impl WakeReceiver {
    /// The fd to register with the poller (readable interest).
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consume any pending wake bytes so level-triggered polling quiets
    /// down until the next `wake`.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while let Ok(n) = self.rx.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    const WAKE: u64 = u64::MAX;

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let mut poller = Poller::new().expect("poller");
        let (waker, mut rx) = Waker::pair().expect("waker");
        poller
            .register(rx.raw_fd(), WAKE, Interest::READABLE)
            .expect("register waker");

        // keep `waker` alive in the test: dropping the last sender
        // closes the pair and the HUP would read as a permanent wake
        let remote = waker.clone();
        let hand = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Vec::new();
        poller.wait(&mut events, Some(5_000)).expect("wait");
        assert!(
            events.iter().any(|e| e.token == WAKE && e.readable),
            "expected the waker token, got {events:?}"
        );
        rx.drain();
        hand.join().unwrap();

        // after draining, a short wait sees nothing
        events.clear();
        poller.wait(&mut events, Some(20)).expect("wait");
        assert!(events.iter().all(|e| e.token != WAKE));
    }

    #[test]
    fn readable_and_writable_readiness_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(server.as_raw_fd(), 7, Interest::BOTH)
            .expect("register");

        // a fresh socket is writable but not yet readable
        let mut events = Vec::new();
        poller.wait(&mut events, Some(2_000)).expect("wait");
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable);
        assert!(!ev.readable);

        // send bytes → readable
        use std::io::Write as _;
        (&client).write_all(b"ping").expect("write");
        events.clear();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Some(100)).expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never became readable"
            );
            events.clear();
        }

        // interest can be narrowed: writable-only masks the pending read
        poller
            .modify(server.as_raw_fd(), 7, Interest::WRITABLE)
            .expect("modify");
        events.clear();
        poller.wait(&mut events, Some(500)).expect("wait");
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable);
        assert!(!ev.readable, "readable interest was masked: {ev:?}");

        poller.deregister(server.as_raw_fd()).expect("deregister");
        events.clear();
        poller.wait(&mut events, Some(50)).expect("wait");
        assert!(events.iter().all(|e| e.token != 7));
    }

    #[test]
    fn hangup_reports_readable_for_eof_harvest() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(server.as_raw_fd(), 9, Interest::READABLE)
            .expect("register");
        drop(client);

        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Some(100)).expect("wait");
            if let Some(ev) = events.iter().find(|e| e.token == 9) {
                assert!(ev.readable, "hangup must surface as readable: {ev:?}");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never saw hangup");
        }
    }
}
