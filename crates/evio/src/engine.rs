//! The connection engine: one poller thread multiplexing every
//! connection through nonblocking reads/writes, with the application
//! protocol plugged in as a [`Protocol`] implementation.
//!
//! The division of labour is strict. The engine owns sockets, buffers,
//! readiness, budgets, and eviction; the protocol owns bytes — it
//! parses from the read buffer, queues replies into the write buffer,
//! and decides when a connection should close. The protocol never
//! blocks: work that takes time is handed to other threads, which
//! deliver results back through a [`Handle`] mailbox that wakes the
//! poller.
//!
//! ## Eviction contract
//!
//! * **Idle timeout** — a connection with no inbound bytes for
//!   `idle_timeout` is closed with [`CloseReason::IdleTimeout`].
//! * **Write stall** — a connection whose write buffer has been
//!   non-empty continuously for `write_stall_timeout` (the peer is not
//!   draining) is closed with [`CloseReason::WriteStall`]; a buffer
//!   that exceeds `max_buffered_write` closes immediately with the
//!   same reason.
//! * **Budget** — once `max_connections` are live, further accepts are
//!   closed on sight and counted in [`EngineStats::over_budget`].
//!
//! Timers are lazy: the deadline wheel fires a *suspicion*, and the
//! engine checks the connection's real `last_activity` / stall clock
//! before evicting, re-arming when the connection earned more time.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::buf::{FillOutcome, FlushOutcome, ReadBuf, WriteBuf};
use crate::poll::{Event, Interest, Poller, WakeReceiver, Waker};
use crate::wheel::DeadlineWheel;

/// Reserved poller token for the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Reserved poller token for the mailbox waker.
const TOKEN_WAKER: u64 = u64::MAX;

/// What the protocol wants done with the connection after a callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Close immediately, discarding unsent bytes (protocol violation).
    Close,
    /// Close once the write buffer drains (clean goodbye).
    CloseAfterFlush,
}

/// Why a connection was closed; handed to [`Protocol::on_close`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed its write half and all its bytes were served.
    PeerClosed,
    /// The protocol demanded an immediate close (framing violation).
    Protocol,
    /// The protocol asked for a clean close and the flush completed.
    Requested,
    /// No inbound bytes within the idle timeout.
    IdleTimeout,
    /// The peer stopped draining our writes (stall timeout or buffer
    /// overflow).
    WriteStall,
    /// The connection budget was full at accept time.
    OverBudget,
    /// A socket error.
    Io,
    /// The engine was shut down with the connection still live.
    ServerShutdown,
}

/// The per-connection byte interface handed to protocol callbacks.
pub struct ConnIo {
    rx: ReadBuf,
    tx: WriteBuf,
}

impl ConnIo {
    /// Unconsumed inbound bytes.
    pub fn rx_bytes(&self) -> &[u8] {
        self.rx.bytes()
    }

    /// Mark `n` inbound bytes as parsed.
    ///
    /// # Panics
    ///
    /// If `n` exceeds the buffered byte count.
    pub fn rx_consume(&mut self, n: usize) {
        self.rx.consume(n);
    }

    /// Queue `bytes` for transmission; the engine flushes as readiness
    /// allows.
    pub fn send(&mut self, bytes: &[u8]) {
        self.tx.queue(bytes);
    }

    /// Outbound bytes not yet on the wire.
    pub fn pending_write(&self) -> usize {
        self.tx.pending()
    }
}

/// The application layer plugged into the engine. All callbacks run on
/// the poller thread and must not block.
pub trait Protocol: Send + 'static {
    /// Per-connection protocol state.
    type Conn: Send;
    /// Messages other threads deliver through the [`Handle`].
    type Msg: Send;

    /// A connection was accepted; build its state (and optionally queue
    /// greeting bytes).
    fn on_open(&self, conn_id: u64, peer: SocketAddr, io: &mut ConnIo) -> Self::Conn;

    /// New inbound bytes are available in `io`.
    fn on_data(&self, conn_id: u64, conn: &mut Self::Conn, io: &mut ConnIo) -> Action;

    /// The peer closed its write half (no more inbound bytes ever).
    ///
    /// Returning [`Action::Continue`] keeps the connection alive
    /// **half-open**: outbound traffic (mailbox replies, pending
    /// writes) still flows, and the protocol must eventually close it
    /// from [`on_msg`](Protocol::on_msg) (or let a timer evict it).
    /// Return [`Action::CloseAfterFlush`] to flush and close — the
    /// usual choice when nothing is owed to the peer.
    fn on_eof(&self, conn_id: u64, conn: &mut Self::Conn, io: &mut ConnIo) -> Action;

    /// A message for this connection arrived through the [`Handle`].
    fn on_msg(
        &self,
        conn_id: u64,
        conn: &mut Self::Conn,
        io: &mut ConnIo,
        msg: Self::Msg,
    ) -> Action;

    /// The connection is gone; reclaim its state.
    fn on_close(&self, conn_id: u64, conn: Self::Conn, reason: CloseReason);
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Hard cap on simultaneously live connections.
    pub max_connections: usize,
    /// Evict after this long with no inbound bytes (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Evict after the write buffer stays non-empty this long.
    pub write_stall_timeout: Option<Duration>,
    /// Max bytes pulled from one socket per readiness wakeup, so one
    /// firehose peer cannot starve the rest of the poller.
    pub read_budget: usize,
    /// Write-buffer size that trips an immediate stall eviction.
    pub max_buffered_write: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_connections: 4096,
            idle_timeout: Some(Duration::from_secs(60)),
            write_stall_timeout: Some(Duration::from_secs(10)),
            read_budget: 256 * 1024,
            max_buffered_write: 8 * 1024 * 1024,
        }
    }
}

/// Monotonic counters for the engine's lifetime, readable from any
/// thread.
#[derive(Default)]
pub struct EngineStats {
    /// Connections accepted and registered.
    pub accepted: AtomicU64,
    /// Connections closed (any reason).
    pub closed: AtomicU64,
    /// Accepts refused because the budget was full.
    pub over_budget: AtomicU64,
    /// Evictions by idle timeout.
    pub evicted_idle: AtomicU64,
    /// Evictions by write stall (timeout or buffer overflow).
    pub evicted_stall: AtomicU64,
    /// Mailbox messages delivered to a live connection.
    pub msgs_delivered: AtomicU64,
    /// Mailbox messages whose connection was already gone.
    pub msgs_dropped: AtomicU64,
    /// Current live connections (gauge).
    pub live: AtomicU64,
}

/// Pending `(conn_id, msg)` deliveries shared between [`Handle`]s and
/// the poller thread.
type Mailbox<M> = Arc<Mutex<Vec<(u64, M)>>>;

/// Clone-able sender delivering messages to connections on the poller
/// thread. Safe from any thread; each send wakes the poller.
pub struct Handle<M> {
    mailbox: Mailbox<M>,
    waker: Waker,
}

impl<M> Clone for Handle<M> {
    fn clone(&self) -> Handle<M> {
        Handle {
            mailbox: Arc::clone(&self.mailbox),
            waker: self.waker.clone(),
        }
    }
}

impl<M: Send> Handle<M> {
    /// Deliver `msg` to connection `conn_id`. If the connection is gone
    /// by delivery time the message is dropped (and counted).
    pub fn send(&self, conn_id: u64, msg: M) {
        self.mailbox
            .lock()
            .expect("mailbox poisoned")
            .push((conn_id, msg));
        self.waker.wake();
    }
}

/// A running engine: the poller thread plus its control handles.
pub struct Engine<P: Protocol> {
    handle: Handle<P::Msg>,
    stats: Arc<EngineStats>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl<P: Protocol> Engine<P> {
    /// Take ownership of `listener`, spawn the poller thread, and start
    /// serving `protocol`.
    ///
    /// # Errors
    ///
    /// If the listener cannot be made nonblocking or the poller cannot
    /// be created.
    pub fn start(
        listener: TcpListener,
        protocol: P,
        config: EngineConfig,
    ) -> io::Result<Engine<P>> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker, wake_rx) = Waker::pair()?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.raw_fd(), TOKEN_WAKER, Interest::READABLE)?;

        let mailbox: Mailbox<P::Msg> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(EngineStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        let mut looper = Loop {
            poller,
            listener,
            wake_rx,
            protocol,
            config,
            mailbox: Arc::clone(&mailbox),
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            conns: HashMap::new(),
            next_id: 1,
            wheel: DeadlineWheel::new(Instant::now()),
            events: Vec::new(),
            expired: Vec::new(),
            msgs: Vec::new(),
        };
        let thread = std::thread::Builder::new()
            .name("evio-poller".into())
            .spawn(move || looper.run())?;

        Ok(Engine {
            handle: Handle {
                mailbox,
                waker: waker.clone(),
            },
            stats,
            addr,
            stop,
            waker,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A message sender for worker threads.
    pub fn handle(&self) -> Handle<P::Msg> {
        self.handle.clone()
    }

    /// Live counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Stop accepting, force-close every connection
    /// ([`CloseReason::ServerShutdown`]), and join the poller thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl<P: Protocol> Drop for Engine<P> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Which suspicion a wheel entry encodes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    Idle,
    Stall,
}

struct Conn<S> {
    stream: TcpStream,
    io: ConnIo,
    state: S,
    last_activity: Instant,
    /// When the write buffer last transitioned empty→non-empty.
    stall_since: Option<Instant>,
    /// A stall timer is already parked on the wheel.
    stall_armed: bool,
    /// Close as soon as the write buffer drains.
    closing_after_flush: bool,
    /// The peer's write half is gone; never read again.
    saw_eof: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl<S> Conn<S> {
    /// The close reason when a requested drain completes: the close is
    /// attributed to the peer when it hung up first.
    fn drain_done_reason(&self) -> CloseReason {
        if self.saw_eof {
            CloseReason::PeerClosed
        } else {
            CloseReason::Requested
        }
    }
}

struct Loop<P: Protocol> {
    poller: Poller,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    protocol: P,
    config: EngineConfig,
    mailbox: Mailbox<P::Msg>,
    stats: Arc<EngineStats>,
    stop: Arc<AtomicBool>,
    conns: HashMap<u64, Conn<P::Conn>>,
    next_id: u64,
    wheel: DeadlineWheel<(u64, TimerKind)>,
    events: Vec<Event>,
    expired: Vec<(u64, TimerKind)>,
    msgs: Vec<(u64, P::Msg)>,
}

impl<P: Protocol> Loop<P> {
    fn run(&mut self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let timeout = if self.wheel.is_empty() {
                None
            } else {
                Some(10)
            };
            self.events.clear();
            if let Err(e) = self.poller.wait(&mut self.events, timeout) {
                // a failing poller is unrecoverable; tear down
                let _ = e;
                break;
            }

            let mut saw_wake = false;
            for i in 0..self.events.len() {
                let ev = self.events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => saw_wake = true,
                    token => self.conn_ready(token, ev),
                }
            }
            if saw_wake {
                self.wake_rx.drain();
            }
            // the mailbox drains every pass — a message may land just
            // after the waker byte was consumed by a previous drain
            self.deliver_msgs();
            self.fire_timers();
        }
        self.teardown();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        self.stats.over_budget.fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    if self.admit(stream, peer).is_err() {
                        // registration failure: the socket is dropped
                        continue;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // transient accept errors (ECONNABORTED etc.): keep serving
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let conn_id = self.next_id;
        self.next_id += 1;
        // tokens 0 and u64::MAX are reserved; next_id starts at 1 and
        // would take centuries to wrap
        let mut io_bufs = ConnIo {
            rx: ReadBuf::new(),
            tx: WriteBuf::new(),
        };
        let state = self.protocol.on_open(conn_id, peer, &mut io_bufs);
        let interest = Interest::READABLE;
        self.poller
            .register(stream.as_raw_fd(), conn_id, interest)?;
        let now = Instant::now();
        let mut conn = Conn {
            stream,
            io: io_bufs,
            state,
            last_activity: now,
            stall_since: None,
            stall_armed: false,
            closing_after_flush: false,
            saw_eof: false,
            interest,
        };
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        self.stats.live.fetch_add(1, Ordering::Relaxed);
        if let Some(idle) = self.config.idle_timeout {
            self.wheel.insert(now + idle, (conn_id, TimerKind::Idle));
        }
        // a greeting queued by on_open must flush
        match self.apply_action(&mut conn, Action::Continue) {
            Some(reason) => self.finish_close(conn_id, conn, reason),
            None => {
                self.settle_interest(conn_id, &mut conn);
                self.conns.insert(conn_id, conn);
            }
        }
        Ok(())
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut close: Option<CloseReason> = None;

        if ev.readable && close.is_none() && !conn.saw_eof {
            match conn
                .io
                .rx
                .fill_from(&mut conn.stream, self.config.read_budget)
            {
                Ok(FillOutcome::Read(_)) => {
                    conn.last_activity = Instant::now();
                    if !conn.closing_after_flush {
                        let action = self.protocol.on_data(token, &mut conn.state, &mut conn.io);
                        close = self.apply_action(&mut conn, action);
                    }
                }
                Ok(FillOutcome::WouldBlock) => {}
                Ok(FillOutcome::Eof) => {
                    conn.saw_eof = true;
                    let action = self.protocol.on_eof(token, &mut conn.state, &mut conn.io);
                    // EOF with Continue: the protocol is serving the
                    // connection half-open and owns its eventual close
                    close = self.apply_action(&mut conn, action);
                }
                Err(_) => close = Some(CloseReason::Io),
            }
        }

        if close.is_none() && (ev.writable || !conn.io.tx.is_empty()) {
            close = self.apply_action(&mut conn, Action::Continue);
        }

        if close.is_none() && ev.error && conn.io.rx.is_empty() {
            // error/hup with nothing readable left: the socket is dead
            close = Some(CloseReason::Io);
        }

        match close {
            Some(reason) => self.finish_close(token, conn, reason),
            None => {
                self.settle_interest(token, &mut conn);
                self.conns.insert(token, conn);
            }
        }
    }

    /// Apply a protocol action, flushing queued bytes first.
    fn apply_action(&mut self, conn: &mut Conn<P::Conn>, action: Action) -> Option<CloseReason> {
        match action {
            Action::Continue => self.flush_only(conn),
            Action::Close => Some(CloseReason::Protocol),
            Action::CloseAfterFlush => {
                conn.closing_after_flush = true;
                if let Some(reason) = self.flush_only(conn) {
                    return Some(reason);
                }
                if conn.io.tx.is_empty() {
                    return Some(conn.drain_done_reason());
                }
                None
            }
        }
    }

    /// Flush the write buffer; track stall state; report fatal errors.
    fn flush_only(&mut self, conn: &mut Conn<P::Conn>) -> Option<CloseReason> {
        if conn.io.tx.is_empty() {
            conn.stall_since = None;
            return None;
        }
        match conn.io.tx.flush_to(&mut conn.stream) {
            Ok(FlushOutcome::Done) => {
                conn.stall_since = None;
                if conn.closing_after_flush {
                    return Some(conn.drain_done_reason());
                }
                None
            }
            Ok(FlushOutcome::Partial) => {
                if conn.io.tx.pending() > self.config.max_buffered_write {
                    self.stats.evicted_stall.fetch_add(1, Ordering::Relaxed);
                    return Some(CloseReason::WriteStall);
                }
                let now = Instant::now();
                if conn.stall_since.is_none() {
                    conn.stall_since = Some(now);
                }
                None
            }
            Err(_) => Some(CloseReason::Io),
        }
    }

    /// Re-register poller interest to match buffer state, and arm the
    /// stall timer when writes are pending.
    fn settle_interest(&mut self, conn_id: u64, conn: &mut Conn<P::Conn>) {
        let want = match (conn.saw_eof, conn.io.tx.is_empty()) {
            (false, true) => Interest::READABLE,
            (false, false) => Interest::BOTH,
            (true, false) => Interest::WRITABLE,
            // half-open and idle: errors/hangups are still reported
            (true, true) => Interest::NONE,
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn_id, want)
                .is_ok()
        {
            conn.interest = want;
        }
        if !conn.io.tx.is_empty() && !conn.stall_armed {
            if let Some(stall) = self.config.write_stall_timeout {
                let since = conn.stall_since.unwrap_or_else(Instant::now);
                self.wheel
                    .insert(since + stall, (conn_id, TimerKind::Stall));
                conn.stall_armed = true;
            }
        }
    }

    fn deliver_msgs(&mut self) {
        {
            let mut mailbox = self.mailbox.lock().expect("mailbox poisoned");
            std::mem::swap(&mut *mailbox, &mut self.msgs);
        }
        if self.msgs.is_empty() {
            return;
        }
        let batch: Vec<(u64, P::Msg)> = self.msgs.drain(..).collect();
        for (conn_id, msg) in batch {
            let Some(mut conn) = self.conns.remove(&conn_id) else {
                self.stats.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            self.stats.msgs_delivered.fetch_add(1, Ordering::Relaxed);
            let action = self
                .protocol
                .on_msg(conn_id, &mut conn.state, &mut conn.io, msg);
            match self.apply_action(&mut conn, action) {
                Some(reason) => self.finish_close(conn_id, conn, reason),
                None => {
                    self.settle_interest(conn_id, &mut conn);
                    self.conns.insert(conn_id, conn);
                }
            }
        }
    }

    fn fire_timers(&mut self) {
        if self.wheel.is_empty() {
            return;
        }
        let now = Instant::now();
        self.expired.clear();
        let mut expired = std::mem::take(&mut self.expired);
        self.wheel.advance(now, &mut expired);
        for &(conn_id, kind) in &expired {
            let Some(mut conn) = self.conns.remove(&conn_id) else {
                continue;
            };
            match kind {
                TimerKind::Idle => {
                    let idle = self
                        .config
                        .idle_timeout
                        .expect("idle timer without idle timeout");
                    let due = conn.last_activity + idle;
                    if due <= now {
                        self.stats.evicted_idle.fetch_add(1, Ordering::Relaxed);
                        self.finish_close(conn_id, conn, CloseReason::IdleTimeout);
                        continue;
                    }
                    // activity since arming: re-arm at the earned time
                    self.wheel.insert(due, (conn_id, TimerKind::Idle));
                    self.conns.insert(conn_id, conn);
                }
                TimerKind::Stall => {
                    conn.stall_armed = false;
                    let stall = self
                        .config
                        .write_stall_timeout
                        .expect("stall timer without stall timeout");
                    match conn.stall_since {
                        Some(since) if since + stall <= now => {
                            self.stats.evicted_stall.fetch_add(1, Ordering::Relaxed);
                            self.finish_close(conn_id, conn, CloseReason::WriteStall);
                        }
                        Some(since) => {
                            self.wheel
                                .insert(since + stall, (conn_id, TimerKind::Stall));
                            conn.stall_armed = true;
                            self.conns.insert(conn_id, conn);
                        }
                        // buffer drained since arming: timer dissolves
                        None => {
                            self.conns.insert(conn_id, conn);
                        }
                    }
                }
            }
        }
        expired.clear();
        self.expired = expired;
    }

    fn finish_close(&mut self, conn_id: u64, conn: Conn<P::Conn>, reason: CloseReason) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.stats.closed.fetch_add(1, Ordering::Relaxed);
        self.stats.live.fetch_sub(1, Ordering::Relaxed);
        self.protocol.on_close(conn_id, conn.state, reason);
        // conn.stream drops here, closing the fd after deregistration
    }

    fn teardown(&mut self) {
        // straggler mailbox messages — replies produced between the stop
        // signal and the loop exit — still get encoded, so a graceful
        // server drain (service first, engine second) loses nothing
        self.deliver_msgs();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for conn_id in ids {
            if let Some(mut conn) = self.conns.remove(&conn_id) {
                // bounded-blocking final flush so a goodbye or reply in
                // the buffer reaches a live peer
                if !conn.io.tx.is_empty() {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = conn.io.tx.flush_to(&mut conn.stream);
                }
                self.finish_close(conn_id, conn, CloseReason::ServerShutdown);
            }
        }
    }
}
