//! Per-connection buffer state machines. A [`ReadBuf`] accumulates
//! inbound bytes until the protocol layer can consume whole frames; a
//! [`WriteBuf`] queues outbound bytes and flushes as far as the socket
//! allows. Both keep a start offset so consuming from the front is O(1)
//! and compaction is amortized.

use std::io::{self, Read, Write};

/// How many consumed bytes may pile up at the front of a buffer before
/// it is compacted.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// Inbound byte accumulator with budgeted nonblocking fills.
#[derive(Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    start: usize,
}

/// What a nonblocking fill observed on the socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// Bytes were appended (count), and the socket may hold more.
    Read(usize),
    /// The socket is drained for now (`EWOULDBLOCK`).
    WouldBlock,
    /// The peer closed its write half.
    Eof,
}

impl ReadBuf {
    /// Fresh, empty buffer.
    pub fn new() -> ReadBuf {
        ReadBuf::default()
    }

    /// The unconsumed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Unconsumed byte count.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop `n` bytes from the front (they have been parsed).
    ///
    /// # Panics
    ///
    /// If `n` exceeds [`ReadBuf::len`].
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume past end of buffer");
        self.start += n;
        if self.start >= COMPACT_THRESHOLD || self.start == self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Pull up to `budget` bytes from a nonblocking `source`. Stops at
    /// the budget even if more is pending — the poller is
    /// level-triggered, so the remainder re-arms on the next wakeup and
    /// one greedy peer cannot starve its neighbours.
    ///
    /// # Errors
    ///
    /// Real socket errors; `WouldBlock`/`Interrupted` are folded into
    /// the outcome.
    pub fn fill_from(&mut self, source: &mut impl Read, budget: usize) -> io::Result<FillOutcome> {
        let mut total = 0usize;
        let mut chunk = [0u8; 4096];
        while total < budget {
            let want = chunk.len().min(budget - total);
            match source.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Ok(if total > 0 {
                        FillOutcome::Read(total)
                    } else {
                        FillOutcome::Eof
                    });
                }
                Ok(n) => {
                    self.data.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(if total > 0 {
                        FillOutcome::Read(total)
                    } else {
                        FillOutcome::WouldBlock
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(FillOutcome::Read(total))
    }
}

/// Outbound byte queue with nonblocking flushes.
#[derive(Default)]
pub struct WriteBuf {
    data: Vec<u8>,
    start: usize,
}

/// What a nonblocking flush achieved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Everything queued has reached the socket.
    Done,
    /// The socket filled up; bytes remain queued.
    Partial,
}

impl WriteBuf {
    /// Fresh, empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Bytes still waiting to reach the socket.
    pub fn pending(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Queue `bytes` for transmission.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Push queued bytes into a nonblocking `sink` until drained or the
    /// socket refuses more.
    ///
    /// # Errors
    ///
    /// Real socket errors; `WouldBlock`/`Interrupted` are folded into
    /// the outcome.
    pub fn flush_to(&mut self, sink: &mut impl Write) -> io::Result<FlushOutcome> {
        while self.start < self.data.len() {
            match sink.write(&self.data[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.start += n;
                    if self.start >= COMPACT_THRESHOLD {
                        self.data.drain(..self.start);
                        self.start = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome::Partial)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.data.clear();
        self.start = 0;
        Ok(FlushOutcome::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Read source yielding fixed-size chunks, then WouldBlock.
    struct Chunks {
        bytes: Vec<u8>,
        at: usize,
        chunk: usize,
    }

    impl Read for Chunks {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.bytes.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
            }
            let n = buf.len().min(self.chunk).min(self.bytes.len() - self.at);
            buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    /// A Write sink accepting `cap` bytes per call, then WouldBlock.
    struct Throttle {
        got: Vec<u8>,
        cap: usize,
        calls_left: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_left == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_left -= 1;
            let n = buf.len().min(self.cap);
            self.got.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn read_buf_respects_budget_and_resumes() {
        let mut src = Chunks {
            bytes: (0..100u8).collect(),
            at: 0,
            chunk: 7,
        };
        let mut buf = ReadBuf::new();
        // budget smaller than available: stops at the budget
        match buf.fill_from(&mut src, 10).unwrap() {
            FillOutcome::Read(n) => assert!((10..=14).contains(&n), "{n}"),
            other => panic!("{other:?}"),
        }
        let first = buf.len();
        // resume picks up where it left off, then hits WouldBlock
        match buf.fill_from(&mut src, 1000).unwrap() {
            FillOutcome::Read(n) => assert_eq!(first + n, 100),
            other => panic!("{other:?}"),
        }
        assert_eq!(buf.bytes(), (0..100u8).collect::<Vec<_>>().as_slice());
        assert_eq!(
            buf.fill_from(&mut src, 1000).unwrap(),
            FillOutcome::WouldBlock
        );
    }

    #[test]
    fn read_buf_consume_keeps_remainder_aligned() {
        let mut src = Chunks {
            bytes: (0..50u8).collect(),
            at: 0,
            chunk: 64,
        };
        let mut buf = ReadBuf::new();
        buf.fill_from(&mut src, 64).unwrap();
        buf.consume(20);
        assert_eq!(buf.len(), 30);
        assert_eq!(buf.bytes()[0], 20);
        buf.consume(30);
        assert!(buf.is_empty());
    }

    #[test]
    fn read_buf_reports_eof_only_when_nothing_was_read() {
        struct Closed;
        impl Read for Closed {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let mut buf = ReadBuf::new();
        assert_eq!(buf.fill_from(&mut Closed, 64).unwrap(), FillOutcome::Eof);
    }

    #[test]
    fn write_buf_flushes_across_partial_writes() {
        let mut buf = WriteBuf::new();
        buf.queue(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut sink = Throttle {
            got: Vec::new(),
            cap: 3,
            calls_left: 2,
        };
        assert_eq!(buf.flush_to(&mut sink).unwrap(), FlushOutcome::Partial);
        assert_eq!(sink.got, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(buf.pending(), 2);

        buf.queue(&[9]);
        sink.calls_left = 10;
        assert_eq!(buf.flush_to(&mut sink).unwrap(), FlushOutcome::Done);
        assert_eq!(sink.got, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(buf.is_empty());
    }
}
