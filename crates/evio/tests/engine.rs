//! Engine-level integration tests: a small line-echo protocol driven
//! over real loopback sockets exercises readiness dispatch, the worker
//! mailbox, connection budgets, and both eviction clocks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use stackcache_evio::{Action, CloseReason, ConnIo, Engine, EngineConfig, Protocol};

/// Echo each `\n`-terminated line back, uppercased. A line "BYE"
/// requests a clean close-after-flush; a line "DROP" closes
/// immediately. A line "ASYNC <text>" is answered via the mailbox from
/// a worker thread instead of inline; a peer that half-closes with
/// async replies outstanding is served half-open until they fan out.
struct Upper {
    closes: Arc<Mutex<Vec<(u64, CloseReason)>>>,
    async_requests: Arc<Mutex<Vec<(u64, String)>>>,
    opened: Arc<AtomicU64>,
}

#[derive(Default)]
struct UpperConn {
    /// ASYNC requests handed to the worker and not yet answered.
    pending_async: u32,
    /// The peer closed its write half.
    eof: bool,
}

impl Protocol for Upper {
    type Conn = UpperConn;
    type Msg = String;

    fn on_open(&self, _conn_id: u64, _peer: SocketAddr, io: &mut ConnIo) -> UpperConn {
        self.opened.fetch_add(1, Ordering::SeqCst);
        io.send(b"HELLO\n");
        UpperConn::default()
    }

    fn on_data(&self, conn_id: u64, conn: &mut UpperConn, io: &mut ConnIo) -> Action {
        loop {
            let bytes = io.rx_bytes();
            let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
                return Action::Continue;
            };
            let line = String::from_utf8_lossy(&bytes[..nl]).into_owned();
            io.rx_consume(nl + 1);
            if line == "BYE" {
                io.send(b"GOODBYE\n");
                return Action::CloseAfterFlush;
            }
            if line == "DROP" {
                return Action::Close;
            }
            if line == "FLOOD" {
                // amplification for the stall tests: tiny request, huge
                // reply, so kernel socket buffers can't hide the backlog
                io.send(&vec![b'F'; 1 << 20]);
                continue;
            }
            if let Some(text) = line.strip_prefix("ASYNC ") {
                conn.pending_async += 1;
                self.async_requests
                    .lock()
                    .unwrap()
                    .push((conn_id, text.to_string()));
                continue;
            }
            io.send(line.to_uppercase().as_bytes());
            io.send(b"\n");
        }
    }

    fn on_eof(&self, _conn_id: u64, conn: &mut UpperConn, _io: &mut ConnIo) -> Action {
        conn.eof = true;
        if conn.pending_async > 0 {
            // drain: stay half-open until the worker's replies arrive
            Action::Continue
        } else {
            Action::CloseAfterFlush
        }
    }

    fn on_msg(&self, _conn_id: u64, conn: &mut UpperConn, io: &mut ConnIo, msg: String) -> Action {
        conn.pending_async = conn.pending_async.saturating_sub(1);
        io.send(msg.as_bytes());
        io.send(b"\n");
        if conn.eof && conn.pending_async == 0 {
            Action::CloseAfterFlush
        } else {
            Action::Continue
        }
    }

    fn on_close(&self, conn_id: u64, _conn: UpperConn, reason: CloseReason) {
        self.closes.lock().unwrap().push((conn_id, reason));
    }
}

struct Fixture {
    engine: Engine<Upper>,
    closes: Arc<Mutex<Vec<(u64, CloseReason)>>>,
    async_requests: Arc<Mutex<Vec<(u64, String)>>>,
}

fn start(config: EngineConfig) -> Fixture {
    let closes = Arc::new(Mutex::new(Vec::new()));
    let async_requests = Arc::new(Mutex::new(Vec::new()));
    let protocol = Upper {
        closes: Arc::clone(&closes),
        async_requests: Arc::clone(&async_requests),
        opened: Arc::new(AtomicU64::new(0)),
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let engine = Engine::start(listener, protocol, config).expect("engine");
    Fixture {
        engine,
        closes,
        async_requests,
    }
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => panic!("read_line: {e}"),
        }
    }
    String::from_utf8(line).expect("utf8 line")
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn echo_roundtrip_and_clean_goodbye() {
    let fx = start(EngineConfig::default());
    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut c), "HELLO");

    c.write_all(b"ping\nsecond line\n").expect("write");
    assert_eq!(read_line(&mut c), "PING");
    assert_eq!(read_line(&mut c), "SECOND LINE");

    c.write_all(b"BYE\n").expect("write");
    assert_eq!(read_line(&mut c), "GOODBYE");
    // server closes after the flush
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());

    wait_until("close record", || !fx.closes.lock().unwrap().is_empty());
    assert_eq!(fx.closes.lock().unwrap()[0].1, CloseReason::Requested);
    fx.engine.shutdown();
}

#[test]
fn protocol_close_drops_immediately() {
    let fx = start(EngineConfig::default());
    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut c), "HELLO");
    c.write_all(b"DROP\n").expect("write");
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).expect("eof");
    wait_until("close record", || !fx.closes.lock().unwrap().is_empty());
    assert_eq!(fx.closes.lock().unwrap()[0].1, CloseReason::Protocol);
    fx.engine.shutdown();
}

#[test]
fn mailbox_replies_reach_the_right_connection() {
    let fx = start(EngineConfig::default());
    let handle = fx.engine.handle();

    // a worker thread answering ASYNC requests out-of-band
    let requests = Arc::clone(&fx.async_requests);
    let worker = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut served = 0usize;
        while served < 2 {
            assert!(Instant::now() < deadline, "worker starved");
            let batch: Vec<(u64, String)> = requests.lock().unwrap().drain(..).collect();
            for (conn_id, text) in batch {
                handle.send(conn_id, format!("async:{text}"));
                served += 1;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let mut a = TcpStream::connect(fx.engine.addr()).expect("connect a");
    let mut b = TcpStream::connect(fx.engine.addr()).expect("connect b");
    assert_eq!(read_line(&mut a), "HELLO");
    assert_eq!(read_line(&mut b), "HELLO");

    a.write_all(b"ASYNC alpha\n").expect("write");
    b.write_all(b"ASYNC beta\n").expect("write");
    assert_eq!(read_line(&mut a), "async:alpha");
    assert_eq!(read_line(&mut b), "async:beta");
    worker.join().unwrap();

    let stats = fx.engine.stats();
    assert_eq!(stats.msgs_delivered.load(Ordering::SeqCst), 2);
    assert_eq!(stats.msgs_dropped.load(Ordering::SeqCst), 0);
    fx.engine.shutdown();
}

#[test]
fn mailbox_message_for_a_dead_connection_is_dropped_not_fatal() {
    let fx = start(EngineConfig::default());
    let handle = fx.engine.handle();
    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut c), "HELLO");
    drop(c);
    wait_until("close record", || !fx.closes.lock().unwrap().is_empty());
    let conn_id = fx.closes.lock().unwrap()[0].0;

    handle.send(conn_id, "too late".to_string());
    wait_until("drop count", || {
        fx.engine.stats().msgs_dropped.load(Ordering::SeqCst) == 1
    });

    // the engine still serves new connections afterwards
    let mut c2 = TcpStream::connect(fx.engine.addr()).expect("connect 2");
    assert_eq!(read_line(&mut c2), "HELLO");
    c2.write_all(b"still alive\n").expect("write");
    assert_eq!(read_line(&mut c2), "STILL ALIVE");
    fx.engine.shutdown();
}

#[test]
fn connection_budget_refuses_excess_accepts() {
    let fx = start(EngineConfig {
        max_connections: 2,
        ..EngineConfig::default()
    });
    let mut a = TcpStream::connect(fx.engine.addr()).expect("connect a");
    let mut b = TcpStream::connect(fx.engine.addr()).expect("connect b");
    assert_eq!(read_line(&mut a), "HELLO");
    assert_eq!(read_line(&mut b), "HELLO");

    // the third connection is closed on sight
    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect c");
    let mut rest = Vec::new();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let got = c.read_to_end(&mut rest);
    // either clean EOF or a reset — both mean "refused", never HELLO
    if got.is_ok() {
        assert!(rest.is_empty(), "budget leak: got {rest:?}");
    }
    wait_until("over_budget stat", || {
        fx.engine.stats().over_budget.load(Ordering::SeqCst) == 1
    });

    // existing connections are unaffected
    a.write_all(b"one\n").expect("write");
    b.write_all(b"two\n").expect("write");
    assert_eq!(read_line(&mut a), "ONE");
    assert_eq!(read_line(&mut b), "TWO");

    // freeing a slot lets a new peer in
    drop(a);
    wait_until("slot freed", || {
        fx.engine.stats().live.load(Ordering::SeqCst) < 2
    });
    let mut d = TcpStream::connect(fx.engine.addr()).expect("connect d");
    assert_eq!(read_line(&mut d), "HELLO");
    fx.engine.shutdown();
}

#[test]
fn idle_connection_is_evicted_but_active_neighbour_survives() {
    let fx = start(EngineConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..EngineConfig::default()
    });
    let mut idle = TcpStream::connect(fx.engine.addr()).expect("connect idle");
    let mut busy = TcpStream::connect(fx.engine.addr()).expect("connect busy");
    assert_eq!(read_line(&mut idle), "HELLO");
    assert_eq!(read_line(&mut busy), "HELLO");

    // keep one connection chatty well past the idle window
    let start_t = Instant::now();
    while start_t.elapsed() < Duration::from_millis(500) {
        busy.write_all(b"tick\n").expect("write");
        assert_eq!(read_line(&mut busy), "TICK");
        std::thread::sleep(Duration::from_millis(25));
    }

    // the silent one got evicted…
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rest = Vec::new();
    let _ = idle.read_to_end(&mut rest);
    assert!(rest.is_empty(), "evicted conn produced bytes: {rest:?}");
    assert_eq!(fx.engine.stats().evicted_idle.load(Ordering::SeqCst), 1);
    {
        let closes = fx.closes.lock().unwrap();
        assert!(closes
            .iter()
            .any(|&(_, reason)| reason == CloseReason::IdleTimeout));
    }

    // …while the chatty one still works
    busy.write_all(b"still here\n").expect("write");
    assert_eq!(read_line(&mut busy), "STILL HERE");
    fx.engine.shutdown();
}

#[test]
fn write_buffer_overflow_evicts_the_slow_reader() {
    let fx = start(EngineConfig {
        // tiny ceiling so a non-draining peer trips it fast
        max_buffered_write: 32 * 1024,
        write_stall_timeout: Some(Duration::from_secs(30)),
        ..EngineConfig::default()
    });
    let mut slow = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut slow), "HELLO");

    // ask for ~64 MiB of output and never read it; kernel buffers
    // absorb a few MiB at most, the rest lands in the engine's WriteBuf
    for _ in 0..64 {
        if slow.write_all(b"FLOOD\n").is_err() {
            break; // server already hung up on us
        }
    }
    wait_until("stall eviction", || {
        fx.engine.stats().evicted_stall.load(Ordering::SeqCst) >= 1
    });
    {
        let closes = fx.closes.lock().unwrap();
        assert!(closes
            .iter()
            .any(|&(_, reason)| reason == CloseReason::WriteStall));
    }
    fx.engine.shutdown();
}

#[test]
fn half_open_peer_still_receives_outstanding_async_replies() {
    let fx = start(EngineConfig::default());
    let handle = fx.engine.handle();
    let requests = Arc::clone(&fx.async_requests);
    let worker = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "worker starved");
            let batch: Vec<(u64, String)> = requests.lock().unwrap().drain(..).collect();
            if let Some((conn_id, text)) = batch.into_iter().next() {
                // answer well after the peer's write half is gone
                std::thread::sleep(Duration::from_millis(100));
                handle.send(conn_id, format!("late:{text}"));
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut c), "HELLO");
    c.write_all(b"ASYNC drain\n").expect("write");
    c.shutdown(std::net::Shutdown::Write).expect("half-close");

    // the reply still arrives over the half-open connection…
    assert_eq!(read_line(&mut c), "late:drain");
    // …and only then does the server close, attributing it to the peer
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());
    worker.join().unwrap();
    wait_until("close record", || !fx.closes.lock().unwrap().is_empty());
    assert_eq!(fx.closes.lock().unwrap()[0].1, CloseReason::PeerClosed);
    fx.engine.shutdown();
}

#[test]
fn shutdown_force_closes_live_connections() {
    let fx = start(EngineConfig::default());
    let mut c = TcpStream::connect(fx.engine.addr()).expect("connect");
    assert_eq!(read_line(&mut c), "HELLO");
    let closes = Arc::clone(&fx.closes);
    fx.engine.shutdown();
    let records = closes.lock().unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].1, CloseReason::ServerShutdown);
}
