//! Wall-clock interpreters: the uncached baseline and the k=1
//! top-of-stack-in-register interpreter.
//!
//! These are the two ends of Fig. 21's "constant number of items in
//! registers" axis that can be compared by real measurement (the paper
//! reports an 11% speedup for `prims2x` and 7% for `cross` from keeping one
//! item in a register on an R3000; the `interpreters` bench regenerates the
//! comparison on the host machine).
//!
//! Both interpreters implement exactly the same observable semantics as the
//! reference interpreter in [`crate::exec`] — including traps — and are
//! cross-validated against it in tests.  The difference is purely in how
//! the data stack is accessed:
//!
//! * [`run_baseline`] keeps every stack item in memory and manipulates an
//!   explicit stack-pointer index (Fig. 11),
//! * [`run_tos`] keeps the top of stack in a local variable that the
//!   compiler can allocate to a machine register (Fig. 12), turning e.g.
//!   `+` from two loads + one store into a single load.
//!
//! The dynamically and statically cached interpreters live in
//! `stackcache-core`, next to the cache-state machinery they need.

use crate::checks::{Checks, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};
use crate::error::VmError;
use crate::inst::{Cell, Inst, CELL_BYTES, FALSE, TRUE};
use crate::machine::Machine;
use crate::program::Program;

/// Outcome of a wall-clock interpreter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of instructions executed (including the final `halt`).
    pub executed: u64,
}

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Run `program` with the plain memory-stack interpreter.
///
/// The data and return stacks are dense arrays indexed by explicit stack
/// pointers; every operand access is a memory access, as in Fig. 11 of the
/// paper.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter.
pub fn run_baseline(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    run_baseline_mode::<CHECK_FULL>(program, machine, fuel)
}

/// [`run_baseline`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; see [`Checks`] for the contract.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter (minus the
/// trap classes the chosen level elides).
pub fn run_baseline_with_checks(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    match checks {
        Checks::Full => run_baseline_mode::<CHECK_FULL>(program, machine, fuel),
        Checks::NoUnderflow => run_baseline_mode::<CHECK_NO_UNDERFLOW>(program, machine, fuel),
        Checks::None => run_baseline_mode::<CHECK_NONE>(program, machine, fuel),
    }
}

fn run_baseline_mode<const MODE: u8>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    let insts = program.insts();
    let limit = machine.stack_limit.min(1 << 20);
    let rlimit = machine.rstack_limit.min(1 << 20);
    let mut buf = vec![0 as Cell; limit];
    let mut rbuf = vec![0 as Cell; rlimit];
    // Adopt any pre-set stack contents.
    let mut sp = machine.stack.len();
    buf[..sp].copy_from_slice(&machine.stack);
    let mut rsp = machine.rstack.len();
    rbuf[..rsp].copy_from_slice(&machine.rstack);

    let mut ip = program.entry();
    let mut executed: u64 = 0;

    macro_rules! pop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && sp == 0 {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
            sp -= 1;
            buf[sp]
        }};
    }
    macro_rules! push {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && sp >= limit {
                return Err(VmError::StackOverflow { ip: $cur });
            }
            buf[sp] = $v;
            sp += 1;
        }};
    }
    macro_rules! need {
        ($cur:expr, $n:expr) => {
            if MODE == CHECK_FULL && sp < $n {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
        };
    }
    macro_rules! rpop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && rsp == 0 {
                return Err(VmError::ReturnStackUnderflow { ip: $cur });
            }
            rsp -= 1;
            rbuf[rsp]
        }};
    }
    macro_rules! rpush {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && rsp >= rlimit {
                return Err(VmError::ReturnStackOverflow { ip: $cur });
            }
            rbuf[rsp] = $v;
            rsp += 1;
        }};
    }
    macro_rules! binop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 2);
            let b = buf[sp - 1];
            let a = buf[sp - 2];
            buf[sp - 2] = $f(a, b);
            sp -= 1;
        }};
    }
    macro_rules! unop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 1);
            buf[sp - 1] = $f(buf[sp - 1]);
        }};
    }

    loop {
        if executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        let Some(&inst) = insts.get(ip) else {
            return Err(VmError::InstructionOutOfBounds { ip });
        };
        executed += 1;
        let cur = ip;
        ip += 1;
        match inst {
            Inst::Lit(n) => push!(cur, n),
            Inst::Add => binop!(cur, |a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(cur, |a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(cur, |a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                buf[sp - 2] = a.div_euclid(b);
                sp -= 1;
            }
            Inst::Mod => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                buf[sp - 2] = a.rem_euclid(b);
                sp -= 1;
            }
            Inst::And => binop!(cur, |a: Cell, b: Cell| a & b),
            Inst::Or => binop!(cur, |a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(cur, |a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) << (b as u64 & 63))
                as Cell),
            Inst::Rshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63))
                as Cell),
            Inst::Min => binop!(cur, |a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(cur, |a: Cell, b: Cell| a.max(b)),
            Inst::Eq => binop!(cur, |a, b| flag(a == b)),
            Inst::Ne => binop!(cur, |a, b| flag(a != b)),
            Inst::Lt => binop!(cur, |a, b| flag(a < b)),
            Inst::Gt => binop!(cur, |a, b| flag(a > b)),
            Inst::Le => binop!(cur, |a, b| flag(a <= b)),
            Inst::Ge => binop!(cur, |a, b| flag(a >= b)),
            Inst::ULt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) > (b as u64))),
            Inst::Negate => unop!(cur, |a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(cur, |a: Cell| !a),
            Inst::Abs => unop!(cur, |a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(cur, |a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(cur, |a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(cur, |a: Cell| a >> 1),
            Inst::ZeroEq => unop!(cur, |a| flag(a == 0)),
            Inst::ZeroNe => unop!(cur, |a| flag(a != 0)),
            Inst::ZeroLt => unop!(cur, |a| flag(a < 0)),
            Inst::ZeroGt => unop!(cur, |a| flag(a > 0)),
            Inst::CellPlus => unop!(cur, |a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(cur, |a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::Dup => {
                need!(cur, 1);
                let a = buf[sp - 1];
                push!(cur, a);
            }
            Inst::Drop => {
                need!(cur, 1);
                sp -= 1;
            }
            Inst::Swap => {
                need!(cur, 2);
                buf.swap(sp - 1, sp - 2);
            }
            Inst::Over => {
                need!(cur, 2);
                let a = buf[sp - 2];
                push!(cur, a);
            }
            Inst::Rot => {
                need!(cur, 3);
                let a = buf[sp - 3];
                buf[sp - 3] = buf[sp - 2];
                buf[sp - 2] = buf[sp - 1];
                buf[sp - 1] = a;
            }
            Inst::MinusRot => {
                need!(cur, 3);
                let c = buf[sp - 1];
                buf[sp - 1] = buf[sp - 2];
                buf[sp - 2] = buf[sp - 3];
                buf[sp - 3] = c;
            }
            Inst::Nip => {
                need!(cur, 2);
                buf[sp - 2] = buf[sp - 1];
                sp -= 1;
            }
            Inst::Tuck => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                buf[sp - 2] = b;
                buf[sp - 1] = a;
                push!(cur, b);
            }
            Inst::TwoDup => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoDrop => {
                need!(cur, 2);
                sp -= 2;
            }
            Inst::TwoSwap => {
                need!(cur, 4);
                buf.swap(sp - 4, sp - 2);
                buf.swap(sp - 3, sp - 1);
            }
            Inst::TwoOver => {
                need!(cur, 4);
                let a = buf[sp - 4];
                let b = buf[sp - 3];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::QDup => {
                need!(cur, 1);
                let a = buf[sp - 1];
                if a != 0 {
                    push!(cur, a);
                }
            }
            Inst::Pick => {
                need!(cur, 1);
                let u = buf[sp - 1];
                sp -= 1;
                if u < 0 || u as usize >= sp {
                    return Err(VmError::PickOutOfRange { ip: cur, index: u });
                }
                let v = buf[sp - 1 - u as usize];
                push!(cur, v);
            }
            Inst::Depth => {
                let d = sp as Cell;
                push!(cur, d);
            }
            Inst::ToR => {
                let a = pop!(cur);
                rpush!(cur, a);
            }
            Inst::FromR => {
                let a = rpop!(cur);
                push!(cur, a);
            }
            Inst::RFetch => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 1];
                push!(cur, a);
            }
            Inst::TwoToR => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                sp -= 2;
                rpush!(cur, a);
                rpush!(cur, b);
            }
            Inst::TwoFromR => {
                let b = rpop!(cur);
                let a = rpop!(cur);
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoRFetch => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 2];
                let b = rbuf[rsp - 1];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::Fetch => {
                need!(cur, 1);
                let addr = buf[sp - 1];
                match machine.load_cell(addr) {
                    Some(x) => buf[sp - 1] = x,
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Store => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let x = buf[sp - 2];
                sp -= 2;
                if !machine.store_cell(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::CFetch => {
                need!(cur, 1);
                let addr = buf[sp - 1];
                match machine.load_byte(addr) {
                    Some(x) => buf[sp - 1] = x,
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::CStore => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let x = buf[sp - 2];
                sp -= 2;
                if !machine.store_byte(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::PlusStore => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let n = buf[sp - 2];
                sp -= 2;
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Branch(t) => ip = t as usize,
            Inst::BranchIfZero(t) => {
                let f = pop!(cur);
                if f == 0 {
                    ip = t as usize;
                }
            }
            Inst::Call(t) => {
                rpush!(cur, ip as Cell);
                ip = t as usize;
            }
            Inst::Execute => {
                let token = pop!(cur);
                if token < 0 || token as usize >= insts.len() {
                    return Err(VmError::InvalidExecutionToken { ip: cur, token });
                }
                rpush!(cur, ip as Cell);
                ip = token as usize;
            }
            Inst::Return => {
                let ret = rpop!(cur);
                if ret < 0 || ret as usize > insts.len() {
                    return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                ip = ret as usize;
            }
            Inst::Halt => {
                machine.stack.clear();
                machine.stack.extend_from_slice(&buf[..sp]);
                machine.rstack.clear();
                machine.rstack.extend_from_slice(&rbuf[..rsp]);
                return Ok(RunStats { executed });
            }
            Inst::Nop => {}
            Inst::DoSetup => {
                need!(cur, 2);
                let start = buf[sp - 1];
                let limit_v = buf[sp - 2];
                sp -= 2;
                rpush!(cur, limit_v);
                rpush!(cur, start);
            }
            Inst::QDoSetup(t) => {
                need!(cur, 2);
                let start = buf[sp - 1];
                let limit_v = buf[sp - 2];
                sp -= 2;
                if limit_v == start {
                    ip = t as usize;
                } else {
                    rpush!(cur, limit_v);
                    rpush!(cur, start);
                }
            }
            Inst::LoopInc(t) => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let index = rbuf[rsp - 1].wrapping_add(1);
                let limit_v = rbuf[rsp - 2];
                if index == limit_v {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = index;
                    ip = t as usize;
                }
            }
            Inst::PlusLoopInc(t) => {
                let step = pop!(cur);
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let old = rbuf[rsp - 1];
                let new = old.wrapping_add(step);
                let limit_v = rbuf[rsp - 2];
                let crossed = if step >= 0 {
                    old < limit_v && new >= limit_v
                } else {
                    old >= limit_v && new < limit_v
                };
                if crossed {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = new;
                    ip = t as usize;
                }
            }
            Inst::LoopI => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let i = rbuf[rsp - 1];
                push!(cur, i);
            }
            Inst::LoopJ => {
                if MODE == CHECK_FULL && rsp < 4 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let j = rbuf[rsp - 3];
                push!(cur, j);
            }
            Inst::Unloop => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 2;
            }
            Inst::Emit => {
                let c = pop!(cur);
                machine.out.push(c as u8);
            }
            Inst::Dot => {
                let n = pop!(cur);
                machine.out.extend_from_slice(n.to_string().as_bytes());
                machine.out.push(b' ');
            }
            Inst::Type => {
                need!(cur, 2);
                let len = buf[sp - 1];
                let addr = buf[sp - 2];
                sp -= 2;
                if len < 0 {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(byte) => machine.out.push(byte as u8),
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                    }
                }
            }
            Inst::Cr => machine.out.push(b'\n'),
        }
    }
}

/// Run `program` with the top-of-stack-in-register interpreter (k = 1).
///
/// The top of the data stack lives in a local variable (`tos`) which the
/// native compiler keeps in a machine register; stack memory holds only the
/// items below it. Binary operations therefore perform one load instead of
/// two loads and a store, and unary operations touch no stack memory at
/// all (Fig. 12 of the paper).
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter.
pub fn run_tos(program: &Program, machine: &mut Machine, fuel: u64) -> Result<RunStats, VmError> {
    run_tos_mode::<CHECK_FULL>(program, machine, fuel)
}

/// [`run_tos`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; see [`Checks`] for the contract.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter (minus the
/// trap classes the chosen level elides).
pub fn run_tos_with_checks(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    match checks {
        Checks::Full => run_tos_mode::<CHECK_FULL>(program, machine, fuel),
        Checks::NoUnderflow => run_tos_mode::<CHECK_NO_UNDERFLOW>(program, machine, fuel),
        Checks::None => run_tos_mode::<CHECK_NONE>(program, machine, fuel),
    }
}

#[allow(clippy::too_many_lines)]
fn run_tos_mode<const MODE: u8>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    let insts = program.insts();
    let limit = machine.stack_limit.min(1 << 20);
    let rlimit = machine.rstack_limit.min(1 << 20);
    let mut buf = vec![0 as Cell; limit];
    let mut rbuf = vec![0 as Cell; rlimit];

    // `depth` counts all items; items 0..depth-1 are live, with item
    // depth-1 held in `tos` (its memory slot is stale).
    let mut depth = machine.stack.len();
    buf[..depth].copy_from_slice(&machine.stack);
    let mut tos: Cell = if depth > 0 { buf[depth - 1] } else { 0 };
    let mut rsp = machine.rstack.len();
    rbuf[..rsp].copy_from_slice(&machine.rstack);

    let mut ip = program.entry();
    let mut executed: u64 = 0;

    macro_rules! push {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && depth >= limit {
                return Err(VmError::StackOverflow { ip: $cur });
            }
            if depth > 0 {
                buf[depth - 1] = tos;
            }
            tos = $v;
            depth += 1;
        }};
    }
    macro_rules! pop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && depth == 0 {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
            let v = tos;
            depth -= 1;
            if depth > 0 {
                tos = buf[depth - 1];
            }
            v
        }};
    }
    macro_rules! need {
        ($cur:expr, $n:expr) => {
            if MODE == CHECK_FULL && depth < $n {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
        };
    }
    macro_rules! rpop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && rsp == 0 {
                return Err(VmError::ReturnStackUnderflow { ip: $cur });
            }
            rsp -= 1;
            rbuf[rsp]
        }};
    }
    macro_rules! rpush {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && rsp >= rlimit {
                return Err(VmError::ReturnStackOverflow { ip: $cur });
            }
            rbuf[rsp] = $v;
            rsp += 1;
        }};
    }
    // Binary op: second operand loaded from memory, result stays in tos.
    macro_rules! binop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 2);
            let a = buf[depth - 2];
            tos = $f(a, tos);
            depth -= 1;
        }};
    }
    // Unary op: no stack memory traffic at all.
    macro_rules! unop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 1);
            tos = $f(tos);
        }};
    }

    loop {
        if executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        let Some(&inst) = insts.get(ip) else {
            return Err(VmError::InstructionOutOfBounds { ip });
        };
        executed += 1;
        let cur = ip;
        ip += 1;
        match inst {
            Inst::Lit(n) => push!(cur, n),
            Inst::Add => binop!(cur, |a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(cur, |a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(cur, |a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                need!(cur, 2);
                if tos == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                let a = buf[depth - 2];
                tos = a.div_euclid(tos);
                depth -= 1;
            }
            Inst::Mod => {
                need!(cur, 2);
                if tos == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                let a = buf[depth - 2];
                tos = a.rem_euclid(tos);
                depth -= 1;
            }
            Inst::And => binop!(cur, |a: Cell, b: Cell| a & b),
            Inst::Or => binop!(cur, |a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(cur, |a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) << (b as u64 & 63))
                as Cell),
            Inst::Rshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63))
                as Cell),
            Inst::Min => binop!(cur, |a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(cur, |a: Cell, b: Cell| a.max(b)),
            Inst::Eq => binop!(cur, |a, b| flag(a == b)),
            Inst::Ne => binop!(cur, |a, b| flag(a != b)),
            Inst::Lt => binop!(cur, |a, b| flag(a < b)),
            Inst::Gt => binop!(cur, |a, b| flag(a > b)),
            Inst::Le => binop!(cur, |a, b| flag(a <= b)),
            Inst::Ge => binop!(cur, |a, b| flag(a >= b)),
            Inst::ULt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) > (b as u64))),
            Inst::Negate => unop!(cur, |a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(cur, |a: Cell| !a),
            Inst::Abs => unop!(cur, |a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(cur, |a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(cur, |a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(cur, |a: Cell| a >> 1),
            Inst::ZeroEq => unop!(cur, |a| flag(a == 0)),
            Inst::ZeroNe => unop!(cur, |a| flag(a != 0)),
            Inst::ZeroLt => unop!(cur, |a| flag(a < 0)),
            Inst::ZeroGt => unop!(cur, |a| flag(a > 0)),
            Inst::CellPlus => unop!(cur, |a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(cur, |a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::Dup => {
                need!(cur, 1);
                let v = tos;
                push!(cur, v);
            }
            Inst::Drop => {
                need!(cur, 1);
                depth -= 1;
                if depth > 0 {
                    tos = buf[depth - 1];
                }
            }
            Inst::Swap => {
                need!(cur, 2);
                std::mem::swap(&mut buf[depth - 2], &mut tos);
            }
            Inst::Over => {
                need!(cur, 2);
                let a = buf[depth - 2];
                push!(cur, a);
            }
            Inst::Rot => {
                need!(cur, 3);
                let a = buf[depth - 3];
                buf[depth - 3] = buf[depth - 2];
                buf[depth - 2] = tos;
                tos = a;
            }
            Inst::MinusRot => {
                need!(cur, 3);
                let c = tos;
                tos = buf[depth - 2];
                buf[depth - 2] = buf[depth - 3];
                buf[depth - 3] = c;
            }
            Inst::Nip => {
                need!(cur, 2);
                depth -= 1;
            }
            Inst::Tuck => {
                // ( a b -- b a b ), b stays in tos
                need!(cur, 2);
                if MODE < CHECK_NONE && depth >= limit {
                    return Err(VmError::StackOverflow { ip: cur });
                }
                let a = buf[depth - 2];
                buf[depth - 2] = tos;
                buf[depth - 1] = a;
                depth += 1;
            }
            Inst::TwoDup => {
                need!(cur, 2);
                let a = buf[depth - 2];
                let b = tos;
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoDrop => {
                need!(cur, 2);
                depth -= 2;
                if depth > 0 {
                    tos = buf[depth - 1];
                }
            }
            Inst::TwoSwap => {
                need!(cur, 4);
                // ( a b c d -- c d a b ), d = tos
                let c = buf[depth - 2];
                let b = buf[depth - 3];
                let a = buf[depth - 4];
                buf[depth - 4] = c;
                buf[depth - 3] = tos;
                buf[depth - 2] = a;
                tos = b;
            }
            Inst::TwoOver => {
                need!(cur, 4);
                let a = buf[depth - 4];
                let b = buf[depth - 3];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::QDup => {
                need!(cur, 1);
                if tos != 0 {
                    let v = tos;
                    push!(cur, v);
                }
            }
            Inst::Pick => {
                need!(cur, 1);
                let u = pop!(cur);
                if u < 0 || u as usize >= depth {
                    return Err(VmError::PickOutOfRange { ip: cur, index: u });
                }
                let v = if u == 0 {
                    tos
                } else {
                    buf[depth - 1 - u as usize]
                };
                push!(cur, v);
            }
            Inst::Depth => {
                let d = depth as Cell;
                push!(cur, d);
            }
            Inst::ToR => {
                let a = pop!(cur);
                rpush!(cur, a);
            }
            Inst::FromR => {
                let a = rpop!(cur);
                push!(cur, a);
            }
            Inst::RFetch => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 1];
                push!(cur, a);
            }
            Inst::TwoToR => {
                need!(cur, 2);
                let b = pop!(cur);
                let a = pop!(cur);
                rpush!(cur, a);
                rpush!(cur, b);
            }
            Inst::TwoFromR => {
                let b = rpop!(cur);
                let a = rpop!(cur);
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoRFetch => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 2];
                let b = rbuf[rsp - 1];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::Fetch => {
                need!(cur, 1);
                match machine.load_cell(tos) {
                    Some(x) => tos = x,
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: tos }),
                }
            }
            Inst::Store => {
                need!(cur, 2);
                let addr = tos;
                let x = buf[depth - 2];
                depth -= 2;
                if depth > 0 {
                    tos = buf[depth - 1];
                }
                if !machine.store_cell(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::CFetch => {
                need!(cur, 1);
                match machine.load_byte(tos) {
                    Some(x) => tos = x,
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: tos }),
                }
            }
            Inst::CStore => {
                need!(cur, 2);
                let addr = tos;
                let x = buf[depth - 2];
                depth -= 2;
                if depth > 0 {
                    tos = buf[depth - 1];
                }
                if !machine.store_byte(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::PlusStore => {
                need!(cur, 2);
                let addr = tos;
                let n = buf[depth - 2];
                depth -= 2;
                if depth > 0 {
                    tos = buf[depth - 1];
                }
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Branch(t) => ip = t as usize,
            Inst::BranchIfZero(t) => {
                let f = pop!(cur);
                if f == 0 {
                    ip = t as usize;
                }
            }
            Inst::Call(t) => {
                rpush!(cur, ip as Cell);
                ip = t as usize;
            }
            Inst::Execute => {
                let token = pop!(cur);
                if token < 0 || token as usize >= insts.len() {
                    return Err(VmError::InvalidExecutionToken { ip: cur, token });
                }
                rpush!(cur, ip as Cell);
                ip = token as usize;
            }
            Inst::Return => {
                let ret = rpop!(cur);
                if ret < 0 || ret as usize > insts.len() {
                    return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                ip = ret as usize;
            }
            Inst::Halt => {
                if depth > 0 {
                    buf[depth - 1] = tos;
                }
                machine.stack.clear();
                machine.stack.extend_from_slice(&buf[..depth]);
                machine.rstack.clear();
                machine.rstack.extend_from_slice(&rbuf[..rsp]);
                return Ok(RunStats { executed });
            }
            Inst::Nop => {}
            Inst::DoSetup => {
                need!(cur, 2);
                let start = pop!(cur);
                let limit_v = pop!(cur);
                rpush!(cur, limit_v);
                rpush!(cur, start);
            }
            Inst::QDoSetup(t) => {
                need!(cur, 2);
                let start = pop!(cur);
                let limit_v = pop!(cur);
                if limit_v == start {
                    ip = t as usize;
                } else {
                    rpush!(cur, limit_v);
                    rpush!(cur, start);
                }
            }
            Inst::LoopInc(t) => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let index = rbuf[rsp - 1].wrapping_add(1);
                let limit_v = rbuf[rsp - 2];
                if index == limit_v {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = index;
                    ip = t as usize;
                }
            }
            Inst::PlusLoopInc(t) => {
                let step = pop!(cur);
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let old = rbuf[rsp - 1];
                let new = old.wrapping_add(step);
                let limit_v = rbuf[rsp - 2];
                let crossed = if step >= 0 {
                    old < limit_v && new >= limit_v
                } else {
                    old >= limit_v && new < limit_v
                };
                if crossed {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = new;
                    ip = t as usize;
                }
            }
            Inst::LoopI => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let i = rbuf[rsp - 1];
                push!(cur, i);
            }
            Inst::LoopJ => {
                if MODE == CHECK_FULL && rsp < 4 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let j = rbuf[rsp - 3];
                push!(cur, j);
            }
            Inst::Unloop => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 2;
            }
            Inst::Emit => {
                let c = pop!(cur);
                machine.out.push(c as u8);
            }
            Inst::Dot => {
                let n = pop!(cur);
                machine.out.extend_from_slice(n.to_string().as_bytes());
                machine.out.push(b' ');
            }
            Inst::Type => {
                need!(cur, 2);
                let len = pop!(cur);
                let addr = pop!(cur);
                if len < 0 {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(byte) => machine.out.push(byte as u8),
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                    }
                }
            }
            Inst::Cr => machine.out.push(b'\n'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run as run_reference;
    use crate::program::{program_of, ProgramBuilder};

    /// Run a program on all three engines and assert identical machines.
    fn cross_validate(p: &Program) {
        let mut m_ref = Machine::with_memory(4096);
        let mut m_base = m_ref.clone();
        let mut m_tos = m_ref.clone();
        let r_ref = run_reference(p, &mut m_ref, 1_000_000);
        let r_base = run_baseline(p, &mut m_base, 1_000_000);
        let r_tos = run_tos(p, &mut m_tos, 1_000_000);
        match r_ref {
            Ok(out) => {
                let b = r_base.expect("baseline agrees on success");
                let t = r_tos.expect("tos agrees on success");
                assert_eq!(out.executed, b.executed);
                assert_eq!(out.executed, t.executed);
                assert_eq!(m_ref.stack(), m_base.stack(), "baseline stack");
                assert_eq!(m_ref.stack(), m_tos.stack(), "tos stack");
                assert_eq!(m_ref.rstack(), m_base.rstack());
                assert_eq!(m_ref.rstack(), m_tos.rstack());
                assert_eq!(m_ref.output(), m_base.output());
                assert_eq!(m_ref.output(), m_tos.output());
                assert_eq!(m_ref.memory(), m_base.memory());
                assert_eq!(m_ref.memory(), m_tos.memory());
            }
            Err(e) => {
                assert_eq!(r_base.unwrap_err(), e, "baseline error agrees");
                assert_eq!(r_tos.unwrap_err(), e, "tos error agrees");
            }
        }
    }

    #[test]
    fn engines_agree_on_shuffles() {
        cross_validate(&program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Lit(3),
            Inst::Lit(4),
            Inst::TwoSwap,
            Inst::Rot,
            Inst::Tuck,
            Inst::MinusRot,
            Inst::Over,
            Inst::Nip,
            Inst::TwoDup,
            Inst::TwoOver,
            Inst::Swap,
            Inst::Dup,
        ]));
    }

    #[test]
    fn engines_agree_on_arithmetic() {
        cross_validate(&program_of(&[
            Inst::Lit(10),
            Inst::Lit(-3),
            Inst::Div,
            Inst::Lit(10),
            Inst::Lit(-3),
            Inst::Mod,
            Inst::Lit(7),
            Inst::Lit(3),
            Inst::Xor,
            Inst::Negate,
            Inst::Abs,
            Inst::Lit(100),
            Inst::Max,
            Inst::Lit(1),
            Inst::Lshift,
        ]));
    }

    #[test]
    fn engines_agree_on_memory_and_io() {
        cross_validate(&program_of(&[
            Inst::Lit(42),
            Inst::Lit(100),
            Inst::Store,
            Inst::Lit(100),
            Inst::Fetch,
            Inst::Dot,
            Inst::Lit(65),
            Inst::Lit(101),
            Inst::CStore,
            Inst::Lit(101),
            Inst::CFetch,
            Inst::Emit,
            Inst::Cr,
            Inst::Lit(5),
            Inst::Lit(100),
            Inst::PlusStore,
            Inst::Lit(100),
            Inst::Fetch,
        ]));
    }

    #[test]
    fn engines_agree_on_loops_and_calls() {
        let mut b = ProgramBuilder::new();
        let word = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(word);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Halt);
        b.bind(word).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        cross_validate(&p);
    }

    #[test]
    fn engines_agree_on_rstack_words() {
        cross_validate(&program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::TwoToR,
            Inst::TwoRFetch,
            Inst::TwoFromR,
            Inst::Lit(9),
            Inst::ToR,
            Inst::RFetch,
            Inst::FromR,
            Inst::Add,
        ]));
    }

    #[test]
    fn engines_agree_on_qdup_and_pick() {
        cross_validate(&program_of(&[
            Inst::Lit(0),
            Inst::QDup,
            Inst::Lit(5),
            Inst::QDup,
            Inst::Lit(2),
            Inst::Pick,
            Inst::Depth,
        ]));
    }

    #[test]
    fn engines_agree_on_traps() {
        cross_validate(&program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div]));
        cross_validate(&program_of(&[Inst::Add]));
        cross_validate(&program_of(&[Inst::FromR]));
        cross_validate(&program_of(&[Inst::Lit(1 << 40), Inst::Fetch]));
        cross_validate(&program_of(&[Inst::Lit(1), Inst::Lit(9), Inst::Pick]));
    }

    #[test]
    fn tuck_is_correct_in_tos_engine() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Tuck]);
        let mut m = Machine::with_memory(64);
        run_tos(&p, &mut m, 100).unwrap();
        assert_eq!(m.stack(), &[2, 1, 2]);
    }

    #[test]
    fn check_levels_agree_on_safe_programs() {
        // a depth-safe program exercising data stack, return stack, loops
        let mut b = ProgramBuilder::new();
        let word = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(8));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(word);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Lit(5));
        b.push(Inst::ToR);
        b.push(Inst::RFetch);
        b.push(Inst::Add);
        b.push(Inst::FromR);
        b.push(Inst::Drop);
        b.push(Inst::Halt);
        b.bind(word).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();

        let mut m_ref = Machine::with_memory(4096);
        run_reference(&p, &mut m_ref, 1_000_000).unwrap();
        for checks in [Checks::Full, Checks::NoUnderflow, Checks::None] {
            let mut m_base = Machine::with_memory(4096);
            let mut m_tos = Machine::with_memory(4096);
            let mut m_exec = Machine::with_memory(4096);
            run_baseline_with_checks(&p, &mut m_base, 1_000_000, checks).unwrap();
            run_tos_with_checks(&p, &mut m_tos, 1_000_000, checks).unwrap();
            crate::exec::run_with_checks(&p, &mut m_exec, 1_000_000, checks).unwrap();
            for m in [&m_base, &m_tos, &m_exec] {
                assert_eq!(m_ref.stack(), m.stack(), "{checks:?}");
                assert_eq!(m_ref.rstack(), m.rstack(), "{checks:?}");
            }
        }
    }

    #[test]
    fn guarded_level_still_traps_on_overflow() {
        // push forever: overflow must still fire under NoUnderflow
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::Lit(1));
        b.branch(top);
        let p = b.finish().unwrap();
        for engine in [run_baseline_with_checks, run_tos_with_checks] {
            let mut m = Machine::with_memory(64);
            let err = engine(&p, &mut m, u64::MAX, Checks::NoUnderflow).unwrap_err();
            assert!(matches!(err, VmError::StackOverflow { .. }), "{err:?}");
        }
        let mut m = Machine::with_memory(64);
        let err =
            crate::exec::run_with_checks(&p, &mut m, u64::MAX, Checks::NoUnderflow).unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }), "{err:?}");
    }

    #[test]
    fn preset_stack_is_adopted() {
        let p = program_of(&[Inst::Add]);
        for engine in [run_baseline, run_tos] {
            let mut m = Machine::with_memory(64);
            m.push(30);
            m.push(12);
            engine(&p, &mut m, 100).unwrap();
            assert_eq!(m.stack(), &[42]);
        }
    }
}
