//! Programs, the label-based program builder, and basic-block analysis.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::inst::Inst;

/// A compiled virtual-machine program: a flat instruction vector with an
/// entry point and optional symbolic names for word entry points.
///
/// Programs are immutable once built; construct them with a
/// [`ProgramBuilder`] (or the Forth front end in `stackcache-forth`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: usize,
    names: BTreeMap<usize, String>,
}

impl Program {
    /// The instruction vector.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Index of the first instruction to execute.
    #[must_use]
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// The symbolic name attached to instruction index `ip`, if any.
    #[must_use]
    pub fn name_at(&self, ip: usize) -> Option<&str> {
        self.names.get(&ip).map(String::as_str)
    }

    /// All `(entry index, name)` pairs, ordered by index.
    pub fn names(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().map(|(&ip, name)| (ip, name.as_str()))
    }

    /// Compute the basic-block leaders of this program.
    ///
    /// A leader is the entry point, any branch/call target, or any
    /// instruction following a block-ending instruction (branch, call,
    /// return, halt). The result is sorted and deduplicated.
    #[must_use]
    pub fn leaders(&self) -> Vec<usize> {
        let mut leaders = vec![self.entry, 0];
        for (ip, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                leaders.push(t as usize);
            }
            if inst.ends_block() && ip + 1 < self.insts.len() {
                leaders.push(ip + 1);
            }
        }
        leaders.sort_unstable();
        leaders.dedup();
        leaders.retain(|&l| l < self.insts.len());
        leaders
    }

    /// Compute the half-open basic blocks `[start, end)` of this program.
    ///
    /// Every instruction belongs to exactly one block; blocks are returned
    /// in program order.
    #[must_use]
    pub fn basic_blocks(&self) -> Vec<(usize, usize)> {
        let leaders = self.leaders();
        let mut blocks = Vec::with_capacity(leaders.len());
        for (i, &start) in leaders.iter().enumerate() {
            let end = leaders.get(i + 1).copied().unwrap_or(self.insts.len());
            blocks.push((start, end));
        }
        blocks
    }

    /// A human-readable listing of the program.
    #[must_use]
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for (ip, inst) in self.insts.iter().enumerate() {
            if let Some(name) = self.name_at(ip) {
                let _ = writeln!(s, "{name}:");
            }
            let marker = if ip == self.entry { ">" } else { " " };
            let _ = writeln!(s, "{marker}{ip:5}  {inst}");
        }
        s
    }
}

/// A forward-reference label used by [`ProgramBuilder`].
///
/// Labels are created with [`ProgramBuilder::new_label`], referenced by
/// branch-emitting methods, and bound to the current position with
/// [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An error produced while finishing a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The unbound label.
        label: Label,
        /// Instruction index of the (first) reference.
        ip: usize,
    },
    /// A label was bound twice.
    DuplicateBind {
        /// The label bound twice.
        label: Label,
    },
    /// The entry point does not refer to an instruction.
    InvalidEntry {
        /// The offending entry index.
        entry: usize,
    },
    /// An explicit (non-label) branch target is out of range.
    InvalidTarget {
        /// Instruction index of the branch.
        ip: usize,
        /// The offending target.
        target: u32,
    },
    /// The program is longer than `u32::MAX` instructions.
    TooLong,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { label, ip } => {
                write!(
                    f,
                    "label {label:?} referenced at instruction {ip} was never bound"
                )
            }
            BuildError::DuplicateBind { label } => write!(f, "label {label:?} bound twice"),
            BuildError::InvalidEntry { entry } => write!(f, "entry point {entry} out of range"),
            BuildError::InvalidTarget { ip, target } => {
                write!(f, "branch target {target} at instruction {ip} out of range")
            }
            BuildError::TooLong => write!(f, "program exceeds u32::MAX instructions"),
        }
    }
}

impl Error for BuildError {}

/// Builds [`Program`]s with symbolic labels and automatic back-patching.
///
/// # Examples
///
/// Compute `|x|` with a conditional branch:
///
/// ```
/// use stackcache_vm::{Inst, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.new_label();
/// b.push(Inst::Dup);
/// b.push(Inst::ZeroLt);
/// b.branch_if_zero(done);
/// b.push(Inst::Negate);
/// b.bind(done)?;
/// b.push(Inst::Halt);
/// let program = b.finish()?;
/// assert_eq!(program.len(), 5);
/// # Ok::<(), stackcache_vm::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    entry: usize,
    names: BTreeMap<usize, String>,
    /// label -> bound position
    bound: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting patching
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// An empty builder with entry point 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current position: the index the next pushed instruction will get.
    #[must_use]
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Append an instruction; returns its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Append several instructions.
    pub fn extend<I: IntoIterator<Item = Inst>>(&mut self, insts: I) {
        self.insts.extend(insts);
    }

    /// Create a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateBind`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), BuildError> {
        let slot = &mut self.bound[label.0];
        if slot.is_some() {
            return Err(BuildError::DuplicateBind { label });
        }
        *slot = Some(self.insts.len());
        Ok(())
    }

    /// Append `branch` to `label` (patched when the label is bound).
    pub fn branch(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::Branch(u32::MAX))
    }

    /// Append `?branch` to `label`.
    pub fn branch_if_zero(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::BranchIfZero(u32::MAX))
    }

    /// Append `call` to `label`.
    pub fn call(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::Call(u32::MAX))
    }

    /// Append `(?do)` branching to `label` when the loop is skipped.
    pub fn qdo(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::QDoSetup(u32::MAX))
    }

    /// Append `(loop)` branching back to `label`.
    pub fn loop_inc(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::LoopInc(u32::MAX))
    }

    /// Append `(+loop)` branching back to `label`.
    pub fn plus_loop_inc(&mut self, label: Label) -> usize {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::PlusLoopInc(u32::MAX))
    }

    /// Set the entry point to the current position.
    pub fn entry_here(&mut self) {
        self.entry = self.insts.len();
    }

    /// Set the entry point to an explicit index.
    pub fn set_entry(&mut self, entry: usize) {
        self.entry = entry;
    }

    /// Attach a symbolic name to the current position (word entry point).
    pub fn name_here(&mut self, name: impl Into<String>) {
        self.names.insert(self.insts.len(), name.into());
    }

    /// Attach a symbolic name to an explicit instruction index (for
    /// builders that copy already-emitted code, like the Forth image
    /// assembler naming dictionary entries).
    pub fn name_at(&mut self, ip: usize, name: impl Into<String>) {
        self.names.insert(ip, name.into());
    }

    /// Resolve labels and produce the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a referenced label is unbound, the entry
    /// point or an explicit target is out of range, or the program is too
    /// long.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        if u32::try_from(self.insts.len()).is_err() {
            return Err(BuildError::TooLong);
        }
        for (ip, label) in &self.fixups {
            let Some(pos) = self.bound[label.0] else {
                return Err(BuildError::UnboundLabel {
                    label: *label,
                    ip: *ip,
                });
            };
            let target = u32::try_from(pos).map_err(|_| BuildError::TooLong)?;
            self.insts[*ip] = self.insts[*ip].with_target(target);
        }
        // Validate all targets, including explicitly provided ones.
        for (ip, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                if t as usize >= self.insts.len() {
                    return Err(BuildError::InvalidTarget { ip, target: t });
                }
            }
        }
        if self.entry >= self.insts.len() && !(self.entry == 0 && self.insts.is_empty()) {
            return Err(BuildError::InvalidEntry { entry: self.entry });
        }
        Ok(Program {
            insts: self.insts,
            entry: self.entry,
            names: self.names,
        })
    }
}

/// Build a straight-line program from instructions, appending `halt`.
///
/// Convenience for tests and examples.
///
/// # Panics
///
/// Panics if the instructions contain invalid branch targets (they are
/// validated by the builder).
#[must_use]
pub fn program_of(insts: &[Inst]) -> Program {
    let mut b = ProgramBuilder::new();
    b.extend(insts.iter().copied());
    b.push(Inst::Halt);
    b.finish().expect("straight-line program is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let out = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::Dup);
        b.branch_if_zero(out);
        b.push(Inst::OneMinus);
        b.branch(top);
        b.bind(out).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.insts()[1], Inst::BranchIfZero(4));
        assert_eq!(p.insts()[3], Inst::Branch(0));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.branch(l);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::UnboundLabel { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn duplicate_bind_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l).unwrap();
        assert!(matches!(b.bind(l), Err(BuildError::DuplicateBind { .. })));
    }

    #[test]
    fn invalid_explicit_target_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Branch(10));
        b.push(Inst::Halt);
        assert!(matches!(
            b.finish(),
            Err(BuildError::InvalidTarget { ip: 0, target: 10 })
        ));
    }

    #[test]
    fn invalid_entry_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        b.set_entry(5);
        assert!(matches!(
            b.finish(),
            Err(BuildError::InvalidEntry { entry: 5 })
        ));
    }

    #[test]
    fn basic_blocks_partition_the_program() {
        // 0: lit 1
        // 1: ?branch -> 4
        // 2: lit 2
        // 3: branch -> 5
        // 4: lit 3
        // 5: halt
        let mut b = ProgramBuilder::new();
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.push(Inst::Lit(1));
        b.branch_if_zero(else_l);
        b.push(Inst::Lit(2));
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::Lit(3));
        b.bind(end_l).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.basic_blocks(), vec![(0, 2), (2, 4), (4, 5), (5, 6)]);
        // blocks tile the program
        let blocks = p.basic_blocks();
        assert_eq!(blocks.first().unwrap().0, 0);
        assert_eq!(blocks.last().unwrap().1, p.len());
        for w in blocks.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn names_and_listing() {
        let mut b = ProgramBuilder::new();
        b.name_here("main");
        b.push(Inst::Lit(42));
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        assert_eq!(p.name_at(0), Some("main"));
        assert_eq!(p.names().count(), 1);
        let listing = p.listing();
        assert!(listing.contains("main:"));
        assert!(listing.contains("lit 42"));
    }

    #[test]
    fn program_of_appends_halt() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.insts()[3], Inst::Halt);
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn empty_program_is_allowed() {
        let p = ProgramBuilder::new().finish().unwrap();
        assert!(p.is_empty());
    }
}
