//! Profile-guided superinstructions and quickening (the tier above
//! Section 2.2's peephole pass).
//!
//! The paper removes dispatch *cost* with stack caching; the next lever —
//! per the speculative-staging line of work the peephole's module docs
//! allude to — is removing dispatch *count*: combine hot instruction
//! sequences into one **superinstruction** executed by a single handler.
//! This module implements that as a layer *above* the instruction set:
//!
//! * a [`FusionPlan`] names the opcode sequences worth fusing — mined
//!   from a dynamic profile ([`FusionPlan::from_hot_sequences`], fed by
//!   the observability crate's sequence profiler) or from static
//!   occurrence counts ([`FusionPlan::static_default`]);
//! * [`fuse`] marks every occurrence of a planned sequence in a program
//!   as one **fused group**, never crossing a basic-block leader, and
//!   returns a [`FusedProgram`]: the *unchanged* program plus a dispatch
//!   map;
//! * [`run_fused`] executes a fused program with **one dispatch per
//!   group** — the group's instructions run back to back inside a single
//!   handler activation;
//! * [`Quickened`] + [`run_quickened`] are the dynamic variant: every
//!   site starts unfused, and the dispatch map is rewritten **in place**
//!   (atomically, idempotently) the first time a fusable site executes —
//!   quickening in the classic sense, with the rewrite confined to the
//!   dispatch map so the program text is never touched.
//!
//! Because the underlying [`Program`] is byte-for-byte unchanged,
//! everything proven about it still holds under fusion: depth/effect
//! metadata, the abstract interpreter's safety proofs, and the cache
//! FSM's per-instruction transitions all apply as-is. Only the dispatch
//! *count* changes, which the counting regimes in `stackcache-core`
//! measure separately.
//!
//! Sequences never contain control flow (branches, calls, returns,
//! halts, `execute`) and never extend across a leader, so a fused group
//! is always executed from its first instruction — control cannot enter
//! a group's interior.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::checks::{Checks, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};
use crate::error::VmError;
use crate::inst::{Cell, Inst, CELL_BYTES, FALSE, TRUE};
use crate::machine::Machine;
use crate::program::Program;

/// Longest opcode sequence a plan may fuse.
pub const MAX_SEQ: usize = 8;

/// Default number of sequences a derived plan keeps (top-k).
pub const DEFAULT_TOP_K: usize = 24;

/// `true` if `inst` may appear inside a fused group: straight-line
/// instructions only — no branch targets, no block enders, no `execute`
/// (its jump target is dynamic).
#[must_use]
pub fn fusable(inst: &Inst) -> bool {
    inst.target().is_none() && !inst.ends_block() && !matches!(inst, Inst::Execute)
}

/// Per-opcode fusability, indexed by [`Inst::opcode`].
fn fusable_opcodes() -> [bool; Inst::OPCODE_COUNT] {
    let mut table = [false; Inst::OPCODE_COUNT];
    for rep in Inst::all() {
        table[rep.opcode() as usize] = fusable(&rep);
    }
    table
}

/// The display name of an opcode (via its representative instruction).
fn opcode_name(op: u8) -> &'static str {
    Inst::all().nth(op as usize).map_or("?", |rep| rep.name())
}

/// A validated set of opcode sequences worth fusing, longest first.
///
/// Plans are pure data: derive one from a profile, serialize it as a
/// hash ([`FusionPlan::hash64`]) for cache keys, apply it to any program
/// with [`fuse`]. Sequences are stored longest-first so greedy matching
/// prefers the biggest dispatch saving at every site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionPlan {
    /// Opcode sequences ([`Inst::opcode`] values), each `2..=MAX_SEQ`
    /// long and containing only fusable opcodes.
    seqs: Vec<Vec<u8>>,
}

impl FusionPlan {
    /// The empty plan: [`fuse`] with it leaves every site unfused.
    #[must_use]
    pub fn empty() -> Self {
        FusionPlan::default()
    }

    /// Keep the top `k` of `hot` by dispatch saving (`count × (len−1)`),
    /// dropping candidates that are too short, too long, or contain a
    /// non-fusable opcode. `hot` pairs an opcode sequence with its
    /// (dynamic or static) occurrence count.
    #[must_use]
    pub fn from_hot_sequences(hot: &[(Vec<u8>, u64)], k: usize) -> Self {
        let fusable = fusable_opcodes();
        let mut ranked: Vec<(&Vec<u8>, u64)> = hot
            .iter()
            .filter(|(seq, _)| {
                (2..=MAX_SEQ).contains(&seq.len())
                    && seq
                        .iter()
                        .all(|&op| fusable.get(op as usize).copied().unwrap_or(false))
            })
            .map(|(seq, count)| (seq, count * (seq.len() as u64 - 1)))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ranked.truncate(k);
        let mut seqs: Vec<Vec<u8>> = ranked.into_iter().map(|(s, _)| s.clone()).collect();
        seqs.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        seqs.dedup();
        FusionPlan { seqs }
    }

    /// A deterministic plan derived from the program text alone: count
    /// every fusable opcode sequence of length `2..=4` that occurs within
    /// a basic block, rank by static saving, keep the top `k`.
    ///
    /// This is the plan engines use when no dynamic profile is supplied —
    /// identical programs always derive identical plans, so a cache may
    /// key on the program alone.
    #[must_use]
    pub fn static_default(program: &Program, k: usize) -> Self {
        use std::collections::HashMap;
        const STATIC_MAX: usize = 4;
        let insts = program.insts();
        let leader = leader_set(program);
        let fusable = fusable_opcodes();
        let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
        for start in 0..insts.len() {
            for len in 2..=STATIC_MAX.min(insts.len() - start) {
                let window = &insts[start..start + len];
                if (start + 1..start + len).any(|j| leader[j])
                    || window.iter().any(|i| !fusable[i.opcode() as usize])
                {
                    break;
                }
                let seq: Vec<u8> = window.iter().map(Inst::opcode).collect();
                *counts.entry(seq).or_insert(0) += 1;
            }
        }
        let hot: Vec<(Vec<u8>, u64)> = counts.into_iter().collect();
        FusionPlan::from_hot_sequences(&hot, k)
    }

    /// The planned sequences, longest first.
    #[must_use]
    pub fn seqs(&self) -> &[Vec<u8>] {
        &self.seqs
    }

    /// Number of planned sequences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// `true` if the plan fuses nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// A stable 64-bit content hash (FNV-1a over lengths and opcodes),
    /// usable as a cache-key component. The empty plan hashes to the FNV
    /// offset basis.
    #[must_use]
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut step = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for seq in &self.seqs {
            step(seq.len() as u8);
            for &op in seq {
                step(op);
            }
        }
        h
    }

    /// Human-readable sequence names, e.g. `"lit+dup+*"`.
    #[must_use]
    pub fn describe(&self) -> Vec<String> {
        self.seqs
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|&op| opcode_name(op))
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect()
    }
}

/// `is_leader[ip]` for every instruction index (entry, branch targets,
/// and fall-throughs of block enders).
fn leader_set(program: &Program) -> Vec<bool> {
    let mut leader = vec![false; program.len() + 1];
    for ip in program.leaders() {
        leader[ip] = true;
    }
    leader
}

/// A program plus its fused dispatch map: `group_len[ip]` instructions
/// execute under the single dispatch at `ip` (1 for unfused sites).
///
/// The program itself is unchanged — see the module docs for why that
/// keeps every proof and counting regime valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedProgram {
    program: Program,
    group_len: Vec<u8>,
}

/// Apply `plan` to `program`: greedily mark the longest planned sequence
/// at every site, left to right, never crossing a basic-block leader and
/// never overlapping a previous group.
#[must_use]
pub fn fuse(program: &Program, plan: &FusionPlan) -> FusedProgram {
    let insts = program.insts();
    let leader = leader_set(program);
    let mut group_len = vec![1u8; insts.len()];
    let mut ip = 0;
    while ip < insts.len() {
        let mut best = 1usize;
        // plan sequences are longest-first: first match wins
        for seq in plan.seqs() {
            let len = seq.len();
            if ip + len <= insts.len()
                && (ip + 1..ip + len).all(|j| !leader[j])
                && seq
                    .iter()
                    .zip(&insts[ip..ip + len])
                    .all(|(&op, inst)| inst.opcode() == op)
            {
                best = len;
                break;
            }
        }
        group_len[ip] = best as u8;
        ip += best;
    }
    FusedProgram {
        program: program.clone(),
        group_len,
    }
}

impl FusedProgram {
    /// The underlying (unchanged) program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The dispatch map: instructions executed per dispatch at each site.
    #[must_use]
    pub fn group_len(&self) -> &[u8] {
        &self.group_len
    }

    /// Sites that begin a fused group (length ≥ 2).
    #[must_use]
    pub fn fused_sites(&self) -> usize {
        self.group_len.iter().filter(|&&l| l > 1).count()
    }

    /// Static dispatch sites after fusion (one per group).
    #[must_use]
    pub fn dispatch_sites(&self) -> usize {
        let mut sites = 0;
        let mut ip = 0;
        while ip < self.group_len.len() {
            sites += 1;
            ip += self.group_len[ip].max(1) as usize;
        }
        sites
    }
}

/// Outcome of a fused or quickened run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedStats {
    /// Original-program instructions executed (including the final
    /// `halt`) — identical to the reference interpreter's count.
    pub executed: u64,
    /// Handler dispatches performed (one per fused group).
    pub dispatches: u64,
    /// Dispatch-map sites rewritten by quickening during this run
    /// (always 0 for [`run_fused`]).
    pub quickened: u64,
}

/// The quickening dynamic variant: a fused program whose dispatch map is
/// discovered at run time.
///
/// Every site starts unfused (`map[ip] == 1`). The first time execution
/// dispatches a site the plan fuses, the executor rewrites that map slot
/// in place to the fused length — subsequent executions dispatch once
/// per group. The rewrite is a relaxed atomic store of a value derived
/// only from the immutable [`FusedProgram`], so concurrent executions
/// racing on one site all write the same byte: quickening is idempotent
/// by construction, and re-running (or re-admitting) an already
/// quickened program rewrites nothing.
#[derive(Debug)]
pub struct Quickened {
    fused: FusedProgram,
    map: Vec<AtomicU8>,
}

impl Quickened {
    /// A quickening wrapper with every site initially unfused.
    #[must_use]
    pub fn new(fused: FusedProgram) -> Self {
        let map = (0..fused.group_len().len())
            .map(|_| AtomicU8::new(1))
            .collect();
        Quickened { fused, map }
    }

    /// The fusion this program quickens toward.
    #[must_use]
    pub fn fused(&self) -> &FusedProgram {
        &self.fused
    }

    /// Sites quickened so far (monotone across runs; bounded by
    /// [`FusedProgram::fused_sites`]).
    #[must_use]
    pub fn quickened_sites(&self) -> usize {
        self.map
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) > 1)
            .count()
    }

    /// Forget all quickening (every site unfused again).
    pub fn reset(&self) {
        for slot in &self.map {
            slot.store(1, Ordering::Relaxed);
        }
    }
}

/// Run a fused program with full checks: one dispatch per fused group,
/// observably identical to the reference interpreter.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter.
pub fn run_fused(
    fused: &FusedProgram,
    machine: &mut Machine,
    fuel: u64,
) -> Result<FusedStats, VmError> {
    run_fused_with_checks(fused, machine, fuel, Checks::Full)
}

/// [`run_fused`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; the proof applies because the underlying program
/// is unchanged (see the module docs).
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter (minus the
/// trap classes the chosen level elides).
pub fn run_fused_with_checks(
    fused: &FusedProgram,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<FusedStats, VmError> {
    match checks {
        Checks::Full => run_group_mode::<CHECK_FULL>(fused, None, machine, fuel),
        Checks::NoUnderflow => run_group_mode::<CHECK_NO_UNDERFLOW>(fused, None, machine, fuel),
        Checks::None => run_group_mode::<CHECK_NONE>(fused, None, machine, fuel),
    }
}

/// Run a quickening program with full checks: sites rewrite themselves
/// to their fused form after first execution.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter.
pub fn run_quickened(
    quick: &Quickened,
    machine: &mut Machine,
    fuel: u64,
) -> Result<FusedStats, VmError> {
    run_quickened_with_checks(quick, machine, fuel, Checks::Full)
}

/// [`run_quickened`] at a selectable [`Checks`] level.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter (minus the
/// trap classes the chosen level elides).
pub fn run_quickened_with_checks(
    quick: &Quickened,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<FusedStats, VmError> {
    match checks {
        Checks::Full => run_group_mode::<CHECK_FULL>(&quick.fused, Some(&quick.map), machine, fuel),
        Checks::NoUnderflow => {
            run_group_mode::<CHECK_NO_UNDERFLOW>(&quick.fused, Some(&quick.map), machine, fuel)
        }
        Checks::None => run_group_mode::<CHECK_NONE>(&quick.fused, Some(&quick.map), machine, fuel),
    }
}

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// The group-dispatch interpreter: the baseline interpreter's semantics
/// (Fig. 11 stack discipline, identical trap behaviour) with the outer
/// loop dispatching once per fused group. With `quick` set, the dispatch
/// map is read through the quickening slots and rewritten after first
/// execution.
#[allow(clippy::too_many_lines)]
fn run_group_mode<const MODE: u8>(
    fused: &FusedProgram,
    quick: Option<&[AtomicU8]>,
    machine: &mut Machine,
    fuel: u64,
) -> Result<FusedStats, VmError> {
    let insts = fused.program.insts();
    let group_len = &fused.group_len;
    let limit = machine.stack_limit.min(1 << 20);
    let rlimit = machine.rstack_limit.min(1 << 20);
    let mut buf = vec![0 as Cell; limit];
    let mut rbuf = vec![0 as Cell; rlimit];
    let mut sp = machine.stack.len();
    buf[..sp].copy_from_slice(&machine.stack);
    let mut rsp = machine.rstack.len();
    rbuf[..rsp].copy_from_slice(&machine.rstack);

    let mut ip = fused.program.entry();
    let mut stats = FusedStats {
        executed: 0,
        dispatches: 0,
        quickened: 0,
    };

    macro_rules! pop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && sp == 0 {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
            sp -= 1;
            buf[sp]
        }};
    }
    macro_rules! push {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && sp >= limit {
                return Err(VmError::StackOverflow { ip: $cur });
            }
            buf[sp] = $v;
            sp += 1;
        }};
    }
    macro_rules! need {
        ($cur:expr, $n:expr) => {
            if MODE == CHECK_FULL && sp < $n {
                return Err(VmError::StackUnderflow { ip: $cur });
            }
        };
    }
    macro_rules! rpop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && rsp == 0 {
                return Err(VmError::ReturnStackUnderflow { ip: $cur });
            }
            rsp -= 1;
            rbuf[rsp]
        }};
    }
    macro_rules! rpush {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && rsp >= rlimit {
                return Err(VmError::ReturnStackOverflow { ip: $cur });
            }
            rbuf[rsp] = $v;
            rsp += 1;
        }};
    }
    macro_rules! binop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 2);
            let b = buf[sp - 1];
            let a = buf[sp - 2];
            buf[sp - 2] = $f(a, b);
            sp -= 1;
        }};
    }
    macro_rules! unop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 1);
            buf[sp - 1] = $f(buf[sp - 1]);
        }};
    }

    loop {
        // ---- one dispatch per group -----------------------------------
        // same trap precedence as the baseline: fuel before fetch
        if stats.executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        if ip >= insts.len() {
            return Err(VmError::InstructionOutOfBounds { ip });
        }
        let glen = match quick {
            Some(map) => {
                let current = map[ip].load(Ordering::Relaxed);
                let planned = group_len[ip];
                if current == 1 && planned > 1 {
                    // quicken: rewrite this site in place after its first
                    // execution (the store is idempotent — every racer
                    // derives the same byte from the immutable plan)
                    map[ip].store(planned, Ordering::Relaxed);
                    stats.quickened += 1;
                }
                current as usize
            }
            None => group_len[ip] as usize,
        };
        stats.dispatches += 1;

        // ---- the single handler executes the whole group --------------
        for _ in 0..glen {
            if stats.executed >= fuel {
                return Err(VmError::FuelExhausted { ip });
            }
            let inst = insts[ip];
            stats.executed += 1;
            let cur = ip;
            ip += 1;
            match inst {
                Inst::Lit(n) => push!(cur, n),
                Inst::Add => binop!(cur, |a: Cell, b: Cell| a.wrapping_add(b)),
                Inst::Sub => binop!(cur, |a: Cell, b: Cell| a.wrapping_sub(b)),
                Inst::Mul => binop!(cur, |a: Cell, b: Cell| a.wrapping_mul(b)),
                Inst::Div => {
                    need!(cur, 2);
                    let b = buf[sp - 1];
                    let a = buf[sp - 2];
                    if b == 0 {
                        return Err(VmError::DivisionByZero { ip: cur });
                    }
                    buf[sp - 2] = a.div_euclid(b);
                    sp -= 1;
                }
                Inst::Mod => {
                    need!(cur, 2);
                    let b = buf[sp - 1];
                    let a = buf[sp - 2];
                    if b == 0 {
                        return Err(VmError::DivisionByZero { ip: cur });
                    }
                    buf[sp - 2] = a.rem_euclid(b);
                    sp -= 1;
                }
                Inst::And => binop!(cur, |a: Cell, b: Cell| a & b),
                Inst::Or => binop!(cur, |a: Cell, b: Cell| a | b),
                Inst::Xor => binop!(cur, |a: Cell, b: Cell| a ^ b),
                Inst::Lshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) << (b as u64 & 63))
                    as Cell),
                Inst::Rshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63))
                    as Cell),
                Inst::Min => binop!(cur, |a: Cell, b: Cell| a.min(b)),
                Inst::Max => binop!(cur, |a: Cell, b: Cell| a.max(b)),
                Inst::Eq => binop!(cur, |a, b| flag(a == b)),
                Inst::Ne => binop!(cur, |a, b| flag(a != b)),
                Inst::Lt => binop!(cur, |a, b| flag(a < b)),
                Inst::Gt => binop!(cur, |a, b| flag(a > b)),
                Inst::Le => binop!(cur, |a, b| flag(a <= b)),
                Inst::Ge => binop!(cur, |a, b| flag(a >= b)),
                Inst::ULt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) < (b as u64))),
                Inst::UGt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) > (b as u64))),
                Inst::Negate => unop!(cur, |a: Cell| a.wrapping_neg()),
                Inst::Invert => unop!(cur, |a: Cell| !a),
                Inst::Abs => unop!(cur, |a: Cell| a.wrapping_abs()),
                Inst::OnePlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
                Inst::OneMinus => unop!(cur, |a: Cell| a.wrapping_sub(1)),
                Inst::TwoStar => unop!(cur, |a: Cell| a.wrapping_mul(2)),
                Inst::TwoSlash => unop!(cur, |a: Cell| a >> 1),
                Inst::ZeroEq => unop!(cur, |a| flag(a == 0)),
                Inst::ZeroNe => unop!(cur, |a| flag(a != 0)),
                Inst::ZeroLt => unop!(cur, |a| flag(a < 0)),
                Inst::ZeroGt => unop!(cur, |a| flag(a > 0)),
                Inst::CellPlus => unop!(cur, |a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
                Inst::Cells => unop!(cur, |a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
                Inst::CharPlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
                Inst::Dup => {
                    need!(cur, 1);
                    let a = buf[sp - 1];
                    push!(cur, a);
                }
                Inst::Drop => {
                    need!(cur, 1);
                    sp -= 1;
                }
                Inst::Swap => {
                    need!(cur, 2);
                    buf.swap(sp - 1, sp - 2);
                }
                Inst::Over => {
                    need!(cur, 2);
                    let a = buf[sp - 2];
                    push!(cur, a);
                }
                Inst::Rot => {
                    need!(cur, 3);
                    let a = buf[sp - 3];
                    buf[sp - 3] = buf[sp - 2];
                    buf[sp - 2] = buf[sp - 1];
                    buf[sp - 1] = a;
                }
                Inst::MinusRot => {
                    need!(cur, 3);
                    let c = buf[sp - 1];
                    buf[sp - 1] = buf[sp - 2];
                    buf[sp - 2] = buf[sp - 3];
                    buf[sp - 3] = c;
                }
                Inst::Nip => {
                    need!(cur, 2);
                    buf[sp - 2] = buf[sp - 1];
                    sp -= 1;
                }
                Inst::Tuck => {
                    need!(cur, 2);
                    let b = buf[sp - 1];
                    let a = buf[sp - 2];
                    buf[sp - 2] = b;
                    buf[sp - 1] = a;
                    push!(cur, b);
                }
                Inst::TwoDup => {
                    need!(cur, 2);
                    let b = buf[sp - 1];
                    let a = buf[sp - 2];
                    push!(cur, a);
                    push!(cur, b);
                }
                Inst::TwoDrop => {
                    need!(cur, 2);
                    sp -= 2;
                }
                Inst::TwoSwap => {
                    need!(cur, 4);
                    buf.swap(sp - 4, sp - 2);
                    buf.swap(sp - 3, sp - 1);
                }
                Inst::TwoOver => {
                    need!(cur, 4);
                    let a = buf[sp - 4];
                    let b = buf[sp - 3];
                    push!(cur, a);
                    push!(cur, b);
                }
                Inst::QDup => {
                    need!(cur, 1);
                    let a = buf[sp - 1];
                    if a != 0 {
                        push!(cur, a);
                    }
                }
                Inst::Pick => {
                    need!(cur, 1);
                    let u = buf[sp - 1];
                    sp -= 1;
                    if u < 0 || u as usize >= sp {
                        return Err(VmError::PickOutOfRange { ip: cur, index: u });
                    }
                    let v = buf[sp - 1 - u as usize];
                    push!(cur, v);
                }
                Inst::Depth => {
                    let d = sp as Cell;
                    push!(cur, d);
                }
                Inst::ToR => {
                    let a = pop!(cur);
                    rpush!(cur, a);
                }
                Inst::FromR => {
                    let a = rpop!(cur);
                    push!(cur, a);
                }
                Inst::RFetch => {
                    if MODE == CHECK_FULL && rsp == 0 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let a = rbuf[rsp - 1];
                    push!(cur, a);
                }
                Inst::TwoToR => {
                    need!(cur, 2);
                    let b = buf[sp - 1];
                    let a = buf[sp - 2];
                    sp -= 2;
                    rpush!(cur, a);
                    rpush!(cur, b);
                }
                Inst::TwoFromR => {
                    let b = rpop!(cur);
                    let a = rpop!(cur);
                    push!(cur, a);
                    push!(cur, b);
                }
                Inst::TwoRFetch => {
                    if MODE == CHECK_FULL && rsp < 2 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let a = rbuf[rsp - 2];
                    let b = rbuf[rsp - 1];
                    push!(cur, a);
                    push!(cur, b);
                }
                Inst::Fetch => {
                    need!(cur, 1);
                    let addr = buf[sp - 1];
                    match machine.load_cell(addr) {
                        Some(x) => buf[sp - 1] = x,
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                    }
                }
                Inst::Store => {
                    need!(cur, 2);
                    let addr = buf[sp - 1];
                    let x = buf[sp - 2];
                    sp -= 2;
                    if !machine.store_cell(addr, x) {
                        return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                    }
                }
                Inst::CFetch => {
                    need!(cur, 1);
                    let addr = buf[sp - 1];
                    match machine.load_byte(addr) {
                        Some(x) => buf[sp - 1] = x,
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                    }
                }
                Inst::CStore => {
                    need!(cur, 2);
                    let addr = buf[sp - 1];
                    let x = buf[sp - 2];
                    sp -= 2;
                    if !machine.store_byte(addr, x) {
                        return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                    }
                }
                Inst::PlusStore => {
                    need!(cur, 2);
                    let addr = buf[sp - 1];
                    let n = buf[sp - 2];
                    sp -= 2;
                    match machine.load_cell(addr) {
                        Some(x) => {
                            machine.store_cell(addr, x.wrapping_add(n));
                        }
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                    }
                }
                Inst::Branch(t) => ip = t as usize,
                Inst::BranchIfZero(t) => {
                    let f = pop!(cur);
                    if f == 0 {
                        ip = t as usize;
                    }
                }
                Inst::Call(t) => {
                    rpush!(cur, ip as Cell);
                    ip = t as usize;
                }
                Inst::Execute => {
                    let token = pop!(cur);
                    if token < 0 || token as usize >= insts.len() {
                        return Err(VmError::InvalidExecutionToken { ip: cur, token });
                    }
                    rpush!(cur, ip as Cell);
                    ip = token as usize;
                }
                Inst::Return => {
                    let ret = rpop!(cur);
                    if ret < 0 || ret as usize > insts.len() {
                        return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                    }
                    ip = ret as usize;
                }
                Inst::Halt => {
                    machine.stack.clear();
                    machine.stack.extend_from_slice(&buf[..sp]);
                    machine.rstack.clear();
                    machine.rstack.extend_from_slice(&rbuf[..rsp]);
                    return Ok(stats);
                }
                Inst::Nop => {}
                Inst::DoSetup => {
                    need!(cur, 2);
                    let start = buf[sp - 1];
                    let limit_v = buf[sp - 2];
                    sp -= 2;
                    rpush!(cur, limit_v);
                    rpush!(cur, start);
                }
                Inst::QDoSetup(t) => {
                    need!(cur, 2);
                    let start = buf[sp - 1];
                    let limit_v = buf[sp - 2];
                    sp -= 2;
                    if limit_v == start {
                        ip = t as usize;
                    } else {
                        rpush!(cur, limit_v);
                        rpush!(cur, start);
                    }
                }
                Inst::LoopInc(t) => {
                    if MODE == CHECK_FULL && rsp < 2 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let index = rbuf[rsp - 1].wrapping_add(1);
                    let limit_v = rbuf[rsp - 2];
                    if index == limit_v {
                        rsp -= 2;
                    } else {
                        rbuf[rsp - 1] = index;
                        ip = t as usize;
                    }
                }
                Inst::PlusLoopInc(t) => {
                    let step = pop!(cur);
                    if MODE == CHECK_FULL && rsp < 2 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let old = rbuf[rsp - 1];
                    let new = old.wrapping_add(step);
                    let limit_v = rbuf[rsp - 2];
                    let crossed = if step >= 0 {
                        old < limit_v && new >= limit_v
                    } else {
                        old >= limit_v && new < limit_v
                    };
                    if crossed {
                        rsp -= 2;
                    } else {
                        rbuf[rsp - 1] = new;
                        ip = t as usize;
                    }
                }
                Inst::LoopI => {
                    if MODE == CHECK_FULL && rsp == 0 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let i = rbuf[rsp - 1];
                    push!(cur, i);
                }
                Inst::LoopJ => {
                    if MODE == CHECK_FULL && rsp < 4 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    let j = rbuf[rsp - 3];
                    push!(cur, j);
                }
                Inst::Unloop => {
                    if MODE == CHECK_FULL && rsp < 2 {
                        return Err(VmError::ReturnStackUnderflow { ip: cur });
                    }
                    rsp -= 2;
                }
                Inst::Emit => {
                    let c = pop!(cur);
                    machine.out.push(c as u8);
                }
                Inst::Dot => {
                    let n = pop!(cur);
                    machine.out.extend_from_slice(n.to_string().as_bytes());
                    machine.out.push(b' ');
                }
                Inst::Type => {
                    need!(cur, 2);
                    let len = buf[sp - 1];
                    let addr = buf[sp - 2];
                    sp -= 2;
                    if len < 0 {
                        return Err(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                    }
                    for i in 0..len {
                        let a = addr.wrapping_add(i);
                        match machine.load_byte(a) {
                            Some(byte) => machine.out.push(byte as u8),
                            None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                        }
                    }
                }
                Inst::Cr => machine.out.push(b'\n'),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::program::{program_of, ProgramBuilder};

    /// Reference-run `p`, fused-run `p` under `plan`, assert observable
    /// equivalence, and return the fused stats.
    fn check_plan(p: &Program, plan: &FusionPlan) -> FusedStats {
        let fused = fuse(p, plan);
        let mut m1 = Machine::with_memory(4096);
        let r1 = exec::run(p, &mut m1, 1_000_000);
        let mut m2 = Machine::with_memory(4096);
        let r2 = run_fused(&fused, &mut m2, 1_000_000);
        let stats = match (&r1, &r2) {
            (Ok(out), Ok(stats)) => {
                assert_eq!(m1.stack(), m2.stack());
                assert_eq!(m1.rstack(), m2.rstack());
                assert_eq!(m1.output(), m2.output());
                assert_eq!(m1.memory(), m2.memory());
                assert_eq!(out.executed, stats.executed, "executed counts differ");
                *stats
            }
            (Err(a), Err(b)) => {
                assert_eq!(format!("{a}"), format!("{b}"), "trap mismatch");
                FusedStats {
                    executed: 0,
                    dispatches: 0,
                    quickened: 0,
                }
            }
            (a, b) => panic!("behaviour diverged: {a:?} vs {b:?}"),
        };
        // the quickened variant converges to the same behaviour
        let quick = Quickened::new(fuse(p, plan));
        let mut m3 = Machine::with_memory(4096);
        let r3 = run_quickened(&quick, &mut m3, 1_000_000);
        match (&r1, &r3) {
            (Ok(_), Ok(_)) => {
                assert_eq!(m1.stack(), m3.stack());
                assert_eq!(m1.output(), m3.output());
                assert_eq!(m1.memory(), m3.memory());
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!("quickened diverged: {a:?} vs {b:?}"),
        }
        stats
    }

    fn seq(insts: &[Inst]) -> Vec<u8> {
        insts.iter().map(Inst::opcode).collect()
    }

    #[test]
    fn plans_reject_control_flow_and_bad_lengths() {
        let hot = vec![
            (seq(&[Inst::Lit(0), Inst::Dup]), 100),
            (seq(&[Inst::Lit(0), Inst::Branch(0)]), 900), // control flow
            (seq(&[Inst::Lit(0)]), 900),                  // too short
            (seq(&[Inst::Dup; 9]), 900),                  // too long
            (seq(&[Inst::Lit(0), Inst::Execute]), 900),   // dynamic jump
            (seq(&[Inst::Dup, Inst::Call(0)]), 900),      // call ends block
        ];
        let plan = FusionPlan::from_hot_sequences(&hot, 10);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.seqs()[0], seq(&[Inst::Lit(0), Inst::Dup]));
    }

    #[test]
    fn plans_rank_by_dispatch_saving_and_prefer_longer_matches() {
        let pair = seq(&[Inst::Dup, Inst::Mul]);
        let triple = seq(&[Inst::Lit(0), Inst::Dup, Inst::Mul]);
        // the pair occurs more often, but the triple saves more dispatches
        let hot = vec![(pair.clone(), 10), (triple.clone(), 9)];
        let plan = FusionPlan::from_hot_sequences(&hot, 1);
        assert_eq!(plan.seqs(), std::slice::from_ref(&triple));
        // with both kept, the plan lists the longer sequence first so the
        // greedy matcher prefers it
        let plan = FusionPlan::from_hot_sequences(&hot, 2);
        assert_eq!(plan.seqs(), &[triple, pair]);
    }

    #[test]
    fn fusion_is_observably_equivalent_and_collapses_dispatches() {
        let p = program_of(&[
            Inst::Lit(6),
            Inst::Dup,
            Inst::Mul,
            Inst::Lit(6),
            Inst::Dup,
            Inst::Mul,
            Inst::Add,
            Inst::Dot,
        ]);
        let plan =
            FusionPlan::from_hot_sequences(&[(seq(&[Inst::Lit(0), Inst::Dup, Inst::Mul]), 2)], 4);
        let stats = check_plan(&p, &plan);
        // 9 instructions (incl. halt) in 5 dispatches: two fused triples
        assert_eq!(stats.executed, 9);
        assert_eq!(stats.dispatches, 5);
    }

    #[test]
    fn fused_groups_never_cross_leaders() {
        // the loop head (OneMinus) is a branch target: a plan matching
        // [dup, one-minus] or [one-minus, dup] must not fuse across it
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(3));
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        b.branch_if_zero(top);
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let plan = FusionPlan::from_hot_sequences(
            &[
                (seq(&[Inst::Lit(0), Inst::OneMinus]), 5),
                (seq(&[Inst::OneMinus, Inst::Dup]), 5),
            ],
            4,
        );
        let fused = fuse(&p, &plan);
        // the group at ip 0 must not swallow the loop head at ip 1
        assert_eq!(fused.group_len()[0], 1);
        // within the block, [one-minus, dup] fuses
        assert_eq!(fused.group_len()[1], 2);
        check_plan(&p, &plan);
    }

    #[test]
    fn static_default_plans_are_deterministic_and_fuse_repeats() {
        let p = program_of(&[
            Inst::Lit(1),
            Inst::Dup,
            Inst::Add,
            Inst::Lit(2),
            Inst::Dup,
            Inst::Add,
            Inst::Lit(3),
            Inst::Dup,
            Inst::Add,
            Inst::Dot,
            Inst::Dot,
            Inst::Dot,
        ]);
        let a = FusionPlan::static_default(&p, DEFAULT_TOP_K);
        let b = FusionPlan::static_default(&p, DEFAULT_TOP_K);
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert!(!a.is_empty());
        let fused = fuse(&p, &a);
        assert!(fused.fused_sites() >= 3, "{:?}", fused.group_len());
        check_plan(&p, &a);
    }

    #[test]
    fn traps_are_bit_identical_under_fusion() {
        // division by zero *inside* a fused group, at the same ip
        let p = program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div, Inst::Dot]);
        let plan = FusionPlan::from_hot_sequences(
            &[(seq(&[Inst::Lit(0), Inst::Lit(0), Inst::Div]), 1)],
            4,
        );
        let fused = fuse(&p, &plan);
        assert_eq!(fused.group_len()[0], 3);
        let mut m1 = Machine::with_memory(64);
        let e1 = exec::run(&p, &mut m1, 1_000).unwrap_err();
        let mut m2 = Machine::with_memory(64);
        let e2 = run_fused(&fused, &mut m2, 1_000).unwrap_err();
        assert_eq!(format!("{e1}"), format!("{e2}"));
    }

    #[test]
    fn fuel_exhaustion_matches_the_reference_mid_group() {
        let p = program_of(&[Inst::Lit(1), Inst::Dup, Inst::Add, Inst::Dot]);
        let plan = FusionPlan::static_default(&p, 4);
        let fused = fuse(&p, &plan);
        for fuel in 0..6 {
            let mut m1 = Machine::with_memory(64);
            let r1 = exec::run(&p, &mut m1, fuel).map(|o| o.executed);
            let mut m2 = Machine::with_memory(64);
            let r2 = run_fused(&fused, &mut m2, fuel).map(|s| s.executed);
            match (r1, r2) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "fuel {fuel}"),
                (a, b) => panic!("fuel {fuel}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn quickening_rewrites_in_place_and_is_idempotent() {
        let p = program_of(&[
            Inst::Lit(6),
            Inst::Dup,
            Inst::Mul,
            Inst::Lit(7),
            Inst::Dup,
            Inst::Mul,
            Inst::Dot,
            Inst::Dot,
        ]);
        let plan =
            FusionPlan::from_hot_sequences(&[(seq(&[Inst::Lit(0), Inst::Dup, Inst::Mul]), 2)], 4);
        let quick = Quickened::new(fuse(&p, &plan));
        assert_eq!(quick.quickened_sites(), 0);

        // first run: every fused site pays its unfused first execution,
        // then rewrites itself
        let mut m = Machine::with_memory(64);
        let first = run_quickened(&quick, &mut m, 1_000).unwrap();
        assert_eq!(quick.quickened_sites(), 2);
        assert_eq!(first.quickened, 2);
        // straight-line program: quickening fires on the only execution
        // of each site, so this run still dispatched per instruction
        assert_eq!(first.dispatches, first.executed);

        // second run: the map is already fused; nothing rewrites again
        let mut m2 = Machine::with_memory(64);
        let second = run_quickened(&quick, &mut m2, 1_000).unwrap();
        assert_eq!(second.quickened, 0, "quickening must be idempotent");
        assert_eq!(quick.quickened_sites(), 2);
        assert!(second.dispatches < second.executed);
        assert_eq!(m.output(), m2.output());

        // a fused run of the same plan agrees with the converged map
        let fused = fuse(&p, &plan);
        let mut m3 = Machine::with_memory(64);
        let direct = run_fused(&fused, &mut m3, 1_000).unwrap();
        assert_eq!(direct.dispatches, second.dispatches);
        assert_eq!(m2.output(), m3.output());
    }

    #[test]
    fn quickening_converges_inside_loops() {
        // a countdown loop executes its body many times: the first trip
        // quickens, the rest dispatch fused
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(50));
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        b.push(Inst::ZeroGt);
        b.branch_if_zero(top); // loop while counter <= 0 is false…
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let plan = FusionPlan::from_hot_sequences(
            &[(seq(&[Inst::OneMinus, Inst::Dup, Inst::ZeroGt]), 50)],
            4,
        );
        let quick = Quickened::new(fuse(&p, &plan));
        let mut m = Machine::with_memory(64);
        let stats = run_quickened(&quick, &mut m, 100_000).unwrap();
        assert_eq!(stats.quickened, 1);
        let fused = fuse(&p, &plan);
        let mut m2 = Machine::with_memory(64);
        let direct = run_fused(&fused, &mut m2, 100_000).unwrap();
        // one extra pair of dispatches: the body's first, unfused trip
        assert_eq!(stats.dispatches, direct.dispatches + 2);
        assert_eq!(m.output(), m2.output());
    }

    #[test]
    fn empty_plan_dispatches_per_instruction() {
        let p = program_of(&[Inst::Lit(1), Inst::Dup, Inst::Add, Inst::Dot]);
        let fused = fuse(&p, &FusionPlan::empty());
        assert_eq!(fused.fused_sites(), 0);
        let mut m = Machine::with_memory(64);
        let stats = run_fused(&fused, &mut m, 1_000).unwrap();
        assert_eq!(stats.dispatches, stats.executed);
    }

    #[test]
    fn checks_levels_agree_on_safe_programs() {
        let p = program_of(&[
            Inst::Lit(5),
            Inst::Dup,
            Inst::Mul,
            Inst::Lit(3),
            Inst::Add,
            Inst::Dot,
        ]);
        let plan = FusionPlan::static_default(&p, 8);
        let fused = fuse(&p, &plan);
        let mut reference = Machine::with_memory(64);
        run_fused(&fused, &mut reference, 1_000).unwrap();
        for checks in [Checks::NoUnderflow, Checks::None] {
            let mut m = Machine::with_memory(64);
            run_fused_with_checks(&fused, &mut m, 1_000, checks).unwrap();
            assert_eq!(reference.stack(), m.stack(), "{}", checks.name());
            assert_eq!(reference.output(), m.output(), "{}", checks.name());
        }
    }

    #[test]
    fn plan_hashes_distinguish_plans() {
        let a = FusionPlan::from_hot_sequences(&[(seq(&[Inst::Dup, Inst::Mul]), 1)], 4);
        let b = FusionPlan::from_hot_sequences(&[(seq(&[Inst::Dup, Inst::Add]), 1)], 4);
        assert_ne!(a.hash64(), b.hash64());
        assert_ne!(a.hash64(), FusionPlan::empty().hash64());
    }

    #[test]
    fn describe_names_sequences() {
        let plan =
            FusionPlan::from_hot_sequences(&[(seq(&[Inst::Lit(0), Inst::Dup, Inst::Mul]), 1)], 4);
        assert_eq!(plan.describe(), vec!["lit+dup+*".to_string()]);
    }

    #[test]
    fn execute_heavy_programs_still_run_fused() {
        // `execute` cannot be *inside* a group, but programs using it
        // still fuse elsewhere (unlike the peephole, which skips them)
        let p = program_of(&[
            Inst::Lit(5),
            Inst::Dup,
            Inst::Mul,
            Inst::Lit(6),
            Inst::Execute,
            Inst::Halt,
            Inst::Dot,
            Inst::Return,
        ]);
        let plan =
            FusionPlan::from_hot_sequences(&[(seq(&[Inst::Lit(0), Inst::Dup, Inst::Mul]), 1)], 4);
        let fused = fuse(&p, &plan);
        assert_eq!(fused.group_len()[0], 3);
        assert_eq!(fused.group_len()[4], 1);
        check_plan(&p, &plan);
    }
}
