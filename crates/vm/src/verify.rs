//! Bytecode verification and control-flow-graph construction.
//!
//! The static stack-caching compiler (in `stackcache-core`) needs to reason
//! about basic blocks and their successors; [`Cfg`] provides that structure.
//! [`verify`] performs the checks that make the rest of the toolchain safe
//! to run without per-instruction target validation.

use std::error::Error;
use std::fmt;

use crate::inst::Inst;
use crate::program::Program;

/// A verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The program is empty.
    Empty,
    /// The entry point is out of range.
    BadEntry {
        /// The offending entry index.
        entry: usize,
    },
    /// A branch or call target is out of range.
    BadTarget {
        /// Instruction index of the branch.
        ip: usize,
        /// The offending target.
        target: u32,
    },
    /// Execution can fall off the end of the program.
    FallsOffEnd,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "program is empty"),
            VerifyError::BadEntry { entry } => write!(f, "entry point {entry} out of range"),
            VerifyError::BadTarget { ip, target } => {
                write!(f, "branch target {target} at instruction {ip} out of range")
            }
            VerifyError::FallsOffEnd => {
                write!(
                    f,
                    "last instruction does not end a basic block; execution can fall off the end"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Check that a program is structurally sound.
///
/// Verifies that the program is non-empty, the entry point and every branch
/// target are in range, and the final instruction ends a basic block (so
/// control can never run past the end of the instruction vector).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
///
/// # Examples
///
/// ```
/// use stackcache_vm::{program_of, verify, Inst};
///
/// let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add]);
/// verify(&p)?;
/// # Ok::<(), stackcache_vm::VerifyError>(())
/// ```
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    let insts = program.insts();
    if insts.is_empty() {
        return Err(VerifyError::Empty);
    }
    if program.entry() >= insts.len() {
        return Err(VerifyError::BadEntry {
            entry: program.entry(),
        });
    }
    for (ip, inst) in insts.iter().enumerate() {
        if let Some(t) = inst.target() {
            if t as usize >= insts.len() {
                return Err(VerifyError::BadTarget { ip, target: t });
            }
        }
    }
    if !insts[insts.len() - 1].ends_block() {
        return Err(VerifyError::FallsOffEnd);
    }
    Ok(())
}

/// A basic block of a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Instruction indices control may transfer to after this block
    /// (branch targets and fall-through; for calls, the return point).
    pub successors: Vec<usize>,
    /// If the block ends in a static call, the callee entry point.
    pub call_target: Option<usize>,
}

impl Block {
    /// Index of the block's terminating instruction.
    #[must_use]
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// The control-flow graph of a program: its basic blocks in program order.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
}

impl Cfg {
    /// Build the CFG of a verified program.
    ///
    /// Call [`verify`] first; this function assumes targets are in range.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let insts = program.insts();
        let blocks = program
            .basic_blocks()
            .into_iter()
            .map(|(start, end)| {
                let term = insts[end - 1];
                let mut successors = Vec::new();
                let mut call_target = None;
                match term {
                    Inst::Branch(t) => successors.push(t as usize),
                    Inst::BranchIfZero(t)
                    | Inst::QDoSetup(t)
                    | Inst::LoopInc(t)
                    | Inst::PlusLoopInc(t) => {
                        successors.push(t as usize);
                        if end < insts.len() {
                            successors.push(end);
                        }
                    }
                    Inst::Call(t) => {
                        call_target = Some(t as usize);
                        if end < insts.len() {
                            successors.push(end);
                        }
                    }
                    Inst::Execute => {
                        if end < insts.len() {
                            successors.push(end);
                        }
                    }
                    Inst::Return | Inst::Halt => {}
                    // Block ended because the *next* instruction is a leader.
                    _ => {
                        if end < insts.len() {
                            successors.push(end);
                        }
                    }
                }
                Block {
                    start,
                    end,
                    successors,
                    call_target,
                }
            })
            .collect();
        Cfg { blocks }
    }

    /// The blocks in program order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction index `ip`, if any.
    #[must_use]
    pub fn block_of(&self, ip: usize) -> Option<&Block> {
        let idx = self.blocks.partition_point(|b| b.end <= ip);
        self.blocks.get(idx).filter(|b| b.start <= ip && ip < b.end)
    }

    /// Instruction indices that start a block.
    pub fn leaders(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().map(|b| b.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{program_of, ProgramBuilder};

    #[test]
    fn verify_accepts_valid_programs() {
        let p = program_of(&[Inst::Lit(1), Inst::Dup, Inst::Add]);
        assert!(verify(&p).is_ok());
    }

    #[test]
    fn verify_rejects_empty() {
        let p = ProgramBuilder::new().finish().unwrap();
        assert_eq!(verify(&p), Err(VerifyError::Empty));
    }

    #[test]
    fn verify_rejects_fall_off_end() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(1));
        let p = b.finish().unwrap();
        assert_eq!(verify(&p), Err(VerifyError::FallsOffEnd));
    }

    #[test]
    fn cfg_successors() {
        // 0: lit 1
        // 1: ?branch -> 4
        // 2: lit 2
        // 3: branch -> 5
        // 4: lit 3
        // 5: halt
        let mut b = ProgramBuilder::new();
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.push(Inst::Lit(1));
        b.branch_if_zero(else_l);
        b.push(Inst::Lit(2));
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::Lit(3));
        b.bind(end_l).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        let blocks = cfg.blocks();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].successors, vec![4, 2]);
        assert_eq!(blocks[1].successors, vec![5]);
        assert_eq!(blocks[2].successors, vec![5]);
        assert!(blocks[3].successors.is_empty());
    }

    #[test]
    fn cfg_call_blocks() {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        let call_block = cfg.block_of(0).unwrap();
        assert_eq!(call_block.call_target, Some(2));
        assert_eq!(call_block.successors, vec![1]);
    }

    #[test]
    fn block_of_finds_containing_block() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add]);
        let cfg = Cfg::build(&p);
        let b = cfg.block_of(1).unwrap();
        assert!(b.start <= 1 && 1 < b.end);
        assert!(cfg.block_of(999).is_none());
    }

    #[test]
    fn implicit_fallthrough_block_has_successor() {
        // A block split by a branch target in the middle of straight-line code.
        let mut b = ProgramBuilder::new();
        let mid = b.new_label();
        b.push(Inst::Lit(0));
        b.branch_if_zero(mid);
        b.push(Inst::Lit(1));
        b.bind(mid).unwrap(); // lands mid-straight-line
        b.push(Inst::Lit(2));
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        // Block [2,3) falls through to block starting at 3.
        let blk = cfg.block_of(2).unwrap();
        assert_eq!(blk.successors, vec![3]);
    }
}
