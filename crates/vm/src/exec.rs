//! The reference interpreter and its instrumentation interface.
//!
//! [`run_with_observer`] executes a [`Program`] with full runtime checking
//! and delivers one [`ExecEvent`] per executed instruction to an
//! [`ExecObserver`].  The event carries the instruction's *resolved* effect
//! (dynamic-effect instructions such as `?dup` and the loop primitives are
//! resolved to what actually happened), which is exactly the information the
//! stack-caching cost simulators in `stackcache-core` consume.
//!
//! The reference interpreter is deliberately written for clarity and
//! checkability, not speed; the wall-clock interpreters compared in the
//! paper's Section 6 live in [`crate::interp`] and `stackcache_core::interp`
//! and are cross-validated against this one.

use crate::checks::{Checks, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};
use crate::error::VmError;
use crate::inst::{perm, Cell, EffectKind, Inst, CELL_BYTES, FALSE, TRUE};
use crate::machine::Machine;
use crate::program::Program;

/// The per-execution resolved effect of one instruction.
///
/// Differences from the static [`Effect`](crate::inst::Effect):
///
/// * `?dup` is resolved to a concrete shuffle,
/// * loop primitives report their actual return-stack traffic,
/// * conditional branches report whether they were taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedEffect {
    /// Cells popped from the data stack.
    pub pops: u8,
    /// Cells pushed onto the data stack.
    pub pushes: u8,
    /// Cells read from the return stack (loads).
    pub rloads: u8,
    /// Cells written to the return stack (stores).
    pub rstores: u8,
    /// Net return-stack depth change.
    pub rnet: i8,
    /// Behaviour class, with `?dup` resolved to a concrete shuffle.
    pub kind: EffectKind,
    /// For branch kinds: `true` if control transferred to the target.
    pub taken: bool,
}

impl ResolvedEffect {
    fn plain(pops: u8, pushes: u8, kind: EffectKind) -> Self {
        ResolvedEffect {
            pops,
            pushes,
            rloads: 0,
            rstores: 0,
            rnet: 0,
            kind,
            taken: false,
        }
    }
}

/// One executed instruction, as seen by an [`ExecObserver`].
#[derive(Debug, Clone, Copy)]
pub struct ExecEvent {
    /// Index of the executed instruction.
    pub ip: usize,
    /// The executed instruction.
    pub inst: Inst,
    /// Its resolved effect.
    pub effect: ResolvedEffect,
}

/// Receives one event per executed instruction.
///
/// Implementations must not assume events arrive from a single program run;
/// the harness reuses observers across workloads deliberately (the paper
/// sums its figures over all four benchmark programs).
pub trait ExecObserver {
    /// Called after each instruction completes successfully.
    fn event(&mut self, ev: &ExecEvent);

    /// Polled before each instruction; returning `true` stops the run
    /// with [`VmError::Cancelled`]. The default never cancels, so plain
    /// instrumentation observers pay one predictable inlined branch.
    ///
    /// This is the cooperative-cancellation hook the execution service
    /// uses for wall-clock deadlines and graceful shutdown.
    #[inline]
    fn poll_cancel(&mut self) -> bool {
        false
    }
}

/// The do-nothing observer.
impl ExecObserver for () {
    #[inline]
    fn event(&mut self, _ev: &ExecEvent) {}
}

impl<T: ExecObserver + ?Sized> ExecObserver for &mut T {
    #[inline]
    fn event(&mut self, ev: &ExecEvent) {
        (**self).event(ev);
    }

    #[inline]
    fn poll_cancel(&mut self) -> bool {
        (**self).poll_cancel()
    }
}

/// Broadcast events to several observers (one execution, many regimes).
impl<T: ExecObserver> ExecObserver for [T] {
    fn event(&mut self, ev: &ExecEvent) {
        for obs in self.iter_mut() {
            obs.event(ev);
        }
    }

    fn poll_cancel(&mut self) -> bool {
        self.iter_mut().any(ExecObserver::poll_cancel)
    }
}

impl<T: ExecObserver> ExecObserver for Vec<T> {
    fn event(&mut self, ev: &ExecEvent) {
        self.as_mut_slice().event(ev);
    }

    fn poll_cancel(&mut self) -> bool {
        self.as_mut_slice().poll_cancel()
    }
}

/// Compose two observers of *different* types (one execution, two
/// concerns — e.g. a deadline enforcer plus a flight-recorder tracer).
///
/// Both observers see every event, and both are polled for cancellation
/// on every instruction (no short-circuiting: an interval-counting
/// observer keeps its cadence even when its partner cancels first).
impl<A: ExecObserver, B: ExecObserver> ExecObserver for (A, B) {
    #[inline]
    fn event(&mut self, ev: &ExecEvent) {
        self.0.event(ev);
        self.1.event(ev);
    }

    #[inline]
    fn poll_cancel(&mut self) -> bool {
        let a = self.0.poll_cancel();
        let b = self.1.poll_cancel();
        a || b
    }
}

/// Result of a successful program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Number of instructions executed (including the final `halt`).
    pub executed: u64,
    /// Instruction index of the `halt` that ended execution.
    pub ip: usize,
}

/// Execute `program` on `machine` without instrumentation.
///
/// `fuel` bounds the number of executed instructions.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap (stack underflow, memory out of
/// bounds, division by zero, fuel exhaustion, …).
pub fn run(program: &Program, machine: &mut Machine, fuel: u64) -> Result<Outcome, VmError> {
    run_with_observer(program, machine, fuel, &mut ())
}

/// Execute `program` on `machine`, delivering an [`ExecEvent`] per
/// instruction to `observer`.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap. No event is delivered for the
/// faulting instruction.
pub fn run_with_observer<O: ExecObserver + ?Sized>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    observer: &mut O,
) -> Result<Outcome, VmError> {
    run_observer_mode::<CHECK_FULL, O>(program, machine, fuel, observer)
}

/// [`run`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; see [`Checks`] for the contract. The reference
/// interpreter works on growable `Vec` stacks, so its elided underflow
/// checks degrade to unreachable-panics rather than disappearing — the
/// point of this variant is a uniform engine interface, not speed.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap the chosen level still
/// detects.
pub fn run_with_checks(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<Outcome, VmError> {
    run_with_observer_checks(program, machine, fuel, &mut (), checks)
}

/// [`run_with_observer`] at a selectable [`Checks`] level.
///
/// # Errors
///
/// Returns a [`VmError`] on any runtime trap the chosen level still
/// detects. No event is delivered for the faulting instruction.
pub fn run_with_observer_checks<O: ExecObserver + ?Sized>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    observer: &mut O,
    checks: Checks,
) -> Result<Outcome, VmError> {
    match checks {
        Checks::Full => run_observer_mode::<CHECK_FULL, O>(program, machine, fuel, observer),
        Checks::NoUnderflow => {
            run_observer_mode::<CHECK_NO_UNDERFLOW, O>(program, machine, fuel, observer)
        }
        Checks::None => run_observer_mode::<CHECK_NONE, O>(program, machine, fuel, observer),
    }
}

fn run_observer_mode<const MODE: u8, O: ExecObserver + ?Sized>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    observer: &mut O,
) -> Result<Outcome, VmError> {
    let insts = program.insts();
    let mut ip = program.entry();
    let mut executed: u64 = 0;

    loop {
        if executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        if observer.poll_cancel() {
            return Err(VmError::Cancelled { ip });
        }
        let Some(&inst) = insts.get(ip) else {
            return Err(VmError::InstructionOutOfBounds { ip });
        };
        executed += 1;
        let cur_ip = ip;
        ip += 1;

        macro_rules! pop {
            () => {
                match machine.stack.pop() {
                    Some(x) => x,
                    None if MODE == CHECK_FULL => {
                        return Err(VmError::StackUnderflow { ip: cur_ip })
                    }
                    None => unreachable!("data-stack underflow on a proven program"),
                }
            };
        }
        macro_rules! push {
            ($x:expr) => {{
                if MODE < CHECK_NONE && machine.stack.len() >= machine.stack_limit {
                    return Err(VmError::StackOverflow { ip: cur_ip });
                }
                machine.stack.push($x);
            }};
        }
        macro_rules! rpop {
            () => {
                match machine.rstack.pop() {
                    Some(x) => x,
                    None if MODE == CHECK_FULL => {
                        return Err(VmError::ReturnStackUnderflow { ip: cur_ip })
                    }
                    None => unreachable!("return-stack underflow on a proven program"),
                }
            };
        }
        macro_rules! rpush {
            ($x:expr) => {{
                if MODE < CHECK_NONE && machine.rstack.len() >= machine.rstack_limit {
                    return Err(VmError::ReturnStackOverflow { ip: cur_ip });
                }
                machine.rstack.push($x);
            }};
        }
        // Diverge on a return-stack underflow detected by an inline depth
        // test (the `Vec`-reading instructions that do not pop).
        macro_rules! runder {
            () => {{
                if MODE == CHECK_FULL {
                    return Err(VmError::ReturnStackUnderflow { ip: cur_ip });
                }
                unreachable!("return-stack underflow on a proven program")
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!();
                let a = pop!();
                push!($f(a, b));
            }};
        }
        macro_rules! unop {
            ($f:expr) => {{
                let a = pop!();
                push!($f(a));
            }};
        }

        let static_eff = inst.effect();
        let mut effect = ResolvedEffect::plain(static_eff.pops, static_eff.pushes, static_eff.kind);

        match inst {
            Inst::Lit(n) => push!(n),

            Inst::Add => binop!(|a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(|a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(|a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur_ip });
                }
                push!(a.div_euclid(b));
            }
            Inst::Mod => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur_ip });
                }
                push!(a.rem_euclid(b));
            }
            Inst::And => binop!(|a: Cell, b: Cell| a & b),
            Inst::Or => binop!(|a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(|a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(|a: Cell, b: Cell| ((a as u64) << (b as u64 & 63)) as Cell),
            Inst::Rshift => binop!(|a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63)) as Cell),
            Inst::Min => binop!(|a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(|a: Cell, b: Cell| a.max(b)),

            Inst::Eq => binop!(|a, b| flag(a == b)),
            Inst::Ne => binop!(|a, b| flag(a != b)),
            Inst::Lt => binop!(|a, b| flag(a < b)),
            Inst::Gt => binop!(|a, b| flag(a > b)),
            Inst::Le => binop!(|a, b| flag(a <= b)),
            Inst::Ge => binop!(|a, b| flag(a >= b)),
            Inst::ULt => binop!(|a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(|a: Cell, b: Cell| flag((a as u64) > (b as u64))),

            Inst::Negate => unop!(|a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(|a: Cell| !a),
            Inst::Abs => unop!(|a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(|a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(|a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(|a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(|a: Cell| a >> 1),
            Inst::ZeroEq => unop!(|a| flag(a == 0)),
            Inst::ZeroNe => unop!(|a| flag(a != 0)),
            Inst::ZeroLt => unop!(|a| flag(a < 0)),
            Inst::ZeroGt => unop!(|a| flag(a > 0)),
            Inst::CellPlus => unop!(|a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(|a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(|a: Cell| a.wrapping_add(1)),

            Inst::Dup => {
                let a = pop!();
                push!(a);
                push!(a);
            }
            Inst::Drop => {
                pop!();
            }
            Inst::Swap => {
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(a);
            }
            Inst::Over => {
                let b = pop!();
                let a = pop!();
                push!(a);
                push!(b);
                push!(a);
            }
            Inst::Rot => {
                let c = pop!();
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(c);
                push!(a);
            }
            Inst::MinusRot => {
                let c = pop!();
                let b = pop!();
                let a = pop!();
                push!(c);
                push!(a);
                push!(b);
            }
            Inst::Nip => {
                let b = pop!();
                pop!();
                push!(b);
            }
            Inst::Tuck => {
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(a);
                push!(b);
            }
            Inst::TwoDup => {
                let b = pop!();
                let a = pop!();
                push!(a);
                push!(b);
                push!(a);
                push!(b);
            }
            Inst::TwoDrop => {
                pop!();
                pop!();
            }
            Inst::TwoSwap => {
                let d = pop!();
                let c = pop!();
                let b = pop!();
                let a = pop!();
                push!(c);
                push!(d);
                push!(a);
                push!(b);
            }
            Inst::TwoOver => {
                let d = pop!();
                let c = pop!();
                let b = pop!();
                let a = pop!();
                push!(a);
                push!(b);
                push!(c);
                push!(d);
                push!(a);
                push!(b);
            }
            Inst::QDup => {
                let a = pop!();
                push!(a);
                if a != 0 {
                    push!(a);
                    effect = ResolvedEffect::plain(1, 2, EffectKind::Shuffle(perm::QDUP_NONZERO));
                } else {
                    effect = ResolvedEffect::plain(1, 1, EffectKind::Shuffle(perm::QDUP_ZERO));
                }
            }

            Inst::Pick => {
                let u = pop!();
                let depth = machine.stack.len() as i64;
                if u < 0 || u >= depth {
                    return Err(VmError::PickOutOfRange {
                        ip: cur_ip,
                        index: u,
                    });
                }
                let v = machine.stack[(depth - 1 - u) as usize];
                push!(v);
            }
            Inst::Depth => {
                let d = machine.stack.len() as Cell;
                push!(d);
            }

            Inst::ToR => {
                let a = pop!();
                rpush!(a);
                effect.rstores = 1;
                effect.rnet = 1;
            }
            Inst::FromR => {
                let a = rpop!();
                push!(a);
                effect.rloads = 1;
                effect.rnet = -1;
            }
            Inst::RFetch => {
                let Some(&a) = machine.rstack.last() else {
                    runder!()
                };
                push!(a);
                effect.rloads = 1;
            }
            Inst::TwoToR => {
                let b = pop!();
                let a = pop!();
                rpush!(a);
                rpush!(b);
                effect.rstores = 2;
                effect.rnet = 2;
            }
            Inst::TwoFromR => {
                let b = rpop!();
                let a = rpop!();
                push!(a);
                push!(b);
                effect.rloads = 2;
                effect.rnet = -2;
            }
            Inst::TwoRFetch => {
                let n = machine.rstack.len();
                if n < 2 {
                    runder!();
                }
                let a = machine.rstack[n - 2];
                let b = machine.rstack[n - 1];
                push!(a);
                push!(b);
                effect.rloads = 2;
            }

            Inst::Fetch => {
                let addr = pop!();
                match machine.load_cell(addr) {
                    Some(x) => push!(x),
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur_ip, addr }),
                }
            }
            Inst::Store => {
                let addr = pop!();
                let x = pop!();
                if !machine.store_cell(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur_ip, addr });
                }
            }
            Inst::CFetch => {
                let addr = pop!();
                match machine.load_byte(addr) {
                    Some(x) => push!(x),
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur_ip, addr }),
                }
            }
            Inst::CStore => {
                let addr = pop!();
                let x = pop!();
                if !machine.store_byte(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur_ip, addr });
                }
            }
            Inst::PlusStore => {
                let addr = pop!();
                let n = pop!();
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur_ip, addr }),
                }
            }

            Inst::Branch(t) => {
                ip = t as usize;
                effect.taken = true;
            }
            Inst::BranchIfZero(t) => {
                let f = pop!();
                if f == 0 {
                    ip = t as usize;
                    effect.taken = true;
                }
            }
            Inst::Call(t) => {
                rpush!(ip as Cell);
                ip = t as usize;
                effect.rstores = 1;
                effect.rnet = 1;
                effect.taken = true;
            }
            Inst::Execute => {
                let token = pop!();
                if token < 0 || token as usize >= insts.len() {
                    return Err(VmError::InvalidExecutionToken { ip: cur_ip, token });
                }
                rpush!(ip as Cell);
                ip = token as usize;
                effect.rstores = 1;
                effect.rnet = 1;
                effect.taken = true;
            }
            Inst::Return => {
                let ret = rpop!();
                if ret < 0 || ret as usize > insts.len() {
                    return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                ip = ret as usize;
                effect.rloads = 1;
                effect.rnet = -1;
                effect.taken = true;
            }
            Inst::Halt => {
                observer.event(&ExecEvent {
                    ip: cur_ip,
                    inst,
                    effect,
                });
                return Ok(Outcome {
                    executed,
                    ip: cur_ip,
                });
            }
            Inst::Nop => {}

            Inst::DoSetup => {
                let start = pop!();
                let limit = pop!();
                rpush!(limit);
                rpush!(start);
                effect.rstores = 2;
                effect.rnet = 2;
            }
            Inst::QDoSetup(t) => {
                let start = pop!();
                let limit = pop!();
                if limit == start {
                    ip = t as usize;
                    effect.taken = true;
                } else {
                    rpush!(limit);
                    rpush!(start);
                    effect.rstores = 2;
                    effect.rnet = 2;
                }
            }
            Inst::LoopInc(t) => {
                let n = machine.rstack.len();
                if n < 2 {
                    runder!();
                }
                let index = machine.rstack[n - 1].wrapping_add(1);
                let limit = machine.rstack[n - 2];
                effect.rloads = 2;
                if index == limit {
                    machine.rstack.truncate(n - 2);
                    effect.rnet = -2;
                } else {
                    machine.rstack[n - 1] = index;
                    effect.rstores = 1;
                    ip = t as usize;
                    effect.taken = true;
                }
            }
            Inst::PlusLoopInc(t) => {
                let step = pop!();
                let n = machine.rstack.len();
                if n < 2 {
                    runder!();
                }
                let old = machine.rstack[n - 1];
                let new = old.wrapping_add(step);
                let limit = machine.rstack[n - 2];
                effect.rloads = 2;
                let crossed = if step >= 0 {
                    old < limit && new >= limit
                } else {
                    old >= limit && new < limit
                };
                if crossed {
                    machine.rstack.truncate(n - 2);
                    effect.rnet = -2;
                } else {
                    machine.rstack[n - 1] = new;
                    effect.rstores = 1;
                    ip = t as usize;
                    effect.taken = true;
                }
            }
            Inst::LoopI => {
                let Some(&i) = machine.rstack.last() else {
                    runder!()
                };
                push!(i);
                effect.rloads = 1;
            }
            Inst::LoopJ => {
                let n = machine.rstack.len();
                if n < 4 {
                    runder!();
                }
                push!(machine.rstack[n - 3]);
                effect.rloads = 1;
            }
            Inst::Unloop => {
                let n = machine.rstack.len();
                if n < 2 {
                    runder!();
                }
                machine.rstack.truncate(n - 2);
                effect.rnet = -2;
            }

            Inst::Emit => {
                let c = pop!();
                machine.out.push(c as u8);
            }
            Inst::Dot => {
                let n = pop!();
                machine.out.extend_from_slice(n.to_string().as_bytes());
                machine.out.push(b' ');
            }
            Inst::Type => {
                let len = pop!();
                let addr = pop!();
                if len < 0 {
                    return Err(VmError::MemoryOutOfBounds {
                        ip: cur_ip,
                        addr: len,
                    });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(b) => machine.out.push(b as u8),
                        None => {
                            return Err(VmError::MemoryOutOfBounds {
                                ip: cur_ip,
                                addr: a,
                            })
                        }
                    }
                }
            }
            Inst::Cr => {
                machine.out.push(b'\n');
            }
        }

        observer.event(&ExecEvent {
            ip: cur_ip,
            inst,
            effect,
        });
    }
}

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{program_of, ProgramBuilder};

    fn run_insts(insts: &[Inst]) -> Machine {
        let p = program_of(insts);
        let mut m = Machine::with_memory(4096);
        run(&p, &mut m, 1_000_000).expect("program runs");
        m
    }

    fn stack_after(insts: &[Inst]) -> Vec<Cell> {
        run_insts(insts).stack().to_vec()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Add]),
            vec![5]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Sub]),
            vec![-1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(4), Inst::Lit(3), Inst::Mul]),
            vec![12]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(7), Inst::Lit(2), Inst::Div]),
            vec![3]
        );
        // floored division
        assert_eq!(
            stack_after(&[Inst::Lit(-7), Inst::Lit(2), Inst::Div]),
            vec![-4]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(-7), Inst::Lit(2), Inst::Mod]),
            vec![1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(6), Inst::Lit(3), Inst::And]),
            vec![2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(6), Inst::Lit(3), Inst::Or]),
            vec![7]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(6), Inst::Lit(3), Inst::Xor]),
            vec![5]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(4), Inst::Lshift]),
            vec![16]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(-1), Inst::Lit(63), Inst::Rshift]),
            vec![1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Min]),
            vec![2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Max]),
            vec![3]
        );
    }

    #[test]
    fn comparisons_use_forth_flags() {
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(2), Inst::Eq]),
            vec![TRUE]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Eq]),
            vec![FALSE]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(2), Inst::Lit(3), Inst::Lt]),
            vec![TRUE]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(-1), Inst::Lit(1), Inst::ULt]),
            vec![FALSE]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(-1), Inst::Lit(1), Inst::UGt]),
            vec![TRUE]
        );
        assert_eq!(stack_after(&[Inst::Lit(0), Inst::ZeroEq]), vec![TRUE]);
        assert_eq!(stack_after(&[Inst::Lit(-5), Inst::ZeroLt]), vec![TRUE]);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(stack_after(&[Inst::Lit(5), Inst::Negate]), vec![-5]);
        assert_eq!(stack_after(&[Inst::Lit(0), Inst::Invert]), vec![-1]);
        assert_eq!(stack_after(&[Inst::Lit(-5), Inst::Abs]), vec![5]);
        assert_eq!(stack_after(&[Inst::Lit(5), Inst::OnePlus]), vec![6]);
        assert_eq!(stack_after(&[Inst::Lit(5), Inst::OneMinus]), vec![4]);
        assert_eq!(stack_after(&[Inst::Lit(5), Inst::TwoStar]), vec![10]);
        assert_eq!(stack_after(&[Inst::Lit(-5), Inst::TwoSlash]), vec![-3]); // arithmetic shift
        assert_eq!(stack_after(&[Inst::Lit(8), Inst::CellPlus]), vec![16]);
        assert_eq!(stack_after(&[Inst::Lit(3), Inst::Cells]), vec![24]);
        assert_eq!(stack_after(&[Inst::Lit(3), Inst::CharPlus]), vec![4]);
    }

    #[test]
    fn shuffles() {
        assert_eq!(stack_after(&[Inst::Lit(1), Inst::Dup]), vec![1, 1]);
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Drop]),
            vec![1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Swap]),
            vec![2, 1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Over]),
            vec![1, 2, 1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Lit(3), Inst::Rot]),
            vec![2, 3, 1]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Lit(3), Inst::MinusRot]),
            vec![3, 1, 2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Nip]),
            vec![2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::Tuck]),
            vec![2, 1, 2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::TwoDup]),
            vec![1, 2, 1, 2]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::TwoDrop]),
            vec![]
        );
        assert_eq!(
            stack_after(&[
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::Lit(3),
                Inst::Lit(4),
                Inst::TwoSwap
            ]),
            vec![3, 4, 1, 2]
        );
        assert_eq!(
            stack_after(&[
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::Lit(3),
                Inst::Lit(4),
                Inst::TwoOver
            ]),
            vec![1, 2, 3, 4, 1, 2]
        );
        assert_eq!(stack_after(&[Inst::Lit(7), Inst::QDup]), vec![7, 7]);
        assert_eq!(stack_after(&[Inst::Lit(0), Inst::QDup]), vec![0]);
    }

    #[test]
    fn pick_and_depth() {
        assert_eq!(
            stack_after(&[
                Inst::Lit(10),
                Inst::Lit(20),
                Inst::Lit(30),
                Inst::Lit(2),
                Inst::Pick
            ]),
            vec![10, 20, 30, 10]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(10), Inst::Lit(20), Inst::Depth]),
            vec![10, 20, 2]
        );
    }

    #[test]
    fn pick_out_of_range_traps() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(5), Inst::Pick]);
        let mut m = Machine::with_memory(64);
        let err = run(&p, &mut m, 1000).unwrap_err();
        assert_eq!(err, VmError::PickOutOfRange { ip: 2, index: 5 });
    }

    #[test]
    fn return_stack_words() {
        assert_eq!(
            stack_after(&[Inst::Lit(7), Inst::ToR, Inst::FromR]),
            vec![7]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(7), Inst::ToR, Inst::RFetch, Inst::FromR]),
            vec![7, 7]
        );
        assert_eq!(
            stack_after(&[Inst::Lit(1), Inst::Lit(2), Inst::TwoToR, Inst::TwoFromR]),
            vec![1, 2]
        );
        assert_eq!(
            stack_after(&[
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::TwoToR,
                Inst::TwoRFetch,
                Inst::TwoFromR
            ]),
            vec![1, 2, 1, 2]
        );
    }

    #[test]
    fn memory_words() {
        let m = run_insts(&[
            Inst::Lit(42),
            Inst::Lit(64),
            Inst::Store,
            Inst::Lit(64),
            Inst::Fetch,
            Inst::Lit(5),
            Inst::Lit(64),
            Inst::PlusStore,
            Inst::Lit(64),
            Inst::Fetch,
        ]);
        assert_eq!(m.stack(), &[42, 47]);

        let m = run_insts(&[
            Inst::Lit(300),
            Inst::Lit(10),
            Inst::CStore, // stores low byte 44
            Inst::Lit(10),
            Inst::CFetch,
        ]);
        assert_eq!(m.stack(), &[44]);
    }

    #[test]
    fn memory_oob_traps() {
        let p = program_of(&[Inst::Lit(1 << 40), Inst::Fetch]);
        let mut m = Machine::with_memory(64);
        let err = run(&p, &mut m, 1000).unwrap_err();
        assert!(matches!(err, VmError::MemoryOutOfBounds { ip: 1, .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div]);
        let mut m = Machine::with_memory(64);
        assert_eq!(
            run(&p, &mut m, 1000).unwrap_err(),
            VmError::DivisionByZero { ip: 2 }
        );
    }

    #[test]
    fn calls_and_returns() {
        // main: call square(3); halt.  square: dup *; exit
        let mut b = ProgramBuilder::new();
        let square = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(3));
        b.call(square);
        b.push(Inst::Halt);
        b.bind(square).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        let out = run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.stack(), &[9]);
        assert_eq!(out.executed, 6);
        assert!(m.rstack().is_empty());
    }

    #[test]
    fn execute_calls_by_token() {
        let mut b = ProgramBuilder::new();
        let double = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(21));
        b.push(Inst::Lit(4)); // token: index of `double`
        b.push(Inst::Execute);
        b.push(Inst::Halt);
        b.bind(double).unwrap();
        assert_eq!(b.here(), 4);
        b.push(Inst::TwoStar);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.stack(), &[42]);
    }

    #[test]
    fn invalid_execute_token_traps() {
        let p = program_of(&[Inst::Lit(-3), Inst::Execute]);
        let mut m = Machine::with_memory(64);
        assert_eq!(
            run(&p, &mut m, 1000).unwrap_err(),
            VmError::InvalidExecutionToken { ip: 1, token: -3 }
        );
    }

    #[test]
    fn do_loop_sums() {
        // : sum 0 5 0 do i + loop ;  => 0+1+2+3+4 = 10
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(5));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.stack(), &[10]);
        assert!(m.rstack().is_empty());
    }

    #[test]
    fn qdo_skips_empty_range() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(3));
        b.push(Inst::Lit(3));
        let out = b.new_label();
        b.qdo(out);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.bind(out).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.stack(), &[0]);
    }

    #[test]
    fn plus_loop_counts_by_two() {
        // 10 0 do i +loop-style: count iterations with step 2 => 5 iterations
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(0)); // accumulator
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OnePlus);
        b.push(Inst::Lit(2));
        b.plus_loop_inc(top);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.stack(), &[5]);
    }

    #[test]
    fn nested_loops_and_j() {
        // for i in 0..3 { for j in 0..2 { acc += i*10 + j(inner i) } }
        // j word observes outer index.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(3));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let outer = b.new_label();
        b.bind(outer).unwrap();
        b.push(Inst::Lit(2));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let inner = b.new_label();
        b.bind(inner).unwrap();
        b.push(Inst::LoopJ); // outer index
        b.push(Inst::Lit(10));
        b.push(Inst::Mul);
        b.push(Inst::LoopI); // inner index
        b.push(Inst::Add);
        b.push(Inst::Add);
        b.loop_inc(inner);
        b.loop_inc(outer);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 10_000).unwrap();
        // sum over i in 0..3, j in 0..2 of (10*i + j) = 10*(0+0+10+10+20+20) err:
        // pairs: (0,0)=0 (0,1)=1 (1,0)=10 (1,1)=11 (2,0)=20 (2,1)=21 => 63
        assert_eq!(m.stack(), &[63]);
    }

    #[test]
    fn unloop_allows_early_exit() {
        // do-loop over 0..10 but exit at i==3 via unloop+return pattern
        let mut b = ProgramBuilder::new();
        let word = b.new_label();
        b.entry_here();
        b.call(word);
        b.push(Inst::Halt);
        b.bind(word).unwrap();
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Lit(3));
        b.push(Inst::Eq);
        b.branch_if_zero(done);
        b.push(Inst::LoopI);
        b.push(Inst::Unloop);
        b.push(Inst::Return);
        b.bind(done).unwrap();
        b.loop_inc(top);
        b.push(Inst::Lit(-1));
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        run(&p, &mut m, 10_000).unwrap();
        assert_eq!(m.stack(), &[3]);
        assert!(m.rstack().is_empty());
    }

    #[test]
    fn io_words() {
        let m = run_insts(&[
            Inst::Lit(72),
            Inst::Emit,
            Inst::Lit(105),
            Inst::Emit,
            Inst::Cr,
            Inst::Lit(-42),
            Inst::Dot,
        ]);
        assert_eq!(m.output_string(), "Hi\n-42 ");
    }

    #[test]
    fn type_prints_memory() {
        let mut m = Machine::with_memory(64);
        m.memory_mut()[10..15].copy_from_slice(b"hello");
        let p = program_of(&[Inst::Lit(10), Inst::Lit(5), Inst::Type]);
        run(&p, &mut m, 1000).unwrap();
        assert_eq!(m.output_string(), "hello");
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.branch(top);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        assert!(matches!(
            run(&p, &mut m, 100).unwrap_err(),
            VmError::FuelExhausted { .. }
        ));
    }

    #[test]
    fn underflow_traps() {
        let p = program_of(&[Inst::Add]);
        let mut m = Machine::with_memory(64);
        assert_eq!(
            run(&p, &mut m, 1000).unwrap_err(),
            VmError::StackUnderflow { ip: 0 }
        );

        let p = program_of(&[Inst::FromR]);
        let mut m = Machine::with_memory(64);
        assert_eq!(
            run(&p, &mut m, 1000).unwrap_err(),
            VmError::ReturnStackUnderflow { ip: 0 }
        );
    }

    #[test]
    fn observer_sees_resolved_effects() {
        struct Collect(Vec<ExecEvent>);
        impl ExecObserver for Collect {
            fn event(&mut self, ev: &ExecEvent) {
                self.0.push(*ev);
            }
        }
        let p = program_of(&[Inst::Lit(0), Inst::QDup, Inst::Lit(1), Inst::QDup]);
        let mut m = Machine::with_memory(64);
        let mut obs = Collect(Vec::new());
        run_with_observer(&p, &mut m, 1000, &mut obs).unwrap();
        assert_eq!(obs.0.len(), 5); // 4 + halt
        assert_eq!(obs.0[1].effect.kind, EffectKind::Shuffle(perm::QDUP_ZERO));
        assert_eq!(obs.0[1].effect.pushes, 1);
        assert_eq!(
            obs.0[3].effect.kind,
            EffectKind::Shuffle(perm::QDUP_NONZERO)
        );
        assert_eq!(obs.0[3].effect.pushes, 2);
    }

    #[test]
    fn observer_sees_branch_resolution() {
        struct Taken(Vec<bool>);
        impl ExecObserver for Taken {
            fn event(&mut self, ev: &ExecEvent) {
                if matches!(ev.effect.kind, EffectKind::CondBranch) {
                    self.0.push(ev.effect.taken);
                }
            }
        }
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push(Inst::Lit(0));
        b.branch_if_zero(l); // taken
        b.bind(l).unwrap();
        b.push(Inst::Lit(5));
        let l2 = b.new_label();
        b.branch_if_zero(l2); // not taken
        b.bind(l2).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        let mut obs = Taken(Vec::new());
        run_with_observer(&p, &mut m, 1000, &mut obs).unwrap();
        assert_eq!(obs.0, vec![true, false]);
    }

    #[test]
    fn observer_can_cancel_execution() {
        struct CancelAfter(u64);
        impl ExecObserver for CancelAfter {
            fn event(&mut self, _ev: &ExecEvent) {}
            fn poll_cancel(&mut self) -> bool {
                if self.0 == 0 {
                    return true;
                }
                self.0 -= 1;
                false
            }
        }
        // an infinite loop only the cancellation hook can stop
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::Nop);
        b.branch(top);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        let mut obs = CancelAfter(10);
        assert!(matches!(
            run_with_observer(&p, &mut m, u64::MAX, &mut obs).unwrap_err(),
            VmError::Cancelled { .. }
        ));
    }

    #[test]
    fn stack_limit_is_enforced() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::Lit(1));
        b.branch(top);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        m.stack_limit = 100;
        assert!(matches!(
            run(&p, &mut m, 10_000).unwrap_err(),
            VmError::StackOverflow { .. }
        ));
    }
}
