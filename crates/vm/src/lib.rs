//! A virtual stack machine substrate for *Stack Caching for Interpreters*
//! (M. Anton Ertl, PLDI 1995).
//!
//! This crate provides everything the stack-caching machinery in
//! `stackcache-core` runs on:
//!
//! * a Forth-flavoured [instruction set](Inst) in which every instruction
//!   declares its [stack effect](Effect) — the paper's unit of analysis,
//! * [`Machine`] state (data stack, return stack, byte-addressable memory),
//! * [`Program`]s and a label-based [`ProgramBuilder`],
//! * a checked [reference interpreter](exec::run_with_observer) that streams
//!   per-instruction [`exec::ExecEvent`]s to instrumentation,
//! * a [verifier](verify()) and [control-flow graph](Cfg),
//! * the wall-clock [baseline](interp::run_baseline) and
//!   [top-of-stack](interp::run_tos) interpreters (Fig. 11 and Fig. 12),
//! * the [dispatch-technique micro-interpreters](dispatch) of Section 2.1.
//!
//! # Examples
//!
//! Build and run a small program:
//!
//! ```
//! use stackcache_vm::{exec, program_of, Inst, Machine};
//!
//! let program = program_of(&[Inst::Lit(6), Inst::Lit(7), Inst::Mul]);
//! let mut machine = Machine::new();
//! exec::run(&program, &mut machine, 1_000)?;
//! assert_eq!(machine.stack(), &[42]);
//! # Ok::<(), stackcache_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asm;
mod checks;
pub mod depth;
pub mod dispatch;
mod error;
pub mod exec;
pub mod fold;
pub mod fusion;
mod inst;
pub mod interp;
mod machine;
pub mod peephole;
mod program;
pub mod rng;
pub mod stepper;
mod verify;

pub use checks::Checks;
pub use error::VmError;
pub use exec::{ExecEvent, ExecObserver, Outcome, ResolvedEffect};
pub use fusion::{fuse, FusedProgram, FusedStats, FusionPlan, Quickened};
pub use inst::{perm, Cell, Effect, EffectKind, Inst, CELL_BYTES, FALSE, TRUE};
pub use machine::{Machine, DEFAULT_MEMORY, DEFAULT_RSTACK_LIMIT, DEFAULT_STACK_LIMIT};
pub use program::{program_of, BuildError, Label, Program, ProgramBuilder};
pub use rng::Rng;
pub use verify::{verify, Block, Cfg, VerifyError};
