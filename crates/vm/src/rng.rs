//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace runs fully offline, so workload generation, fuzzing, and
//! the differential-testing harness use this self-contained generator
//! instead of an external crate. It is SplitMix64 (Steele, Lea & Flood,
//! OOPSLA 2014): a 64-bit counter scrambled by a finalizer with full
//! avalanche. Streams are reproducible across platforms and releases —
//! recorded seeds in tests and corpus files stay meaningful forever.
//!
//! Not cryptographic; not for anything but test and workload generation.

/// A seeded deterministic generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    #[allow(clippy::unreadable_literal)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next value as a signed cell (full `i64` range).
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift range reduction (Lemire); the slight modulo-free
        // bias is far below anything a test generator can observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be within [0, 1]"
        );
        // 53 bits of the stream give an exact dyadic comparison.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let mut c = Rng::new(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Published test vector for seed 1234567.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let v = r.range_i64(-10_000, 10_000);
            assert!((-10_000..10_000).contains(&v));
        }
    }
}
