//! Interprocedural stack-depth analysis.
//!
//! Static stack caching leans on a property that well-formed stack code
//! has anyway: every program point is reached with a consistent stack
//! discipline. This module checks that property ahead of time — it
//! computes, for every *word* (call target) of a program, the net
//! data-stack effect of calling it, verifies that all control-flow paths
//! agree, and reports the most negative relative depth each word reaches
//! (how many cells it consumes from its caller).
//!
//! The analysis is a fixpoint over the call graph: a word's effect is
//! `Unknown` until every word it calls has resolved (directly or mutually
//! recursive words stay `Unknown` — their effect is not derivable without
//! solving path equations); paths that disagree make the word
//! `Inconsistent`, which usually indicates a stack bug in the source
//! program.

use std::collections::{BTreeMap, HashMap};

use crate::inst::{EffectKind, Inst};
use crate::program::Program;

/// The derived stack effect of one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordEffect {
    /// All paths agree: calling the word changes the depth by `net`, and
    /// it reads at most `consumes` cells belonging to the caller.
    Net {
        /// Net depth change of a call.
        net: i32,
        /// Deepest relative reach below the entry depth.
        consumes: u32,
    },
    /// Not derivable (recursion, `execute`, `?dup`, or an unresolved
    /// callee).
    Unknown,
    /// Control-flow paths disagree on the depth. Either a stack bug, or
    /// the deliberate Forth variable-arity idiom (`( x -- y true | false )`)
    /// — callers of such words inherit the flag.
    Inconsistent,
}

/// Analysis result for a program.
#[derive(Debug, Clone)]
pub struct DepthAnalysis {
    /// Effect per word entry point (instruction index), sorted.
    pub words: BTreeMap<usize, WordEffect>,
}

impl DepthAnalysis {
    /// `true` if no word is [`WordEffect::Inconsistent`].
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        !self
            .words
            .values()
            .any(|e| matches!(e, WordEffect::Inconsistent))
    }

    /// The effect of the word starting at `entry`.
    #[must_use]
    pub fn effect_of(&self, entry: usize) -> Option<WordEffect> {
        self.words.get(&entry).copied()
    }
}

/// Per-instruction net effect, or `None` when it is data-dependent.
fn inst_net(inst: &Inst) -> Option<i32> {
    let eff = inst.effect();
    match eff.kind {
        EffectKind::DynamicShuffle => None, // ?dup
        _ => Some(eff.net()),
    }
}

/// Analyze every word of `program` (call targets plus the entry point).
///
/// Words are analyzed over the blocks reachable from their entry without
/// following call edges; `execute` and `?dup` make a word `Unknown`.
#[must_use]
pub fn analyze(program: &Program) -> DepthAnalysis {
    let insts = program.insts();
    let mut entries: Vec<usize> = insts
        .iter()
        .filter_map(|i| match i {
            Inst::Call(t) => Some(*t as usize),
            _ => None,
        })
        .collect();
    entries.push(program.entry());
    entries.sort_unstable();
    entries.dedup();

    let mut effects: HashMap<usize, WordEffect> =
        entries.iter().map(|&e| (e, WordEffect::Unknown)).collect();

    // fixpoint: effects only move Unknown -> Net/Inconsistent
    for _ in 0..=entries.len() {
        let mut changed = false;
        for &entry in &entries {
            if !matches!(effects[&entry], WordEffect::Unknown) {
                continue;
            }
            let resolved = analyze_word(insts, entry, &effects);
            if !matches!(resolved, WordEffect::Unknown) {
                effects.insert(entry, resolved);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    DepthAnalysis {
        words: effects.into_iter().collect(),
    }
}

/// Walk one word with a depth-propagating worklist.
fn analyze_word(insts: &[Inst], entry: usize, effects: &HashMap<usize, WordEffect>) -> WordEffect {
    // relative depth at each visited instruction
    let mut depth_at: HashMap<usize, i32> = HashMap::new();
    let mut work: Vec<(usize, i32)> = vec![(entry, 0)];
    let mut returns: Vec<i32> = Vec::new();
    let mut min_depth: i32 = 0;

    while let Some((mut ip, mut depth)) = work.pop() {
        loop {
            if ip >= insts.len() {
                return WordEffect::Inconsistent; // ran off the end
            }
            match depth_at.get(&ip) {
                Some(&d) if d == depth => break, // already visited, consistent
                Some(_) => return WordEffect::Inconsistent,
                None => {
                    depth_at.insert(ip, depth);
                }
            }
            let inst = insts[ip];
            match inst {
                Inst::Execute => return WordEffect::Unknown,
                Inst::Call(t) => {
                    match effects
                        .get(&(t as usize))
                        .copied()
                        .unwrap_or(WordEffect::Unknown)
                    {
                        WordEffect::Net { net, consumes } => {
                            min_depth = min_depth.min(depth - consumes as i32);
                            depth += net;
                            ip += 1;
                        }
                        WordEffect::Unknown => return WordEffect::Unknown,
                        WordEffect::Inconsistent => return WordEffect::Inconsistent,
                    }
                }
                Inst::Return => {
                    returns.push(depth);
                    break;
                }
                Inst::Halt => break,
                Inst::Branch(t) => {
                    ip = t as usize;
                }
                Inst::BranchIfZero(t) => {
                    depth -= 1;
                    min_depth = min_depth.min(depth);
                    work.push((t as usize, depth));
                    ip += 1;
                }
                Inst::QDoSetup(t) => {
                    depth -= 2;
                    min_depth = min_depth.min(depth);
                    work.push((t as usize, depth));
                    ip += 1;
                }
                Inst::LoopInc(t) => {
                    work.push((t as usize, depth));
                    ip += 1;
                    if ip >= insts.len() {
                        break;
                    }
                }
                Inst::PlusLoopInc(t) => {
                    depth -= 1;
                    min_depth = min_depth.min(depth);
                    work.push((t as usize, depth));
                    ip += 1;
                }
                other => match inst_net(&other) {
                    Some(net) => {
                        // consumption happens before production
                        min_depth = min_depth.min(depth - i32::from(other.effect().pops));
                        depth += net;
                        ip += 1;
                    }
                    None => return WordEffect::Unknown,
                },
            }
        }
    }

    returns.sort_unstable();
    returns.dedup();
    match returns.len() {
        0 => {
            // a word that only halts (the boot stub): treat as net 0
            WordEffect::Net {
                net: 0,
                consumes: min_depth.unsigned_abs(),
            }
        }
        1 => WordEffect::Net {
            net: returns[0],
            consumes: min_depth.unsigned_abs(),
        },
        _ => WordEffect::Inconsistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn square_program() -> (Program, usize) {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(3));
        b.call(w);
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        let entry = b.here();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        (b.finish().unwrap(), entry)
    }

    #[test]
    fn simple_word_effect() {
        let (p, w) = square_program();
        let a = analyze(&p);
        assert!(a.is_consistent());
        // square: ( n -- n^2 ): net 0, reads one caller cell
        assert_eq!(
            a.effect_of(w),
            Some(WordEffect::Net {
                net: 0,
                consumes: 1
            })
        );
        // main consumes nothing from "its caller"
        assert_eq!(
            a.effect_of(p.entry()),
            Some(WordEffect::Net {
                net: 0,
                consumes: 0
            })
        );
    }

    #[test]
    fn word_with_branches_is_consistent() {
        // : sign 0< if -1 else 1 then ;  net 0
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(-5));
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        let entry = b.here();
        b.push(Inst::ZeroLt);
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.branch_if_zero(else_l);
        b.push(Inst::Lit(-1));
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::Lit(1));
        b.bind(end_l).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let a = analyze(&p);
        assert!(a.is_consistent());
        assert_eq!(
            a.effect_of(entry),
            Some(WordEffect::Net {
                net: 0,
                consumes: 1
            })
        );
    }

    #[test]
    fn unbalanced_arms_are_flagged() {
        // if-arm pushes two, else-arm pushes one: inconsistent join
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(1));
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        let entry = b.here();
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.branch_if_zero(else_l);
        b.push(Inst::Lit(1));
        b.push(Inst::Lit(2));
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::Lit(1));
        b.bind(end_l).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let a = analyze(&p);
        assert!(!a.is_consistent());
        assert_eq!(a.effect_of(entry), Some(WordEffect::Inconsistent));
    }

    #[test]
    fn calls_compose_transitively() {
        // : a 1 ; : b a a + ; : c b b * drop ;
        let mut b = ProgramBuilder::new();
        let (wa, wb, wc) = (b.new_label(), b.new_label(), b.new_label());
        b.entry_here();
        b.call(wc);
        b.push(Inst::Halt);
        b.bind(wa).unwrap();
        let ea = b.here();
        b.push(Inst::Lit(1));
        b.push(Inst::Return);
        b.bind(wb).unwrap();
        let eb = b.here();
        b.call(wa);
        b.call(wa);
        b.push(Inst::Add);
        b.push(Inst::Return);
        b.bind(wc).unwrap();
        let ec = b.here();
        b.call(wb);
        b.call(wb);
        b.push(Inst::Mul);
        b.push(Inst::Drop);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let a = analyze(&p);
        assert!(a.is_consistent());
        assert_eq!(
            a.effect_of(ea),
            Some(WordEffect::Net {
                net: 1,
                consumes: 0
            })
        );
        assert_eq!(
            a.effect_of(eb),
            Some(WordEffect::Net {
                net: 1,
                consumes: 0
            })
        );
        assert_eq!(
            a.effect_of(ec),
            Some(WordEffect::Net {
                net: 0,
                consumes: 0
            })
        );
    }

    #[test]
    fn recursion_is_unknown() {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(5));
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        let entry = b.here();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        let done = b.new_label();
        b.branch_if_zero(done);
        b.call(w); // recursive
        b.bind(done).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let a = analyze(&p);
        assert_eq!(a.effect_of(entry), Some(WordEffect::Unknown));
    }

    #[test]
    fn loops_are_depth_neutral() {
        // : sum 0 10 0 (do) i + (loop) ;  -- net +1
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        let entry = b.here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let a = analyze(&p);
        assert!(a.is_consistent());
        assert_eq!(
            a.effect_of(entry),
            Some(WordEffect::Net {
                net: 1,
                consumes: 0
            })
        );
    }
}
