//! Runtime depth-check levels for the execution engines.
//!
//! Every interpreter in the workspace guards each stack access with an
//! underflow check and each push with an overflow check. When a program
//! has been *proven* safe by static analysis (the `stackcache-analysis`
//! crate), those checks are pure overhead: the proof guarantees they can
//! never fire. [`Checks`] selects how many of them an engine compiles in;
//! engines monomorphize one loop per level, so the elided checks cost
//! nothing at all — not even a predictable branch.
//!
//! The levels mirror the analysis verdicts:
//!
//! * [`Checks::Full`] — the default; every check present. Required for
//!   unproven programs and the only level with fully defined trap
//!   behaviour on *arbitrary* input programs.
//! * [`Checks::NoUnderflow`] — underflow checks elided, overflow checks
//!   kept. Sound for programs whose minimum stack depths are proven
//!   non-negative but whose maxima are unbounded (recursion): overflow
//!   traps still fire at exactly the same instruction as under `Full`.
//! * [`Checks::None`] — all depth checks elided. Sound only when both
//!   minimum and maximum depths are proven within the machine's limits.
//!
//! Running a *non*-proven program above `Full` is a logic error. The
//! engines stay in safe Rust, so the failure mode is a Rust panic (index
//! out of bounds / arithmetic overflow in debug builds) rather than
//! undefined behaviour — defence in depth against analyzer bugs, not a
//! supported mode of operation.

/// How much runtime depth checking an engine performs.
///
/// See the [module documentation](self) for the soundness contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Checks {
    /// Every stack access is depth-checked (the default).
    #[default]
    Full,
    /// Underflow checks elided; overflow checks kept.
    NoUnderflow,
    /// All depth checks elided.
    None,
}

/// Mode constant: all checks on.
pub(crate) const CHECK_FULL: u8 = 0;
/// Mode constant: underflow checks off.
pub(crate) const CHECK_NO_UNDERFLOW: u8 = 1;
/// Mode constant: all depth checks off.
pub(crate) const CHECK_NONE: u8 = 2;

impl Checks {
    /// `true` when this level performs underflow checks.
    #[must_use]
    pub fn checks_underflow(self) -> bool {
        matches!(self, Checks::Full)
    }

    /// `true` when this level performs overflow checks.
    #[must_use]
    pub fn checks_overflow(self) -> bool {
        !matches!(self, Checks::None)
    }

    /// Short lower-case name (`full` / `no-underflow` / `none`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Checks::Full => "full",
            Checks::NoUnderflow => "no-underflow",
            Checks::None => "none",
        }
    }
}
