//! Instruction-dispatch techniques (Section 2.1, Fig. 7).
//!
//! The paper compares three ways of fetching, decoding and starting the next
//! virtual-machine instruction: *direct threading*, a giant *switch*, and
//! *direct call threading*. Direct threading relies on first-class labels
//! (GNU C's labels-as-values / computed goto), which stable Rust does not
//! have; the closest faithful analogues, implemented here over a common
//! micro instruction set, are:
//!
//! * [`run_switch`] — a `loop { match opcode }` interpreter: the exact
//!   analogue of the paper's switch method (Fig. 2),
//! * [`run_token`] — opcode bytes indexing a function-pointer table, one
//!   Rust function per instruction: the analogue of direct call threading
//!   (Fig. 3),
//! * [`run_direct`] — *pre-decoded* code: a vector of function pointers
//!   executed without any decode step, the analogue of direct threading
//!   (Fig. 1/8) minus the computed goto.
//!
//! All three run the same program representation with identical per-
//! instruction work, so wall-clock differences isolate the dispatch cost.
//! [`PAPER_CYCLES`] records Fig. 7 for side-by-side reporting.

/// An inclusive cycle range `(low, high)`.
pub type CycleRange = (u32, u32);

/// Dispatch overhead in cycles as reported in Fig. 7 of the paper,
/// as `(technique, R3000 range, R4000 range)`.
pub const PAPER_CYCLES: &[(&str, CycleRange, CycleRange)] = &[
    ("direct threading", (3, 4), (5, 7)),
    ("switch", (12, 13), (18, 19)),
    ("direct call threading", (9, 10), (17, 18)),
];

/// Maximum micro-machine stack depth.
const STACK: usize = 64;

/// The micro instruction set used for dispatch measurements.
///
/// Deliberately tiny: just enough to write compute-light loops whose run
/// time is dominated by dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroInst {
    /// Push a literal.
    Lit(i64),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push `a - b`.
    Sub,
    /// Pop two, push their xor.
    Xor,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the two top items.
    Swap,
    /// Decrement the top of stack.
    OneMinus,
    /// Pop; branch to the target if the value was non-zero.
    BranchNZ(u32),
    /// Stop; the result is the current top of stack (or 0 when empty).
    Halt,
}

impl MicroInst {
    fn opcode(self) -> u8 {
        match self {
            MicroInst::Lit(_) => 0,
            MicroInst::Add => 1,
            MicroInst::Sub => 2,
            MicroInst::Xor => 3,
            MicroInst::Dup => 4,
            MicroInst::Drop => 5,
            MicroInst::Swap => 6,
            MicroInst::OneMinus => 7,
            MicroInst::BranchNZ(_) => 8,
            MicroInst::Halt => 9,
        }
    }

    fn arg(self) -> i64 {
        match self {
            MicroInst::Lit(n) => n,
            MicroInst::BranchNZ(t) => i64::from(t),
            _ => 0,
        }
    }
}

/// A canonical dispatch-heavy micro program: counts `iters` down to zero.
///
/// Executes `3 * iters + 3` instructions, three per loop iteration, each
/// with trivial computation — run time is dominated by dispatch.
#[must_use]
pub fn countdown(iters: u32) -> Vec<MicroInst> {
    vec![
        MicroInst::Lit(i64::from(iters)),
        // loop:
        MicroInst::OneMinus,
        MicroInst::Dup,
        MicroInst::BranchNZ(1),
        MicroInst::Drop,
        MicroInst::Halt,
    ]
}

/// A micro program with a more varied instruction mix (still loop-shaped).
///
/// Per iteration: literal pushes, arithmetic, shuffles and a conditional
/// branch, roughly matching the dynamic mix of a small interpreter loop.
#[must_use]
pub fn arith_mix(iters: u32) -> Vec<MicroInst> {
    vec![
        MicroInst::Lit(0),                // 0: checksum
        MicroInst::Lit(i64::from(iters)), // 1: counter
        // loop: ( checksum counter )
        MicroInst::Dup,         // 2  ( c n n )
        MicroInst::Lit(3),      // 3  ( c n n 3 )
        MicroInst::Xor,         // 4  ( c n x )
        MicroInst::Drop,        // 5  ( c n )
        MicroInst::Swap,        // 6  ( n c )
        MicroInst::Lit(1),      // 7  ( n c 1 )
        MicroInst::Add,         // 8  ( n c+1 )
        MicroInst::Swap,        // 9  ( c+1 n )
        MicroInst::OneMinus,    // 10 ( c+1 n-1 )
        MicroInst::Dup,         // 11
        MicroInst::BranchNZ(2), // 12
        MicroInst::Drop,        // 13 ( c )
        MicroInst::Halt,        // 14
    ]
}

/// Execute with switch (match) dispatch. Returns the final top of stack.
///
/// # Panics
///
/// Panics on stack under/overflow or an out-of-range branch target; the
/// micro machine is for trusted, generated programs only.
#[must_use]
pub fn run_switch(code: &[MicroInst]) -> i64 {
    let mut stack = [0i64; STACK];
    let mut sp = 0usize; // number of used slots
    let mut ip = 0usize;
    loop {
        let inst = code[ip];
        ip += 1;
        match inst {
            MicroInst::Lit(n) => {
                stack[sp] = n;
                sp += 1;
            }
            MicroInst::Add => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].wrapping_add(stack[sp]);
            }
            MicroInst::Sub => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].wrapping_sub(stack[sp]);
            }
            MicroInst::Xor => {
                sp -= 1;
                stack[sp - 1] ^= stack[sp];
            }
            MicroInst::Dup => {
                stack[sp] = stack[sp - 1];
                sp += 1;
            }
            MicroInst::Drop => {
                sp -= 1;
            }
            MicroInst::Swap => {
                stack.swap(sp - 1, sp - 2);
            }
            MicroInst::OneMinus => {
                stack[sp - 1] = stack[sp - 1].wrapping_sub(1);
            }
            MicroInst::BranchNZ(t) => {
                sp -= 1;
                if stack[sp] != 0 {
                    ip = t as usize;
                }
            }
            MicroInst::Halt => {
                return if sp > 0 { stack[sp - 1] } else { 0 };
            }
        }
    }
}

/// Shared state of the function-pointer interpreters.
struct FnState<'a> {
    ops: &'a [u8],
    args: &'a [i64],
    stack: [i64; STACK],
    sp: usize,
    ip: usize,
    halted: bool,
}

type OpFn = fn(&mut FnState<'_>);

fn op_lit(s: &mut FnState<'_>) {
    s.stack[s.sp] = s.args[s.ip - 1];
    s.sp += 1;
}
fn op_add(s: &mut FnState<'_>) {
    s.sp -= 1;
    s.stack[s.sp - 1] = s.stack[s.sp - 1].wrapping_add(s.stack[s.sp]);
}
fn op_sub(s: &mut FnState<'_>) {
    s.sp -= 1;
    s.stack[s.sp - 1] = s.stack[s.sp - 1].wrapping_sub(s.stack[s.sp]);
}
fn op_xor(s: &mut FnState<'_>) {
    s.sp -= 1;
    s.stack[s.sp - 1] ^= s.stack[s.sp];
}
fn op_dup(s: &mut FnState<'_>) {
    s.stack[s.sp] = s.stack[s.sp - 1];
    s.sp += 1;
}
fn op_drop(s: &mut FnState<'_>) {
    s.sp -= 1;
}
fn op_swap(s: &mut FnState<'_>) {
    s.stack.swap(s.sp - 1, s.sp - 2);
}
fn op_one_minus(s: &mut FnState<'_>) {
    s.stack[s.sp - 1] = s.stack[s.sp - 1].wrapping_sub(1);
}
fn op_branch_nz(s: &mut FnState<'_>) {
    s.sp -= 1;
    if s.stack[s.sp] != 0 {
        s.ip = s.args[s.ip - 1] as usize;
    }
}
fn op_halt(s: &mut FnState<'_>) {
    s.halted = true;
}

static TABLE: [OpFn; 10] = [
    op_lit,
    op_add,
    op_sub,
    op_xor,
    op_dup,
    op_drop,
    op_swap,
    op_one_minus,
    op_branch_nz,
    op_halt,
];

/// Execute with token dispatch: one function per instruction, selected by
/// indexing a function-pointer table with an opcode byte — the analogue of
/// the paper's *direct call threading*.
///
/// # Panics
///
/// Panics on stack under/overflow or an out-of-range branch target.
#[must_use]
pub fn run_token(code: &[MicroInst]) -> i64 {
    let ops: Vec<u8> = code.iter().map(|i| i.opcode()).collect();
    let args: Vec<i64> = code.iter().map(|i| i.arg()).collect();
    let mut s = FnState {
        ops: &ops,
        args: &args,
        stack: [0; STACK],
        sp: 0,
        ip: 0,
        halted: false,
    };
    while !s.halted {
        let op = s.ops[s.ip];
        s.ip += 1;
        TABLE[op as usize](&mut s);
    }
    if s.sp > 0 {
        s.stack[s.sp - 1]
    } else {
        0
    }
}

/// Execute with pre-decoded dispatch: the code is a vector of function
/// pointers fetched and called directly, with no decode step — the closest
/// stable-Rust analogue of the paper's *direct threading*.
///
/// # Panics
///
/// Panics on stack under/overflow or an out-of-range branch target.
#[must_use]
pub fn run_direct(code: &[MicroInst]) -> i64 {
    let funcs: Vec<OpFn> = code.iter().map(|i| TABLE[i.opcode() as usize]).collect();
    let args: Vec<i64> = code.iter().map(|i| i.arg()).collect();
    let mut s = FnState {
        ops: &[],
        args: &args,
        stack: [0; STACK],
        sp: 0,
        ip: 0,
        halted: false,
    };
    while !s.halted {
        let f = funcs[s.ip];
        s.ip += 1;
        f(&mut s);
    }
    if s.sp > 0 {
        s.stack[s.sp - 1]
    } else {
        0
    }
}

/// Number of instructions a run of `code` executes before halting, using
/// the switch engine. Used by benches to report per-dispatch costs.
#[must_use]
pub fn executed_count(code: &[MicroInst]) -> u64 {
    let mut stack = [0i64; STACK];
    let mut sp = 0usize;
    let mut ip = 0usize;
    let mut n = 0u64;
    loop {
        let inst = code[ip];
        ip += 1;
        n += 1;
        match inst {
            MicroInst::Lit(v) => {
                stack[sp] = v;
                sp += 1;
            }
            MicroInst::Add => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].wrapping_add(stack[sp]);
            }
            MicroInst::Sub => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].wrapping_sub(stack[sp]);
            }
            MicroInst::Xor => {
                sp -= 1;
                stack[sp - 1] ^= stack[sp];
            }
            MicroInst::Dup => {
                stack[sp] = stack[sp - 1];
                sp += 1;
            }
            MicroInst::Drop => sp -= 1,
            MicroInst::Swap => stack.swap(sp - 1, sp - 2),
            MicroInst::OneMinus => stack[sp - 1] = stack[sp - 1].wrapping_sub(1),
            MicroInst::BranchNZ(t) => {
                sp -= 1;
                if stack[sp] != 0 {
                    ip = t as usize;
                }
            }
            MicroInst::Halt => return n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_on_countdown() {
        let p = countdown(1000);
        assert_eq!(run_switch(&p), 0);
        assert_eq!(run_token(&p), 0);
        assert_eq!(run_direct(&p), 0);
    }

    #[test]
    fn all_engines_agree_on_arith_mix() {
        let p = arith_mix(500);
        let a = run_switch(&p);
        let b = run_token(&p);
        let c = run_direct(&p);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, 500); // checksum counts iterations
    }

    #[test]
    fn countdown_executes_expected_count() {
        assert_eq!(executed_count(&countdown(10)), 3 * 10 + 3);
    }

    #[test]
    fn engines_agree_on_adhoc_programs() {
        let p = vec![
            MicroInst::Lit(5),
            MicroInst::Lit(7),
            MicroInst::Add,
            MicroInst::Dup,
            MicroInst::Sub,
            MicroInst::Lit(9),
            MicroInst::Swap,
            MicroInst::Drop,
            MicroInst::Halt,
        ];
        assert_eq!(run_switch(&p), 9);
        assert_eq!(run_token(&p), 9);
        assert_eq!(run_direct(&p), 9);
    }

    #[test]
    fn paper_cycles_table_is_complete() {
        assert_eq!(PAPER_CYCLES.len(), 3);
        for (name, r3000, r4000) in PAPER_CYCLES {
            assert!(!name.is_empty());
            assert!(r3000.0 <= r3000.1);
            assert!(r4000.0 <= r4000.1);
        }
    }
}
