//! Constant-folding hooks: the pure value semantics of the computational
//! instructions, factored out of the interpreter loop.
//!
//! Static analyses (the abstract interpreter and the fuel-bound pass in
//! `stackcache-analysis`) must agree with the executing engines on what
//! every arithmetic, logic, and comparison instruction computes — a
//! divergence there would make a "proof" admit a program whose checked and
//! unchecked runs differ. This module is the single source of truth: the
//! folding functions mirror [`exec`](crate::exec) exactly, instruction by
//! instruction, and a test in this module pins them against the reference
//! interpreter over the full binary/unary instruction set.
//!
//! The only intentional deviation is overflowing division
//! (`i64::MIN / -1`), which the folders define as wrapping rather than
//! panicking so an analysis can fold any operand pair it encounters.

use crate::inst::{Cell, Inst, CELL_BYTES, FALSE, TRUE};

fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Floored division, wrapping on the single overflowing case.
#[must_use]
pub fn wrapping_div_euclid(a: Cell, b: Cell) -> Cell {
    if a == Cell::MIN && b == -1 {
        a
    } else {
        a.div_euclid(b)
    }
}

/// Floored remainder, wrapping on the single overflowing case.
#[must_use]
pub fn wrapping_rem_euclid(a: Cell, b: Cell) -> Cell {
    if a == Cell::MIN && b == -1 {
        0
    } else {
        a.rem_euclid(b)
    }
}

/// Fold a binary computational instruction over concrete operands
/// (`a` below `b` on the stack).
///
/// Returns `None` when the instruction is not a pure binary operation, or
/// when it would trap (division by zero).
#[must_use]
pub fn fold2(inst: Inst, a: Cell, b: Cell) -> Option<Cell> {
    let v = match inst {
        Inst::Add => a.wrapping_add(b),
        Inst::Sub => a.wrapping_sub(b),
        Inst::Mul => a.wrapping_mul(b),
        Inst::Div => {
            if b == 0 {
                return None;
            }
            wrapping_div_euclid(a, b)
        }
        Inst::Mod => {
            if b == 0 {
                return None;
            }
            wrapping_rem_euclid(a, b)
        }
        Inst::And => a & b,
        Inst::Or => a | b,
        Inst::Xor => a ^ b,
        Inst::Lshift => ((a as u64) << (b as u64 & 63)) as Cell,
        Inst::Rshift => ((a as u64) >> (b as u64 & 63)) as Cell,
        Inst::Min => a.min(b),
        Inst::Max => a.max(b),
        Inst::Eq => flag(a == b),
        Inst::Ne => flag(a != b),
        Inst::Lt => flag(a < b),
        Inst::Gt => flag(a > b),
        Inst::Le => flag(a <= b),
        Inst::Ge => flag(a >= b),
        Inst::ULt => flag((a as u64) < (b as u64)),
        Inst::UGt => flag((a as u64) > (b as u64)),
        _ => return None,
    };
    Some(v)
}

/// Fold a unary computational instruction over a concrete operand.
///
/// Returns `None` when the instruction is not a pure unary operation.
#[must_use]
pub fn fold1(inst: Inst, a: Cell) -> Option<Cell> {
    let v = match inst {
        Inst::Negate => a.wrapping_neg(),
        Inst::Invert => !a,
        Inst::Abs => a.wrapping_abs(),
        Inst::OnePlus => a.wrapping_add(1),
        Inst::OneMinus => a.wrapping_sub(1),
        Inst::TwoStar => a.wrapping_mul(2),
        Inst::TwoSlash => a >> 1,
        Inst::ZeroEq => flag(a == 0),
        Inst::ZeroNe => flag(a != 0),
        Inst::ZeroLt => flag(a < 0),
        Inst::ZeroGt => flag(a > 0),
        Inst::CellPlus => a.wrapping_add(CELL_BYTES as Cell),
        Inst::Cells => a.wrapping_mul(CELL_BYTES as Cell),
        Inst::CharPlus => a.wrapping_add(1),
        _ => return None,
    };
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::machine::Machine;
    use crate::program::program_of;

    const SAMPLES: &[Cell] = &[
        0,
        1,
        -1,
        2,
        -2,
        7,
        63,
        64,
        255,
        -256,
        Cell::MAX,
        Cell::MIN + 1,
    ];

    #[test]
    fn fold2_matches_the_reference_interpreter() {
        for inst in Inst::all() {
            let eff = inst.effect();
            if eff.pops != 2 || eff.pushes != 1 || fold2(inst, 1, 1).is_none() {
                continue;
            }
            for &a in SAMPLES {
                for &b in SAMPLES {
                    let p = program_of(&[Inst::Lit(a), Inst::Lit(b), inst, Inst::Halt]);
                    let mut m = Machine::new();
                    match exec::run(&p, &mut m, 16) {
                        Ok(_) => {
                            assert_eq!(fold2(inst, a, b), Some(m.stack()[0]), "{inst} {a} {b}");
                        }
                        Err(_) => assert_eq!(fold2(inst, a, b), None, "{inst} {a} {b}"),
                    }
                }
            }
        }
    }

    #[test]
    fn fold1_matches_the_reference_interpreter() {
        for inst in Inst::all() {
            let eff = inst.effect();
            if eff.pops != 1 || eff.pushes != 1 || fold1(inst, 1).is_none() {
                continue;
            }
            for &a in SAMPLES {
                let p = program_of(&[Inst::Lit(a), inst, Inst::Halt]);
                let mut m = Machine::new();
                exec::run(&p, &mut m, 16).unwrap();
                assert_eq!(fold1(inst, a), Some(m.stack()[0]), "{inst} {a}");
            }
        }
    }

    #[test]
    fn division_folds_wrap_instead_of_trapping() {
        assert_eq!(wrapping_div_euclid(Cell::MIN, -1), Cell::MIN);
        assert_eq!(wrapping_rem_euclid(Cell::MIN, -1), 0);
        assert_eq!(fold2(Inst::Div, 7, 0), None);
        assert_eq!(fold2(Inst::Mod, 7, 0), None);
    }
}
