//! Resumable block execution: the interpreter half of a mixed-mode
//! (native + interpreted) engine.
//!
//! A template JIT executes whole basic blocks natively and must be able
//! to hand control back to the interpreter at an *arbitrary* instruction
//! boundary — on an unsupported opcode, a potential trap, or a fuel
//! budget that might expire mid-block. [`run_span`] is that bridge: it
//! interprets from a given `ip` over externally-owned flat stack state
//! ([`FlatStacks`]), charging an externally-owned fuel counter, and stops
//! as soon as control leaves straight-line code (or a caller-supplied
//! block boundary is reached). Trap and fuel semantics are
//! instruction-exact and identical to [`crate::interp::run_baseline`]:
//! the two are cross-validated in tests by chopping reference runs into
//! spans at every block boundary.

use crate::checks::{Checks, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};
use crate::error::VmError;
use crate::inst::{Cell, Inst, CELL_BYTES, FALSE, TRUE};
use crate::machine::Machine;
use crate::program::Program;

/// Flat interpreter stack state, owned by the caller so it survives
/// across spans (and across native block executions in a JIT driver).
///
/// `buf[..sp]` / `rbuf[..rsp]` are the live data and return stacks,
/// bottom first — the same dense representation the wall-clock
/// interpreters use internally. `limit`/`rlimit` carry the machine's
/// depth limits with the interpreters' `1 << 20` clamp already applied,
/// and equal the buffer lengths.
#[derive(Debug, Clone)]
pub struct FlatStacks {
    /// Data-stack cells; `buf[..sp]` are live.
    pub buf: Vec<Cell>,
    /// Data-stack depth.
    pub sp: usize,
    /// Return-stack cells; `rbuf[..rsp]` are live.
    pub rbuf: Vec<Cell>,
    /// Return-stack depth.
    pub rsp: usize,
    /// Maximum data-stack depth (clamped); equals `buf.len()`.
    pub limit: usize,
    /// Maximum return-stack depth (clamped); equals `rbuf.len()`.
    pub rlimit: usize,
}

impl FlatStacks {
    /// Adopt `machine`'s current stacks into flat buffers, exactly as
    /// the wall-clock interpreters do on entry.
    #[must_use]
    pub fn from_machine(machine: &Machine) -> FlatStacks {
        let limit = machine.stack_limit().min(1 << 20);
        let rlimit = machine.rstack_limit().min(1 << 20);
        let mut buf = vec![0 as Cell; limit];
        let mut rbuf = vec![0 as Cell; rlimit];
        let sp = machine.stack().len();
        buf[..sp].copy_from_slice(machine.stack());
        let rsp = machine.rstack().len();
        rbuf[..rsp].copy_from_slice(machine.rstack());
        FlatStacks {
            buf,
            sp,
            rbuf,
            rsp,
            limit,
            rlimit,
        }
    }

    /// Publish the flat stacks back into `machine` (what `halt` does).
    pub fn publish(&self, machine: &mut Machine) {
        machine.set_stack(&self.buf[..self.sp]);
        machine.set_rstack(&self.rbuf[..self.rsp]);
    }
}

/// Why [`run_span`] stopped without trapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanExit {
    /// Control left the span (branch taken, call, return, or the `stop`
    /// boundary reached); execution continues at this instruction index.
    Continue(usize),
    /// `halt` executed; the stacks have been published into the machine.
    Halted,
}

/// Interpret from `ip` until control leaves straight-line code.
///
/// Executes instructions sequentially starting at `ip`, mutating `st`
/// (stacks), `machine` (memory + output) and `*executed` (fuel used so
/// far). Stops and returns [`SpanExit::Continue`] as soon as either
///
/// * a block-ending instruction executes (any branch, call, `execute`,
///   `exit`, loop-control word), reporting the instruction index control
///   transferred to, or
/// * the next sequential instruction index equals `stop` (pass the
///   current block's exclusive end, or `usize::MAX` to run to the next
///   control transfer).
///
/// The fuel check happens *before* each fetch against the caller's
/// running `executed` counter, so `FuelExhausted { ip }` carries exactly
/// the ip the plain interpreters would report — including at span entry.
///
/// # Errors
///
/// The same [`VmError`]s, at the same instruction, with the same check
/// gating per [`Checks`] level, as [`crate::interp::run_baseline_with_checks`].
#[allow(clippy::too_many_arguments)]
pub fn run_span(
    program: &Program,
    machine: &mut Machine,
    st: &mut FlatStacks,
    ip: usize,
    stop: usize,
    fuel: u64,
    executed: &mut u64,
    checks: Checks,
) -> Result<SpanExit, VmError> {
    match checks {
        Checks::Full => run_span_mode::<CHECK_FULL>(program, machine, st, ip, stop, fuel, executed),
        Checks::NoUnderflow => {
            run_span_mode::<CHECK_NO_UNDERFLOW>(program, machine, st, ip, stop, fuel, executed)
        }
        Checks::None => run_span_mode::<CHECK_NONE>(program, machine, st, ip, stop, fuel, executed),
    }
}

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

#[allow(clippy::too_many_lines)]
fn run_span_mode<const MODE: u8>(
    program: &Program,
    machine: &mut Machine,
    st: &mut FlatStacks,
    mut ip: usize,
    stop: usize,
    fuel: u64,
    executed: &mut u64,
) -> Result<SpanExit, VmError> {
    let insts = program.insts();
    let limit = st.limit;
    let rlimit = st.rlimit;
    let buf = &mut st.buf;
    let rbuf = &mut st.rbuf;
    let mut sp = st.sp;
    let mut rsp = st.rsp;

    // Persist sp/rsp into `st` on every exit path, including errors:
    // a trap must leave the logical stacks exactly as they were at the
    // faulting instruction so the caller can report or resume.
    macro_rules! fail {
        ($e:expr) => {{
            st.sp = sp;
            st.rsp = rsp;
            return Err($e);
        }};
    }

    macro_rules! pop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && sp == 0 {
                fail!(VmError::StackUnderflow { ip: $cur });
            }
            sp -= 1;
            buf[sp]
        }};
    }
    macro_rules! push {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && sp >= limit {
                fail!(VmError::StackOverflow { ip: $cur });
            }
            buf[sp] = $v;
            sp += 1;
        }};
    }
    macro_rules! need {
        ($cur:expr, $n:expr) => {
            if MODE == CHECK_FULL && sp < $n {
                fail!(VmError::StackUnderflow { ip: $cur });
            }
        };
    }
    macro_rules! rpop {
        ($cur:expr) => {{
            if MODE == CHECK_FULL && rsp == 0 {
                fail!(VmError::ReturnStackUnderflow { ip: $cur });
            }
            rsp -= 1;
            rbuf[rsp]
        }};
    }
    macro_rules! rpush {
        ($cur:expr, $v:expr) => {{
            if MODE < CHECK_NONE && rsp >= rlimit {
                fail!(VmError::ReturnStackOverflow { ip: $cur });
            }
            rbuf[rsp] = $v;
            rsp += 1;
        }};
    }
    macro_rules! binop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 2);
            let b = buf[sp - 1];
            let a = buf[sp - 2];
            buf[sp - 2] = $f(a, b);
            sp -= 1;
        }};
    }
    macro_rules! unop {
        ($cur:expr, $f:expr) => {{
            need!($cur, 1);
            buf[sp - 1] = $f(buf[sp - 1]);
        }};
    }
    macro_rules! leave {
        ($ip:expr) => {{
            st.sp = sp;
            st.rsp = rsp;
            return Ok(SpanExit::Continue($ip));
        }};
    }

    loop {
        if *executed >= fuel {
            fail!(VmError::FuelExhausted { ip });
        }
        let Some(&inst) = insts.get(ip) else {
            fail!(VmError::InstructionOutOfBounds { ip });
        };
        *executed += 1;
        let cur = ip;
        ip += 1;
        match inst {
            Inst::Lit(n) => push!(cur, n),
            Inst::Add => binop!(cur, |a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(cur, |a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(cur, |a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                if b == 0 {
                    fail!(VmError::DivisionByZero { ip: cur });
                }
                buf[sp - 2] = a.div_euclid(b);
                sp -= 1;
            }
            Inst::Mod => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                if b == 0 {
                    fail!(VmError::DivisionByZero { ip: cur });
                }
                buf[sp - 2] = a.rem_euclid(b);
                sp -= 1;
            }
            Inst::And => binop!(cur, |a: Cell, b: Cell| a & b),
            Inst::Or => binop!(cur, |a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(cur, |a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) << (b as u64 & 63))
                as Cell),
            Inst::Rshift => binop!(cur, |a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63))
                as Cell),
            Inst::Min => binop!(cur, |a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(cur, |a: Cell, b: Cell| a.max(b)),
            Inst::Eq => binop!(cur, |a, b| flag(a == b)),
            Inst::Ne => binop!(cur, |a, b| flag(a != b)),
            Inst::Lt => binop!(cur, |a, b| flag(a < b)),
            Inst::Gt => binop!(cur, |a, b| flag(a > b)),
            Inst::Le => binop!(cur, |a, b| flag(a <= b)),
            Inst::Ge => binop!(cur, |a, b| flag(a >= b)),
            Inst::ULt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(cur, |a: Cell, b: Cell| flag((a as u64) > (b as u64))),
            Inst::Negate => unop!(cur, |a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(cur, |a: Cell| !a),
            Inst::Abs => unop!(cur, |a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(cur, |a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(cur, |a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(cur, |a: Cell| a >> 1),
            Inst::ZeroEq => unop!(cur, |a| flag(a == 0)),
            Inst::ZeroNe => unop!(cur, |a| flag(a != 0)),
            Inst::ZeroLt => unop!(cur, |a| flag(a < 0)),
            Inst::ZeroGt => unop!(cur, |a| flag(a > 0)),
            Inst::CellPlus => unop!(cur, |a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(cur, |a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(cur, |a: Cell| a.wrapping_add(1)),
            Inst::Dup => {
                need!(cur, 1);
                let a = buf[sp - 1];
                push!(cur, a);
            }
            Inst::Drop => {
                need!(cur, 1);
                sp -= 1;
            }
            Inst::Swap => {
                need!(cur, 2);
                buf.swap(sp - 1, sp - 2);
            }
            Inst::Over => {
                need!(cur, 2);
                let a = buf[sp - 2];
                push!(cur, a);
            }
            Inst::Rot => {
                need!(cur, 3);
                let a = buf[sp - 3];
                buf[sp - 3] = buf[sp - 2];
                buf[sp - 2] = buf[sp - 1];
                buf[sp - 1] = a;
            }
            Inst::MinusRot => {
                need!(cur, 3);
                let c = buf[sp - 1];
                buf[sp - 1] = buf[sp - 2];
                buf[sp - 2] = buf[sp - 3];
                buf[sp - 3] = c;
            }
            Inst::Nip => {
                need!(cur, 2);
                buf[sp - 2] = buf[sp - 1];
                sp -= 1;
            }
            Inst::Tuck => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                buf[sp - 2] = b;
                buf[sp - 1] = a;
                push!(cur, b);
            }
            Inst::TwoDup => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoDrop => {
                need!(cur, 2);
                sp -= 2;
            }
            Inst::TwoSwap => {
                need!(cur, 4);
                buf.swap(sp - 4, sp - 2);
                buf.swap(sp - 3, sp - 1);
            }
            Inst::TwoOver => {
                need!(cur, 4);
                let a = buf[sp - 4];
                let b = buf[sp - 3];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::QDup => {
                need!(cur, 1);
                let a = buf[sp - 1];
                if a != 0 {
                    push!(cur, a);
                }
            }
            Inst::Pick => {
                need!(cur, 1);
                let u = buf[sp - 1];
                sp -= 1;
                if u < 0 || u as usize >= sp {
                    fail!(VmError::PickOutOfRange { ip: cur, index: u });
                }
                let v = buf[sp - 1 - u as usize];
                push!(cur, v);
            }
            Inst::Depth => {
                let d = sp as Cell;
                push!(cur, d);
            }
            Inst::ToR => {
                let a = pop!(cur);
                rpush!(cur, a);
            }
            Inst::FromR => {
                let a = rpop!(cur);
                push!(cur, a);
            }
            Inst::RFetch => {
                if MODE == CHECK_FULL && rsp == 0 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 1];
                push!(cur, a);
            }
            Inst::TwoToR => {
                need!(cur, 2);
                let b = buf[sp - 1];
                let a = buf[sp - 2];
                sp -= 2;
                rpush!(cur, a);
                rpush!(cur, b);
            }
            Inst::TwoFromR => {
                let b = rpop!(cur);
                let a = rpop!(cur);
                push!(cur, a);
                push!(cur, b);
            }
            Inst::TwoRFetch => {
                if MODE == CHECK_FULL && rsp < 2 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 2];
                let b = rbuf[rsp - 1];
                push!(cur, a);
                push!(cur, b);
            }
            Inst::Fetch => {
                need!(cur, 1);
                let addr = buf[sp - 1];
                match machine.load_cell(addr) {
                    Some(x) => buf[sp - 1] = x,
                    None => fail!(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Store => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let x = buf[sp - 2];
                sp -= 2;
                if !machine.store_cell(addr, x) {
                    fail!(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::CFetch => {
                need!(cur, 1);
                let addr = buf[sp - 1];
                match machine.load_byte(addr) {
                    Some(x) => buf[sp - 1] = x,
                    None => fail!(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::CStore => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let x = buf[sp - 2];
                sp -= 2;
                if !machine.store_byte(addr, x) {
                    fail!(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::PlusStore => {
                need!(cur, 2);
                let addr = buf[sp - 1];
                let n = buf[sp - 2];
                sp -= 2;
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => fail!(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Branch(t) => leave!(t as usize),
            Inst::BranchIfZero(t) => {
                let f = pop!(cur);
                if f == 0 {
                    leave!(t as usize);
                }
                leave!(ip);
            }
            Inst::Call(t) => {
                rpush!(cur, ip as Cell);
                leave!(t as usize);
            }
            Inst::Execute => {
                let token = pop!(cur);
                if token < 0 || token as usize >= insts.len() {
                    fail!(VmError::InvalidExecutionToken { ip: cur, token });
                }
                rpush!(cur, ip as Cell);
                leave!(token as usize);
            }
            Inst::Return => {
                let ret = rpop!(cur);
                if ret < 0 || ret as usize > insts.len() {
                    fail!(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                leave!(ret as usize);
            }
            Inst::Halt => {
                st.sp = sp;
                st.rsp = rsp;
                st.publish(machine);
                return Ok(SpanExit::Halted);
            }
            Inst::Nop => {}
            Inst::DoSetup => {
                need!(cur, 2);
                let start = buf[sp - 1];
                let limit_v = buf[sp - 2];
                sp -= 2;
                rpush!(cur, limit_v);
                rpush!(cur, start);
            }
            Inst::QDoSetup(t) => {
                need!(cur, 2);
                let start = buf[sp - 1];
                let limit_v = buf[sp - 2];
                sp -= 2;
                if limit_v == start {
                    leave!(t as usize);
                }
                rpush!(cur, limit_v);
                rpush!(cur, start);
                leave!(ip);
            }
            Inst::LoopInc(t) => {
                if MODE == CHECK_FULL && rsp < 2 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let index = rbuf[rsp - 1].wrapping_add(1);
                let limit_v = rbuf[rsp - 2];
                if index == limit_v {
                    rsp -= 2;
                    leave!(ip);
                }
                rbuf[rsp - 1] = index;
                leave!(t as usize);
            }
            Inst::PlusLoopInc(t) => {
                let step = pop!(cur);
                if MODE == CHECK_FULL && rsp < 2 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let old = rbuf[rsp - 1];
                let new = old.wrapping_add(step);
                let limit_v = rbuf[rsp - 2];
                let crossed = if step >= 0 {
                    old < limit_v && new >= limit_v
                } else {
                    old >= limit_v && new < limit_v
                };
                if crossed {
                    rsp -= 2;
                    leave!(ip);
                }
                rbuf[rsp - 1] = new;
                leave!(t as usize);
            }
            Inst::LoopI => {
                if MODE == CHECK_FULL && rsp == 0 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let i = rbuf[rsp - 1];
                push!(cur, i);
            }
            Inst::LoopJ => {
                if MODE == CHECK_FULL && rsp < 4 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                let j = rbuf[rsp - 3];
                push!(cur, j);
            }
            Inst::Unloop => {
                if MODE == CHECK_FULL && rsp < 2 {
                    fail!(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 2;
            }
            Inst::Emit => {
                let c = pop!(cur);
                machine.push_output_byte(c as u8);
            }
            Inst::Dot => {
                let n = pop!(cur);
                machine.push_output_number(n);
            }
            Inst::Type => {
                need!(cur, 2);
                let len = buf[sp - 1];
                let addr = buf[sp - 2];
                sp -= 2;
                if len < 0 {
                    fail!(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(byte) => machine.push_output_byte(byte as u8),
                        None => fail!(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                    }
                }
            }
            Inst::Cr => machine.push_output_byte(b'\n'),
        }
        if ip == stop {
            leave!(ip);
        }
    }
}

/// Run a whole program through [`run_span`], one span at a time.
///
/// Functionally identical to [`crate::interp::run_baseline_with_checks`]
/// — this is the pure-interpreter driver a JIT degrades to when native
/// execution is unavailable, and the oracle under which `run_span`'s
/// span-chopping is validated.
///
/// # Errors
///
/// Exactly those of [`crate::interp::run_baseline_with_checks`].
pub fn run_spans(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<crate::interp::RunStats, VmError> {
    let mut st = FlatStacks::from_machine(machine);
    let mut ip = program.entry();
    let mut executed = 0u64;
    loop {
        match run_span(
            program,
            machine,
            &mut st,
            ip,
            usize::MAX,
            fuel,
            &mut executed,
            checks,
        )? {
            SpanExit::Continue(next) => ip = next,
            SpanExit::Halted => return Ok(crate::interp::RunStats { executed }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_baseline;
    use crate::program::{program_of, ProgramBuilder};
    use crate::rng::Rng;

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let word = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(word);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        b.bind(word).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        b.finish().unwrap()
    }

    /// Spans chopped at every block boundary agree with the baseline
    /// interpreter on result, stacks, output, memory and fuel.
    fn check_span_agreement(p: &Program, fuel: u64) {
        let mut m_base = Machine::with_memory(256);
        let r_base = run_baseline(p, &mut m_base, fuel);

        let mut m_span = Machine::with_memory(256);
        let r_span = run_spans(p, &mut m_span, fuel, Checks::Full);

        match (&r_base, &r_span) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.executed, b.executed);
                assert_eq!(m_base.stack(), m_span.stack());
                assert_eq!(m_base.rstack(), m_span.rstack());
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("span interpreter diverged: {other:?}"),
        }
        assert_eq!(m_base.output(), m_span.output());
        assert_eq!(m_base.memory(), m_span.memory());
    }

    #[test]
    fn spans_agree_on_loops_and_calls() {
        check_span_agreement(&loop_program(), 1_000_000);
    }

    #[test]
    fn spans_agree_on_every_fuel_level() {
        let p = loop_program();
        // total run is ~60 instructions; sweep right across it
        for fuel in 0..80 {
            check_span_agreement(&p, fuel);
        }
    }

    #[test]
    fn spans_agree_on_traps() {
        for p in [
            program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div]),
            program_of(&[Inst::Add]),
            program_of(&[Inst::FromR]),
            program_of(&[Inst::Lit(1 << 40), Inst::Fetch]),
            program_of(&[Inst::Lit(1), Inst::Lit(9), Inst::Pick]),
            program_of(&[Inst::Lit(-1), Inst::Execute]),
        ] {
            check_span_agreement(&p, 1_000);
        }
    }

    #[test]
    fn stop_boundary_splits_straightline_code() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add, Inst::Halt]);
        let mut m = Machine::with_memory(64);
        let mut st = FlatStacks::from_machine(&m);
        let mut executed = 0;
        // stop after two instructions, mid-block
        let exit = run_span(&p, &mut m, &mut st, 0, 2, 100, &mut executed, Checks::Full).unwrap();
        assert_eq!(exit, SpanExit::Continue(2));
        assert_eq!(executed, 2);
        assert_eq!(&st.buf[..st.sp], &[1, 2]);
        // resume to completion
        let exit = run_span(
            &p,
            &mut m,
            &mut st,
            2,
            usize::MAX,
            100,
            &mut executed,
            Checks::Full,
        )
        .unwrap();
        assert_eq!(exit, SpanExit::Halted);
        assert_eq!(m.stack(), &[3]);
    }

    #[test]
    fn fuel_exhaustion_reports_entry_ip() {
        let p = program_of(&[Inst::Lit(1), Inst::Halt]);
        let mut m = Machine::with_memory(64);
        let mut st = FlatStacks::from_machine(&m);
        let mut executed = 5;
        let err = run_span(
            &p,
            &mut m,
            &mut st,
            1,
            usize::MAX,
            5,
            &mut executed,
            Checks::Full,
        )
        .unwrap_err();
        assert_eq!(err, VmError::FuelExhausted { ip: 1 });
    }

    #[test]
    fn random_programs_agree_with_baseline() {
        // light structured fuzz: arithmetic + shuffles + a branch or two
        let mut rng = Rng::new(0x5EED_5EED);
        let pool = [
            Inst::Lit(3),
            Inst::Lit(-7),
            Inst::Dup,
            Inst::Add,
            Inst::Swap,
            Inst::Over,
            Inst::Sub,
            Inst::Drop,
            Inst::Rot,
            Inst::Depth,
            Inst::Mul,
            Inst::ToR,
            Inst::FromR,
            Inst::Emit,
        ];
        for _ in 0..200 {
            let n = 3 + (rng.next_u64() % 12) as usize;
            let mut insts: Vec<Inst> = (0..n)
                .map(|_| pool[(rng.next_u64() as usize) % pool.len()])
                .collect();
            insts.push(Inst::Halt);
            let p = program_of(&insts);
            check_span_agreement(&p, 1_000);
            check_span_agreement(&p, 4);
        }
    }
}
