//! A peephole optimizer: increasing the semantic content of instructions
//! (Section 2.2).
//!
//! The paper's second lever on interpreter overhead — besides cheaper
//! dispatch and argument access — is executing *fewer, richer*
//! instructions: "Combining often-used instruction sequences into one
//! instruction is a popular technique, as well as specializing an
//! instruction for a frequent constant argument". This pass implements the
//! within-ISA portion of that idea: constant folding, strength reduction
//! into the specialized unary instructions (`1+`, `2*`, `0=`, …), and
//! cancellation of stack-manipulation pairs (`swap swap`, `dup drop`, …).
//!
//! All rewrites are semantics-preserving on trap-free programs, and
//! division traps are preserved exactly (division by a literal zero is
//! *not* folded away). The one divergence: a cancelled pair such as
//! `swap swap` no longer raises a stack-underflow trap on a too-shallow
//! stack — like any peephole optimizer, this pass assumes programs that
//! do not underflow. Rewrites never cross basic-block leaders, and branch
//! targets are remapped when instructions are removed.
//!
//! Programs that use [`execute`](crate::Inst::Execute) are returned
//! unchanged: execution tokens are literal instruction indices that the
//! optimizer cannot relocate.

use crate::inst::{Cell, Inst, CELL_BYTES, FALSE, TRUE};
use crate::program::{Program, ProgramBuilder};

/// Statistics from a [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Instructions in the input program.
    pub before: usize,
    /// Instructions in the optimized program.
    pub after: usize,
    /// Rewrite applications (folds, reductions, cancellations).
    pub rewrites: usize,
    /// `true` if the program used `execute` and was left unchanged.
    pub skipped_execute: bool,
}

fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Constant-fold `a op b` when the result (and trap behaviour) is static.
fn fold_binop(a: Cell, b: Cell, op: &Inst) -> Option<Cell> {
    Some(match op {
        Inst::Add => a.wrapping_add(b),
        Inst::Sub => a.wrapping_sub(b),
        Inst::Mul => a.wrapping_mul(b),
        Inst::Div if b != 0 => a.div_euclid(b),
        Inst::Mod if b != 0 => a.rem_euclid(b),
        Inst::And => a & b,
        Inst::Or => a | b,
        Inst::Xor => a ^ b,
        Inst::Lshift => ((a as u64) << (b as u64 & 63)) as Cell,
        Inst::Rshift => ((a as u64) >> (b as u64 & 63)) as Cell,
        Inst::Min => a.min(b),
        Inst::Max => a.max(b),
        Inst::Eq => flag(a == b),
        Inst::Ne => flag(a != b),
        Inst::Lt => flag(a < b),
        Inst::Gt => flag(a > b),
        Inst::Le => flag(a <= b),
        Inst::Ge => flag(a >= b),
        Inst::ULt => flag((a as u64) < (b as u64)),
        Inst::UGt => flag((a as u64) > (b as u64)),
        _ => return None,
    })
}

/// Strength-reduce `Lit(n); op` into a specialized unary instruction.
fn reduce_lit_op(n: Cell, op: &Inst) -> Option<Inst> {
    Some(match (n, op) {
        (1, Inst::Add) => Inst::OnePlus,
        (1, Inst::Sub) => Inst::OneMinus,
        (2, Inst::Mul) => Inst::TwoStar,
        (CELL, Inst::Add) => Inst::CellPlus,
        (CELL, Inst::Mul) => Inst::Cells,
        (0, Inst::Eq) => Inst::ZeroEq,
        (0, Inst::Ne) => Inst::ZeroNe,
        (0, Inst::Gt) => Inst::ZeroGt, // `n 0 >` tests n > 0
        (0, Inst::Lt) => Inst::ZeroLt, // `n 0 <` tests n < 0
        _ => return None,
    })
}

const CELL: Cell = CELL_BYTES as Cell;

/// Constant-fold a unary operation over a literal.
fn fold_unop(a: Cell, op: &Inst) -> Option<Cell> {
    Some(match op {
        Inst::Negate => a.wrapping_neg(),
        Inst::Invert => !a,
        Inst::Abs => a.wrapping_abs(),
        Inst::OnePlus => a.wrapping_add(1),
        Inst::OneMinus => a.wrapping_sub(1),
        Inst::TwoStar => a.wrapping_mul(2),
        Inst::TwoSlash => a >> 1,
        Inst::ZeroEq => flag(a == 0),
        Inst::ZeroNe => flag(a != 0),
        Inst::ZeroLt => flag(a < 0),
        Inst::ZeroGt => flag(a > 0),
        Inst::CellPlus => a.wrapping_add(CELL),
        Inst::Cells => a.wrapping_mul(CELL),
        Inst::CharPlus => a.wrapping_add(1),
        _ => return None,
    })
}

/// Result of matching a window of instructions.
enum Rewrite {
    /// Replace the first `consumed` instructions with the given ones.
    Replace(usize, Vec<Inst>),
    /// No rewrite applies.
    None,
}

fn try_rewrite(window: &[Inst]) -> Rewrite {
    use Inst::*;
    // three-instruction windows: constant folding
    if let [Lit(a), Lit(b), op] = window {
        if let Some(v) = fold_binop(*a, *b, op) {
            return Rewrite::Replace(3, vec![Lit(v)]);
        }
    }
    if window.len() >= 2 {
        match (&window[0], &window[1]) {
            // specialization for a frequent constant argument
            (Lit(n), op) => {
                if let Some(v) = fold_unop(*n, op) {
                    return Rewrite::Replace(2, vec![Lit(v)]);
                }
                if let Some(r) = reduce_lit_op(*n, op) {
                    return Rewrite::Replace(2, vec![r]);
                }
                if matches!(op, Drop) {
                    return Rewrite::Replace(2, vec![]);
                }
            }
            // stack-manipulation cancellations
            (Swap, Swap) => return Rewrite::Replace(2, vec![]),
            (Dup, Drop) => return Rewrite::Replace(2, vec![]),
            (Over, Drop) => return Rewrite::Replace(2, vec![]),
            (Dup, Swap) => return Rewrite::Replace(2, vec![Dup]),
            (Swap, Drop) => return Rewrite::Replace(2, vec![Nip]),
            (Rot, MinusRot) | (MinusRot, Rot) => return Rewrite::Replace(2, vec![]),
            (Invert, Invert) | (Negate, Negate) => return Rewrite::Replace(2, vec![]),
            (TwoDup, TwoDrop) => return Rewrite::Replace(2, vec![]),
            _ => {}
        }
    }
    Rewrite::None
}

/// Optimize a program. Returns the optimized program and statistics.
///
/// The result is observably equivalent to the input (same final stacks,
/// memory, output and traps) but executes fewer instructions.
///
/// # Panics
///
/// Panics only if the input program has invalid branch targets (build
/// programs with [`ProgramBuilder`] or run [`verify`](crate::verify())
/// first).
#[must_use]
pub fn optimize(program: &Program) -> (Program, PeepholeStats) {
    let mut stats = PeepholeStats {
        before: program.len(),
        after: program.len(),
        ..PeepholeStats::default()
    };
    if program.insts().iter().any(|i| matches!(i, Inst::Execute)) {
        stats.skipped_execute = true;
        return (program.clone(), stats);
    }

    let mut insts: Vec<Inst> = program.insts().to_vec();
    let mut entry = program.entry();

    // Iterate to a fixpoint. Every rewrite strictly shrinks the program,
    // so the pass count is bounded by the program length.
    let max_passes = insts.len() + 1;
    for _ in 0..max_passes {
        let mut changed = false;
        // Control can enter a program only at leaders; rewrites must not
        // swallow a leader except as the first instruction of the window,
        // so targets always stay remappable.
        let mut is_leader = vec![false; insts.len() + 1];
        is_leader[entry] = true;
        for (i, inst) in insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                is_leader[t as usize] = true;
            }
            if inst.ends_block() {
                is_leader[i + 1] = true;
            }
        }

        let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
        // old index -> new index (valid at leader indices)
        let mut remap: Vec<u32> = vec![0; insts.len() + 1];
        let mut i = 0;
        while i < insts.len() {
            // window may not extend past the next leader
            let mut safe = (i + 3).min(insts.len()) - i;
            for k in 1..safe {
                if is_leader[i + k] {
                    safe = k;
                    break;
                }
            }
            remap[i] = out.len() as u32;
            match try_rewrite(&insts[i..i + safe]) {
                Rewrite::Replace(consumed, replacement) => {
                    stats.rewrites += 1;
                    changed = true;
                    out.extend(replacement);
                    for r in remap[i + 1..i + consumed].iter_mut() {
                        *r = out.len() as u32;
                    }
                    i += consumed;
                }
                Rewrite::None => {
                    out.push(insts[i]);
                    i += 1;
                }
            }
        }
        remap[insts.len()] = out.len() as u32;
        // patch targets and entry
        for inst in &mut out {
            if let Some(t) = inst.target() {
                *inst = inst.with_target(remap[t as usize]);
            }
        }
        entry = remap[entry] as usize;
        insts = out;
        if !changed {
            break;
        }
    }

    let mut b = ProgramBuilder::new();
    b.extend(insts.iter().copied());
    b.set_entry(entry);
    let optimized = b.finish().expect("rewrites preserve target validity");
    stats.after = optimized.len();
    (optimized, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::machine::Machine;
    use crate::program::program_of;

    /// Optimize and assert observable equivalence.
    fn check(p: &Program) -> PeepholeStats {
        let (q, stats) = optimize(p);
        crate::verify(&q).expect("optimized program verifies");
        let mut m1 = Machine::with_memory(4096);
        let r1 = exec::run(p, &mut m1, 1_000_000);
        let mut m2 = Machine::with_memory(4096);
        let r2 = exec::run(&q, &mut m2, 1_000_000);
        match (r1, r2) {
            (Ok(_), Ok(_)) => {
                assert_eq!(m1.stack(), m2.stack());
                assert_eq!(m1.output(), m2.output());
                assert_eq!(m1.memory(), m2.memory());
            }
            (Err(a), Err(b)) => {
                // same trap kind (instruction indices legitimately differ)
                assert_eq!(std::mem::discriminant(&a), std::mem::discriminant(&b));
            }
            (a, b) => panic!("behaviour diverged: {a:?} vs {b:?}"),
        }
        stats
    }

    #[test]
    fn folds_constants() {
        let p = program_of(&[Inst::Lit(6), Inst::Lit(7), Inst::Mul, Inst::Dot]);
        let stats = check(&p);
        assert!(stats.after < stats.before);
        let (q, _) = optimize(&p);
        assert_eq!(q.insts()[0], Inst::Lit(42));
    }

    #[test]
    fn preserves_division_by_zero_trap() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div]);
        let stats = check(&p);
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn strength_reduces() {
        let p = program_of(&[Inst::Lit(5), Inst::Lit(1), Inst::Add, Inst::Dot]);
        // Lit(5) Lit(1) Add folds to Lit(6) first (constant folding wins)
        let (q, _) = optimize(&p);
        assert_eq!(q.insts()[0], Inst::Lit(6));
        // with a dynamic operand, the specialization applies
        let p = program_of(&[Inst::Depth, Inst::Lit(1), Inst::Add, Inst::Dot]);
        let (q, _) = optimize(&p);
        assert!(q.insts().contains(&Inst::OnePlus));
        check(&p);
    }

    #[test]
    fn cancels_stack_noise() {
        let p = program_of(&[
            Inst::Lit(3),
            Inst::Lit(4),
            Inst::Swap,
            Inst::Swap,
            Inst::Dup,
            Inst::Drop,
            Inst::Swap,
            Inst::Drop,
            Inst::Dot,
        ]);
        let stats = check(&p);
        assert!(stats.after < stats.before, "{stats:?}");
        let (q, _) = optimize(&p);
        assert!(q.insts().contains(&Inst::Nip)); // swap drop -> nip
        assert!(!q.insts().contains(&Inst::Swap));
    }

    #[test]
    fn does_not_fuse_across_a_leader() {
        use crate::program::ProgramBuilder;
        // `Lit(0)` at the loop head is a branch target: it must not fuse
        // with the following `Eq` into ZeroEq-of-the-wrong-operand.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(3));
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        b.branch_if_zero(top); // loops until the counter is nonzero...
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        check(&p);
        let (q, _) = optimize(&p);
        // the loop-head OneMinus is still individually addressable
        crate::verify(&q).unwrap();
    }

    #[test]
    fn remaps_branch_targets_after_removal() {
        use crate::program::ProgramBuilder;
        // countdown loop with removable noise before it
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(1));
        b.push(Inst::Drop); // removable pair
        b.push(Inst::Lit(5));
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        b.push(Inst::ZeroNe);
        let done = b.new_label();
        b.branch_if_zero(done);
        b.branch(top);
        b.bind(done).unwrap();
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let stats = check(&p);
        assert!(stats.after < stats.before);
    }

    #[test]
    fn skips_programs_with_execute() {
        let p = program_of(&[Inst::Lit(0), Inst::Execute]);
        let (q, stats) = optimize(&p);
        assert!(stats.skipped_execute);
        assert_eq!(q.insts(), p.insts());
    }

    #[test]
    fn fixpoint_chains_rewrites() {
        // dup swap -> dup; dup drop -> (nothing): needs two passes
        let p = program_of(&[Inst::Lit(9), Inst::Dup, Inst::Swap, Inst::Drop, Inst::Dot]);
        let (q, stats) = optimize(&p);
        assert!(stats.rewrites >= 2);
        assert_eq!(q.insts(), &[Inst::Lit(9), Inst::Dot, Inst::Halt]);
        check(&p);
    }

    #[test]
    fn idempotent_on_clean_programs() {
        let p = program_of(&[Inst::Lit(1), Inst::Depth, Inst::Add, Inst::Dot]);
        let (q, _) = optimize(&p);
        let (r, stats) = optimize(&q);
        assert_eq!(q.insts(), r.insts());
        assert_eq!(stats.rewrites, 0);
    }
}
