//! The virtual machine instruction set.
//!
//! The instruction set is a Forth-flavoured virtual *stack machine*: all
//! computational instructions take their operands from the data stack and
//! push results back onto it.  This is exactly the setting of Ertl's paper
//! — the cache organizations in [`stackcache-core`] reason about programs
//! entirely in terms of the per-instruction [`Effect`]s defined here.
//!
//! Each instruction carries a *static* effect ([`Inst::effect`]): how many
//! data-stack cells it pops and pushes, its return-stack behaviour, and its
//! *kind*.  The kind distinguishes the classes the paper treats differently:
//!
//! * [`EffectKind::Normal`] — computational instructions (`+`, `@`, …) that
//!   consume inputs and produce *new* values,
//! * [`EffectKind::Shuffle`] — pure stack-manipulation instructions (`dup`,
//!   `swap`, `rot`, …) whose outputs are copies of their inputs; static
//!   stack caching compiles these to *nothing* (Section 5),
//! * control-flow kinds (branches, calls, returns) that bound basic blocks
//!   and trigger cache-state reconciliation,
//! * [`EffectKind::Opaque`] — instructions such as `depth` that need the
//!   true stack pointer and force a cache flush.
//!
//! A handful of instructions (`?dup`, the loop primitives) have effects that
//! depend on runtime values; their static effect describes the common case
//! and the reference interpreter reports the *resolved* effect in its
//! [`ExecEvent`](crate::exec::ExecEvent)s.

use std::fmt;

/// A data- or return-stack cell. All values, addresses, characters and flags
/// are cells; Forth truth is `-1` (all bits set), falsehood `0`.
pub type Cell = i64;

/// Number of bytes in a [`Cell`] as stored in VM memory.
pub const CELL_BYTES: usize = 8;

/// The canonical Forth *true* flag.
pub const TRUE: Cell = -1;
/// The canonical Forth *false* flag.
pub const FALSE: Cell = 0;

/// A virtual machine instruction.
///
/// Instruction operands that are part of the instruction itself (literal
/// values, branch targets) are stored inline; branch/call targets are
/// absolute instruction indices into the [`Program`](crate::Program).
///
/// # Examples
///
/// ```
/// use stackcache_vm::{Inst, EffectKind};
///
/// let add = Inst::Add;
/// let eff = add.effect();
/// assert_eq!((eff.pops, eff.pushes), (2, 1));
/// assert!(matches!(eff.kind, EffectKind::Normal));
///
/// // `swap` is a pure shuffle: output slot 0 is input 1, output slot 1 is input 0.
/// assert_eq!(Inst::Swap.effect().kind, EffectKind::Shuffle(&[1, 0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- literals ----------------------------------------------------
    /// Push a literal cell. `( -- n )`
    Lit(Cell),

    // ---- binary arithmetic / logic  ( a b -- r ) ---------------------
    /// `+` addition (wrapping).
    Add,
    /// `-` subtraction (wrapping).
    Sub,
    /// `*` multiplication (wrapping).
    Mul,
    /// `/` floored division. Traps on division by zero.
    Div,
    /// `mod` floored remainder. Traps on division by zero.
    Mod,
    /// `and` bitwise conjunction.
    And,
    /// `or` bitwise disjunction.
    Or,
    /// `xor` bitwise exclusive or.
    Xor,
    /// `lshift` logical left shift; shift counts are masked to 0..64.
    Lshift,
    /// `rshift` logical right shift; shift counts are masked to 0..64.
    Rshift,
    /// `min` minimum.
    Min,
    /// `max` maximum.
    Max,

    // ---- binary comparisons  ( a b -- flag ) --------------------------
    /// `=` equality.
    Eq,
    /// `<>` inequality.
    Ne,
    /// `<` signed less-than.
    Lt,
    /// `>` signed greater-than.
    Gt,
    /// `<=` signed at-most.
    Le,
    /// `>=` signed at-least.
    Ge,
    /// `u<` unsigned less-than.
    ULt,
    /// `u>` unsigned greater-than.
    UGt,

    // ---- unary operations  ( a -- r ) ---------------------------------
    /// `negate` two's-complement negation (wrapping).
    Negate,
    /// `invert` bitwise complement.
    Invert,
    /// `abs` absolute value (wrapping).
    Abs,
    /// `1+` increment.
    OnePlus,
    /// `1-` decrement.
    OneMinus,
    /// `2*` arithmetic left shift by one.
    TwoStar,
    /// `2/` arithmetic right shift by one.
    TwoSlash,
    /// `0=` zero test.
    ZeroEq,
    /// `0<>` non-zero test.
    ZeroNe,
    /// `0<` negative test.
    ZeroLt,
    /// `0>` positive test.
    ZeroGt,
    /// `cell+` add the cell size in bytes.
    CellPlus,
    /// `cells` multiply by the cell size in bytes.
    Cells,
    /// `char+` add one (bytes are characters).
    CharPlus,

    // ---- pure stack shuffles ------------------------------------------
    /// `dup` `( a -- a a )`
    Dup,
    /// `drop` `( a -- )`
    Drop,
    /// `swap` `( a b -- b a )`
    Swap,
    /// `over` `( a b -- a b a )`
    Over,
    /// `rot` `( a b c -- b c a )`
    Rot,
    /// `-rot` `( a b c -- c a b )`
    MinusRot,
    /// `nip` `( a b -- b )`
    Nip,
    /// `tuck` `( a b -- b a b )`
    Tuck,
    /// `2dup` `( a b -- a b a b )`
    TwoDup,
    /// `2drop` `( a b -- )`
    TwoDrop,
    /// `2swap` `( a b c d -- c d a b )`
    TwoSwap,
    /// `2over` `( a b c d -- a b c d a b )`
    TwoOver,
    /// `?dup` `( a -- a a | 0 )` duplicate if non-zero. Dynamic effect.
    QDup,

    // ---- stack introspection (cache-opaque) ----------------------------
    /// `pick` `( x_u .. x_0 u -- x_u .. x_0 x_u )`. Traps if `u` is out of
    /// range. Cache-opaque: requires the true stack pointer.
    Pick,
    /// `depth` `( -- n )` number of cells on the data stack. Cache-opaque.
    Depth,

    // ---- return stack ---------------------------------------------------
    /// `>r` move the top data cell to the return stack.
    ToR,
    /// `r>` move the top return cell to the data stack.
    FromR,
    /// `r@` copy the top return cell to the data stack.
    RFetch,
    /// `2>r` move the top two data cells to the return stack (order kept).
    TwoToR,
    /// `2r>` move the top two return cells back to the data stack.
    TwoFromR,
    /// `2r@` copy the top two return cells to the data stack.
    TwoRFetch,

    // ---- memory ---------------------------------------------------------
    /// `@` `( addr -- x )` fetch a cell from byte address `addr`.
    Fetch,
    /// `!` `( x addr -- )` store a cell to byte address `addr`.
    Store,
    /// `c@` `( addr -- c )` fetch a byte (zero-extended).
    CFetch,
    /// `c!` `( c addr -- )` store the low byte of `c`.
    CStore,
    /// `+!` `( n addr -- )` add `n` to the cell at `addr`.
    PlusStore,

    // ---- control flow -----------------------------------------------------
    /// Unconditional branch to an instruction index.
    Branch(u32),
    /// `( flag -- )` branch to the target if `flag` is zero.
    BranchIfZero(u32),
    /// Call the word whose code starts at the given instruction index.
    Call(u32),
    /// `execute` `( xt -- )` call the word whose execution token is on the
    /// stack. Traps if the token is not a valid instruction index.
    Execute,
    /// Return from the current word.
    Return,
    /// Stop execution successfully.
    Halt,
    /// Do nothing.
    Nop,

    // ---- counted loops ------------------------------------------------------
    /// `(do)` `( limit start -- ) ( R: -- limit start )` set up a counted loop.
    DoSetup,
    /// `(?do)` like `(do)` but branches past the loop if `limit == start`.
    QDoSetup(u32),
    /// `(loop)` increment the loop index; branch back to the target while the
    /// index has not crossed the limit, otherwise drop the loop parameters.
    LoopInc(u32),
    /// `(+loop)` `( n -- )` add `n` to the index; branch back while the index
    /// has not crossed the boundary between `limit-1` and `limit`.
    PlusLoopInc(u32),
    /// `i` push the innermost loop index.
    LoopI,
    /// `j` push the next-outer loop index.
    LoopJ,
    /// `unloop` discard one set of loop parameters from the return stack.
    Unloop,

    // ---- I/O -------------------------------------------------------------
    /// `emit` `( c -- )` append a character to the output.
    Emit,
    /// `.` `( n -- )` print a number followed by a space.
    Dot,
    /// `type` `( addr u -- )` print `u` bytes starting at `addr`.
    Type,
    /// `cr` print a newline.
    Cr,
}

/// Classification of an instruction's behaviour, as relevant to stack
/// caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    /// Consumes its inputs and produces freshly computed outputs.
    Normal,
    /// A pure stack manipulation: output slot `i` (bottom-first) is a copy
    /// of input slot `perm[i]` (bottom-first). No values are computed.
    ///
    /// `swap`: inputs `[a b]`, outputs `[b a]` → `&[1, 0]`.
    Shuffle(&'static [u8]),
    /// A shuffle whose shape depends on a runtime value (`?dup`).
    DynamicShuffle,
    /// Requires the true stack pointer or arbitrary-depth access; forces a
    /// cache flush (`pick`, `depth`).
    Opaque,
    /// Unconditional branch: ends a basic block.
    Branch,
    /// Conditional branch: consumes a flag, ends a basic block.
    CondBranch,
    /// Call (static or via `execute`): cache must conform to the calling
    /// convention.
    Call,
    /// Return from a word.
    Return,
    /// Successful termination.
    Halt,
}

/// The static stack effect of an instruction.
///
/// `pops`/`pushes` refer to the data stack, `rpops`/`rpushes` to the return
/// stack. For instructions with dynamic effects these fields describe the
/// dominant case; the interpreter reports exact per-execution numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Effect {
    /// Cells popped from the data stack.
    pub pops: u8,
    /// Cells pushed onto the data stack.
    pub pushes: u8,
    /// Cells popped from the return stack.
    pub rpops: u8,
    /// Cells pushed onto the return stack.
    pub rpushes: u8,
    /// Behaviour class.
    pub kind: EffectKind,
}

impl Effect {
    const fn new(pops: u8, pushes: u8, rpops: u8, rpushes: u8, kind: EffectKind) -> Self {
        Effect {
            pops,
            pushes,
            rpops,
            rpushes,
            kind,
        }
    }

    /// Net change of the data-stack depth.
    #[must_use]
    pub fn net(&self) -> i32 {
        i32::from(self.pushes) - i32::from(self.pops)
    }
}

/// Shuffle permutations, bottom-first (`perm[out_slot] = in_slot`).
pub mod perm {
    /// `dup`: `( a -- a a )`
    pub const DUP: &[u8] = &[0, 0];
    /// `drop`: `( a -- )`
    pub const DROP: &[u8] = &[];
    /// `swap`: `( a b -- b a )`
    pub const SWAP: &[u8] = &[1, 0];
    /// `over`: `( a b -- a b a )`
    pub const OVER: &[u8] = &[0, 1, 0];
    /// `rot`: `( a b c -- b c a )`
    pub const ROT: &[u8] = &[1, 2, 0];
    /// `-rot`: `( a b c -- c a b )`
    pub const MINUS_ROT: &[u8] = &[2, 0, 1];
    /// `nip`: `( a b -- b )`
    pub const NIP: &[u8] = &[1];
    /// `tuck`: `( a b -- b a b )`
    pub const TUCK: &[u8] = &[1, 0, 1];
    /// `2dup`: `( a b -- a b a b )`
    pub const TWO_DUP: &[u8] = &[0, 1, 0, 1];
    /// `2drop`: `( a b -- )`
    pub const TWO_DROP: &[u8] = &[];
    /// `2swap`: `( a b c d -- c d a b )`
    pub const TWO_SWAP: &[u8] = &[2, 3, 0, 1];
    /// `2over`: `( a b c d -- a b c d a b )`
    pub const TWO_OVER: &[u8] = &[0, 1, 2, 3, 0, 1];
    /// `?dup` when the top is non-zero.
    pub const QDUP_NONZERO: &[u8] = &[0, 0];
    /// `?dup` when the top is zero.
    pub const QDUP_ZERO: &[u8] = &[0];
}

impl Inst {
    /// The static stack effect of this instruction.
    ///
    /// For `?dup` and the loop primitives the effect describes the dominant
    /// dynamic case; see the module documentation.
    #[must_use]
    pub const fn effect(&self) -> Effect {
        use EffectKind::*;
        match self {
            Inst::Lit(_) => Effect::new(0, 1, 0, 0, Normal),

            Inst::Add
            | Inst::Sub
            | Inst::Mul
            | Inst::Div
            | Inst::Mod
            | Inst::And
            | Inst::Or
            | Inst::Xor
            | Inst::Lshift
            | Inst::Rshift
            | Inst::Min
            | Inst::Max
            | Inst::Eq
            | Inst::Ne
            | Inst::Lt
            | Inst::Gt
            | Inst::Le
            | Inst::Ge
            | Inst::ULt
            | Inst::UGt => Effect::new(2, 1, 0, 0, Normal),

            Inst::Negate
            | Inst::Invert
            | Inst::Abs
            | Inst::OnePlus
            | Inst::OneMinus
            | Inst::TwoStar
            | Inst::TwoSlash
            | Inst::ZeroEq
            | Inst::ZeroNe
            | Inst::ZeroLt
            | Inst::ZeroGt
            | Inst::CellPlus
            | Inst::Cells
            | Inst::CharPlus => Effect::new(1, 1, 0, 0, Normal),

            Inst::Dup => Effect::new(1, 2, 0, 0, Shuffle(perm::DUP)),
            Inst::Drop => Effect::new(1, 0, 0, 0, Shuffle(perm::DROP)),
            Inst::Swap => Effect::new(2, 2, 0, 0, Shuffle(perm::SWAP)),
            Inst::Over => Effect::new(2, 3, 0, 0, Shuffle(perm::OVER)),
            Inst::Rot => Effect::new(3, 3, 0, 0, Shuffle(perm::ROT)),
            Inst::MinusRot => Effect::new(3, 3, 0, 0, Shuffle(perm::MINUS_ROT)),
            Inst::Nip => Effect::new(2, 1, 0, 0, Shuffle(perm::NIP)),
            Inst::Tuck => Effect::new(2, 3, 0, 0, Shuffle(perm::TUCK)),
            Inst::TwoDup => Effect::new(2, 4, 0, 0, Shuffle(perm::TWO_DUP)),
            Inst::TwoDrop => Effect::new(2, 0, 0, 0, Shuffle(perm::TWO_DROP)),
            Inst::TwoSwap => Effect::new(4, 4, 0, 0, Shuffle(perm::TWO_SWAP)),
            Inst::TwoOver => Effect::new(4, 6, 0, 0, Shuffle(perm::TWO_OVER)),
            Inst::QDup => Effect::new(1, 2, 0, 0, DynamicShuffle),

            Inst::Pick => Effect::new(1, 1, 0, 0, Opaque),
            Inst::Depth => Effect::new(0, 1, 0, 0, Opaque),

            Inst::ToR => Effect::new(1, 0, 0, 1, Normal),
            Inst::FromR => Effect::new(0, 1, 1, 0, Normal),
            Inst::RFetch => Effect::new(0, 1, 0, 0, Normal),
            Inst::TwoToR => Effect::new(2, 0, 0, 2, Normal),
            Inst::TwoFromR => Effect::new(0, 2, 2, 0, Normal),
            Inst::TwoRFetch => Effect::new(0, 2, 0, 0, Normal),

            Inst::Fetch | Inst::CFetch => Effect::new(1, 1, 0, 0, Normal),
            Inst::Store | Inst::CStore | Inst::PlusStore => Effect::new(2, 0, 0, 0, Normal),

            Inst::Branch(_) => Effect::new(0, 0, 0, 0, Branch),
            Inst::BranchIfZero(_) => Effect::new(1, 0, 0, 0, CondBranch),
            Inst::Call(_) => Effect::new(0, 0, 0, 1, Call),
            Inst::Execute => Effect::new(1, 0, 0, 1, Call),
            Inst::Return => Effect::new(0, 0, 1, 0, Return),
            Inst::Halt => Effect::new(0, 0, 0, 0, Halt),
            Inst::Nop => Effect::new(0, 0, 0, 0, Normal),

            Inst::DoSetup => Effect::new(2, 0, 0, 2, Normal),
            Inst::QDoSetup(_) => Effect::new(2, 0, 0, 2, CondBranch),
            Inst::LoopInc(_) => Effect::new(0, 0, 2, 2, CondBranch),
            Inst::PlusLoopInc(_) => Effect::new(1, 0, 2, 2, CondBranch),
            Inst::LoopI | Inst::LoopJ => Effect::new(0, 1, 0, 0, Normal),
            Inst::Unloop => Effect::new(0, 0, 2, 0, Normal),

            Inst::Emit | Inst::Dot => Effect::new(1, 0, 0, 0, Normal),
            Inst::Type => Effect::new(2, 0, 0, 0, Normal),
            Inst::Cr => Effect::new(0, 0, 0, 0, Normal),
        }
    }

    /// The branch/call target embedded in this instruction, if any.
    #[must_use]
    pub const fn target(&self) -> Option<u32> {
        match self {
            Inst::Branch(t)
            | Inst::BranchIfZero(t)
            | Inst::Call(t)
            | Inst::QDoSetup(t)
            | Inst::LoopInc(t)
            | Inst::PlusLoopInc(t) => Some(*t),
            _ => None,
        }
    }

    /// Replace the embedded branch/call target.
    ///
    /// Returns the instruction unchanged if it has no target. Used by the
    /// program builder when patching labels and by the static-caching
    /// compiler when relocating code.
    #[must_use]
    pub const fn with_target(self, t: u32) -> Inst {
        match self {
            Inst::Branch(_) => Inst::Branch(t),
            Inst::BranchIfZero(_) => Inst::BranchIfZero(t),
            Inst::Call(_) => Inst::Call(t),
            Inst::QDoSetup(_) => Inst::QDoSetup(t),
            Inst::LoopInc(_) => Inst::LoopInc(t),
            Inst::PlusLoopInc(_) => Inst::PlusLoopInc(t),
            other => other,
        }
    }

    /// `true` if this instruction ends a basic block (branches, calls,
    /// returns, and halts).
    ///
    /// Calls end blocks because static stack caching must reconcile the
    /// cache to the calling convention around them (Section 5).
    #[must_use]
    pub const fn ends_block(&self) -> bool {
        matches!(
            self.effect().kind,
            EffectKind::Branch
                | EffectKind::CondBranch
                | EffectKind::Call
                | EffectKind::Return
                | EffectKind::Halt
        )
    }

    /// A dense opcode for dispatch tables, unique per variant (payloads
    /// ignored).
    #[must_use]
    pub const fn opcode(&self) -> u8 {
        match self {
            Inst::Lit(_) => 0,
            Inst::Add => 1,
            Inst::Sub => 2,
            Inst::Mul => 3,
            Inst::Div => 4,
            Inst::Mod => 5,
            Inst::And => 6,
            Inst::Or => 7,
            Inst::Xor => 8,
            Inst::Lshift => 9,
            Inst::Rshift => 10,
            Inst::Min => 11,
            Inst::Max => 12,
            Inst::Eq => 13,
            Inst::Ne => 14,
            Inst::Lt => 15,
            Inst::Gt => 16,
            Inst::Le => 17,
            Inst::Ge => 18,
            Inst::ULt => 19,
            Inst::UGt => 20,
            Inst::Negate => 21,
            Inst::Invert => 22,
            Inst::Abs => 23,
            Inst::OnePlus => 24,
            Inst::OneMinus => 25,
            Inst::TwoStar => 26,
            Inst::TwoSlash => 27,
            Inst::ZeroEq => 28,
            Inst::ZeroNe => 29,
            Inst::ZeroLt => 30,
            Inst::ZeroGt => 31,
            Inst::CellPlus => 32,
            Inst::Cells => 33,
            Inst::CharPlus => 34,
            Inst::Dup => 35,
            Inst::Drop => 36,
            Inst::Swap => 37,
            Inst::Over => 38,
            Inst::Rot => 39,
            Inst::MinusRot => 40,
            Inst::Nip => 41,
            Inst::Tuck => 42,
            Inst::TwoDup => 43,
            Inst::TwoDrop => 44,
            Inst::TwoSwap => 45,
            Inst::TwoOver => 46,
            Inst::QDup => 47,
            Inst::Pick => 48,
            Inst::Depth => 49,
            Inst::ToR => 50,
            Inst::FromR => 51,
            Inst::RFetch => 52,
            Inst::TwoToR => 53,
            Inst::TwoFromR => 54,
            Inst::TwoRFetch => 55,
            Inst::Fetch => 56,
            Inst::Store => 57,
            Inst::CFetch => 58,
            Inst::CStore => 59,
            Inst::PlusStore => 60,
            Inst::Branch(_) => 61,
            Inst::BranchIfZero(_) => 62,
            Inst::Call(_) => 63,
            Inst::Execute => 64,
            Inst::Return => 65,
            Inst::Halt => 66,
            Inst::Nop => 67,
            Inst::DoSetup => 68,
            Inst::QDoSetup(_) => 69,
            Inst::LoopInc(_) => 70,
            Inst::PlusLoopInc(_) => 71,
            Inst::LoopI => 72,
            Inst::LoopJ => 73,
            Inst::Unloop => 74,
            Inst::Emit => 75,
            Inst::Dot => 76,
            Inst::Type => 77,
            Inst::Cr => 78,
        }
    }

    /// Number of distinct opcodes (see [`Inst::opcode`]).
    pub const OPCODE_COUNT: usize = 79;

    /// The conventional Forth name of this instruction.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Inst::Lit(_) => "lit",
            Inst::Add => "+",
            Inst::Sub => "-",
            Inst::Mul => "*",
            Inst::Div => "/",
            Inst::Mod => "mod",
            Inst::And => "and",
            Inst::Or => "or",
            Inst::Xor => "xor",
            Inst::Lshift => "lshift",
            Inst::Rshift => "rshift",
            Inst::Min => "min",
            Inst::Max => "max",
            Inst::Eq => "=",
            Inst::Ne => "<>",
            Inst::Lt => "<",
            Inst::Gt => ">",
            Inst::Le => "<=",
            Inst::Ge => ">=",
            Inst::ULt => "u<",
            Inst::UGt => "u>",
            Inst::Negate => "negate",
            Inst::Invert => "invert",
            Inst::Abs => "abs",
            Inst::OnePlus => "1+",
            Inst::OneMinus => "1-",
            Inst::TwoStar => "2*",
            Inst::TwoSlash => "2/",
            Inst::ZeroEq => "0=",
            Inst::ZeroNe => "0<>",
            Inst::ZeroLt => "0<",
            Inst::ZeroGt => "0>",
            Inst::CellPlus => "cell+",
            Inst::Cells => "cells",
            Inst::CharPlus => "char+",
            Inst::Dup => "dup",
            Inst::Drop => "drop",
            Inst::Swap => "swap",
            Inst::Over => "over",
            Inst::Rot => "rot",
            Inst::MinusRot => "-rot",
            Inst::Nip => "nip",
            Inst::Tuck => "tuck",
            Inst::TwoDup => "2dup",
            Inst::TwoDrop => "2drop",
            Inst::TwoSwap => "2swap",
            Inst::TwoOver => "2over",
            Inst::QDup => "?dup",
            Inst::Pick => "pick",
            Inst::Depth => "depth",
            Inst::ToR => ">r",
            Inst::FromR => "r>",
            Inst::RFetch => "r@",
            Inst::TwoToR => "2>r",
            Inst::TwoFromR => "2r>",
            Inst::TwoRFetch => "2r@",
            Inst::Fetch => "@",
            Inst::Store => "!",
            Inst::CFetch => "c@",
            Inst::CStore => "c!",
            Inst::PlusStore => "+!",
            Inst::Branch(_) => "branch",
            Inst::BranchIfZero(_) => "?branch",
            Inst::Call(_) => "call",
            Inst::Execute => "execute",
            Inst::Return => "exit",
            Inst::Halt => "halt",
            Inst::Nop => "nop",
            Inst::DoSetup => "(do)",
            Inst::QDoSetup(_) => "(?do)",
            Inst::LoopInc(_) => "(loop)",
            Inst::PlusLoopInc(_) => "(+loop)",
            Inst::LoopI => "i",
            Inst::LoopJ => "j",
            Inst::Unloop => "unloop",
            Inst::Emit => "emit",
            Inst::Dot => ".",
            Inst::Type => "type",
            Inst::Cr => "cr",
        }
    }

    /// Iterate over one representative of every instruction variant.
    ///
    /// Useful for exhaustive tests over the instruction set.
    pub fn all() -> impl Iterator<Item = Inst> {
        ALL.iter().copied()
    }
}

/// One representative per variant, in opcode order.
const ALL: &[Inst] = &[
    Inst::Lit(0),
    Inst::Add,
    Inst::Sub,
    Inst::Mul,
    Inst::Div,
    Inst::Mod,
    Inst::And,
    Inst::Or,
    Inst::Xor,
    Inst::Lshift,
    Inst::Rshift,
    Inst::Min,
    Inst::Max,
    Inst::Eq,
    Inst::Ne,
    Inst::Lt,
    Inst::Gt,
    Inst::Le,
    Inst::Ge,
    Inst::ULt,
    Inst::UGt,
    Inst::Negate,
    Inst::Invert,
    Inst::Abs,
    Inst::OnePlus,
    Inst::OneMinus,
    Inst::TwoStar,
    Inst::TwoSlash,
    Inst::ZeroEq,
    Inst::ZeroNe,
    Inst::ZeroLt,
    Inst::ZeroGt,
    Inst::CellPlus,
    Inst::Cells,
    Inst::CharPlus,
    Inst::Dup,
    Inst::Drop,
    Inst::Swap,
    Inst::Over,
    Inst::Rot,
    Inst::MinusRot,
    Inst::Nip,
    Inst::Tuck,
    Inst::TwoDup,
    Inst::TwoDrop,
    Inst::TwoSwap,
    Inst::TwoOver,
    Inst::QDup,
    Inst::Pick,
    Inst::Depth,
    Inst::ToR,
    Inst::FromR,
    Inst::RFetch,
    Inst::TwoToR,
    Inst::TwoFromR,
    Inst::TwoRFetch,
    Inst::Fetch,
    Inst::Store,
    Inst::CFetch,
    Inst::CStore,
    Inst::PlusStore,
    Inst::Branch(0),
    Inst::BranchIfZero(0),
    Inst::Call(0),
    Inst::Execute,
    Inst::Return,
    Inst::Halt,
    Inst::Nop,
    Inst::DoSetup,
    Inst::QDoSetup(0),
    Inst::LoopInc(0),
    Inst::PlusLoopInc(0),
    Inst::LoopI,
    Inst::LoopJ,
    Inst::Unloop,
    Inst::Emit,
    Inst::Dot,
    Inst::Type,
    Inst::Cr,
];

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Lit(n) => write!(f, "lit {n}"),
            Inst::Branch(t) => write!(f, "branch -> {t}"),
            Inst::BranchIfZero(t) => write!(f, "?branch -> {t}"),
            Inst::Call(t) => write!(f, "call -> {t}"),
            Inst::QDoSetup(t) => write!(f, "(?do) -> {t}"),
            Inst::LoopInc(t) => write!(f, "(loop) -> {t}"),
            Inst::PlusLoopInc(t) => write!(f, "(+loop) -> {t}"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_dense_and_unique() {
        let mut seen = [false; Inst::OPCODE_COUNT];
        for inst in Inst::all() {
            let op = inst.opcode() as usize;
            assert!(
                op < Inst::OPCODE_COUNT,
                "opcode {op} out of range for {inst}"
            );
            assert!(!seen[op], "duplicate opcode {op} for {inst}");
            seen[op] = true;
        }
        assert!(seen.iter().all(|&s| s), "opcode table has holes");
    }

    #[test]
    fn all_covers_every_opcode_in_order() {
        for (i, inst) in Inst::all().enumerate() {
            assert_eq!(inst.opcode() as usize, i);
        }
    }

    #[test]
    fn shuffle_perms_are_consistent_with_pop_push_counts() {
        for inst in Inst::all() {
            let eff = inst.effect();
            if let EffectKind::Shuffle(perm) = eff.kind {
                assert_eq!(perm.len(), eff.pushes as usize, "{inst}: perm length");
                for &src in perm {
                    assert!(src < eff.pops, "{inst}: perm source {src} out of range");
                }
            }
        }
    }

    #[test]
    fn targets_roundtrip() {
        for inst in Inst::all() {
            match inst.target() {
                Some(_) => {
                    let patched = inst.with_target(99);
                    assert_eq!(patched.target(), Some(99));
                    assert_eq!(patched.opcode(), inst.opcode());
                }
                None => assert_eq!(inst.with_target(99), inst),
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Inst::all().map(|i| i.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn display_shows_targets() {
        assert_eq!(Inst::Branch(7).to_string(), "branch -> 7");
        assert_eq!(Inst::Lit(-3).to_string(), "lit -3");
        assert_eq!(Inst::Add.to_string(), "+");
    }

    #[test]
    fn block_enders() {
        assert!(Inst::Branch(0).ends_block());
        assert!(Inst::BranchIfZero(0).ends_block());
        assert!(Inst::Call(0).ends_block());
        assert!(Inst::Execute.ends_block());
        assert!(Inst::Return.ends_block());
        assert!(Inst::Halt.ends_block());
        assert!(Inst::LoopInc(0).ends_block());
        assert!(!Inst::Add.ends_block());
        assert!(!Inst::Dup.ends_block());
    }
}
