//! Machine state: stacks, memory and output.

use crate::inst::{Cell, CELL_BYTES};

/// Default data-space size in bytes.
pub const DEFAULT_MEMORY: usize = 1 << 20;
/// Default maximum data-stack depth in cells.
pub const DEFAULT_STACK_LIMIT: usize = 1 << 16;
/// Default maximum return-stack depth in cells.
pub const DEFAULT_RSTACK_LIMIT: usize = 1 << 16;

/// The mutable state of a virtual machine: data stack, return stack,
/// byte-addressable data space and an output buffer.
///
/// The same `Machine` type is shared by every interpreter in the workspace
/// (reference, baseline, top-of-stack, dynamically cached, statically
/// cached), which is what makes their observable behaviour directly
/// comparable in tests.
///
/// # Examples
///
/// ```
/// use stackcache_vm::Machine;
///
/// let mut m = Machine::new();
/// m.push(2);
/// m.push(3);
/// assert_eq!(m.depth(), 2);
/// assert_eq!(m.stack(), &[2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) stack: Vec<Cell>,
    pub(crate) rstack: Vec<Cell>,
    pub(crate) mem: Vec<u8>,
    pub(crate) out: Vec<u8>,
    pub(crate) stack_limit: usize,
    pub(crate) rstack_limit: usize,
}

impl Machine {
    /// A machine with default memory and stack limits.
    #[must_use]
    pub fn new() -> Self {
        Self::with_memory(DEFAULT_MEMORY)
    }

    /// A machine with `bytes` of data space and default stack limits.
    #[must_use]
    pub fn with_memory(bytes: usize) -> Self {
        Machine {
            stack: Vec::with_capacity(256),
            rstack: Vec::with_capacity(256),
            mem: vec![0; bytes],
            out: Vec::new(),
            stack_limit: DEFAULT_STACK_LIMIT,
            rstack_limit: DEFAULT_RSTACK_LIMIT,
        }
    }

    /// Current data-stack contents, bottom first.
    #[must_use]
    pub fn stack(&self) -> &[Cell] {
        &self.stack
    }

    /// Current return-stack contents, bottom first.
    #[must_use]
    pub fn rstack(&self) -> &[Cell] {
        &self.rstack
    }

    /// Current data-stack depth in cells.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Bytes written by output instructions (`emit`, `.`, `type`, `cr`).
    #[must_use]
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Output interpreted as UTF-8 (lossily).
    #[must_use]
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// The data space.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    /// Mutable access to the data space (for loading initial data).
    pub fn memory_mut(&mut self) -> &mut [u8] {
        &mut self.mem
    }

    /// Push a cell onto the data stack.
    ///
    /// Test/setup convenience; interpreters use their own inlined accessors.
    pub fn push(&mut self, x: Cell) {
        self.stack.push(x);
    }

    /// Pop a cell from the data stack, if present.
    pub fn pop(&mut self) -> Option<Cell> {
        self.stack.pop()
    }

    /// Push a cell onto the return stack.
    pub fn rpush(&mut self, x: Cell) {
        self.rstack.push(x);
    }

    /// Maximum data-stack depth in cells.
    #[must_use]
    pub fn stack_limit(&self) -> usize {
        self.stack_limit
    }

    /// Maximum return-stack depth in cells.
    #[must_use]
    pub fn rstack_limit(&self) -> usize {
        self.rstack_limit
    }

    /// Override the maximum data-stack depth (tests exercising
    /// overflow behavior with small limits).
    pub fn set_stack_limit(&mut self, limit: usize) {
        self.stack_limit = limit;
    }

    /// Override the maximum return-stack depth.
    pub fn set_rstack_limit(&mut self, limit: usize) {
        self.rstack_limit = limit;
    }

    /// Replace the data-stack contents (bottom-first). Used by alternative
    /// interpreters to publish their final stack.
    pub fn set_stack(&mut self, items: &[Cell]) {
        self.stack.clear();
        self.stack.extend_from_slice(items);
    }

    /// Replace the return-stack contents (bottom-first).
    pub fn set_rstack(&mut self, items: &[Cell]) {
        self.rstack.clear();
        self.rstack.extend_from_slice(items);
    }

    /// Append one byte to the output buffer (the `emit` primitive).
    pub fn push_output_byte(&mut self, b: u8) {
        self.out.push(b);
    }

    /// Append a number in Forth `.` format (decimal followed by a space).
    pub fn push_output_number(&mut self, n: Cell) {
        self.out.extend_from_slice(n.to_string().as_bytes());
        self.out.push(b' ');
    }

    /// Raw parts of the output buffer `(ptr, len, capacity)` for native
    /// code that appends bytes in place (the template JIT's `emit`).
    pub fn output_raw_parts(&mut self) -> (*mut u8, usize, usize) {
        (self.out.as_mut_ptr(), self.out.len(), self.out.capacity())
    }

    /// Set the output length after native code appended bytes in place.
    ///
    /// # Safety
    ///
    /// `len` must not exceed the buffer's capacity and every byte below
    /// `len` must have been written.
    pub unsafe fn set_output_len(&mut self, len: usize) {
        self.out.set_len(len);
    }

    /// Clear stacks and output, keep memory contents.
    pub fn reset_stacks(&mut self) {
        self.stack.clear();
        self.rstack.clear();
        self.out.clear();
    }

    /// Make this machine state-identical to `proto`, reusing this
    /// machine's existing buffers instead of allocating fresh ones.
    ///
    /// Semantically equivalent to `*self = proto.clone()`, but the
    /// memory image, stacks, and output buffer are overwritten in place
    /// (`Vec::clone_from`), so a serving layer that runs many requests
    /// from the same prototype pays the allocation once and only the
    /// copies thereafter.
    pub fn reset_from(&mut self, proto: &Machine) {
        self.stack.clone_from(&proto.stack);
        self.rstack.clone_from(&proto.rstack);
        self.mem.clone_from(&proto.mem);
        self.out.clone_from(&proto.out);
        self.stack_limit = proto.stack_limit;
        self.rstack_limit = proto.rstack_limit;
    }

    /// Read the cell at byte address `addr`, or `None` when out of bounds.
    ///
    /// Cells are stored little-endian; `addr` need not be aligned.
    #[must_use]
    pub fn load_cell(&self, addr: i64) -> Option<Cell> {
        let a = usize::try_from(addr).ok()?;
        let end = a.checked_add(CELL_BYTES)?;
        let bytes = self.mem.get(a..end)?;
        Some(Cell::from_le_bytes(
            bytes.try_into().expect("slice length is CELL_BYTES"),
        ))
    }

    /// Write the cell at byte address `addr`. Returns `false` when out of
    /// bounds.
    pub fn store_cell(&mut self, addr: i64, x: Cell) -> bool {
        let Ok(a) = usize::try_from(addr) else {
            return false;
        };
        let Some(end) = a.checked_add(CELL_BYTES) else {
            return false;
        };
        match self.mem.get_mut(a..end) {
            Some(slot) => {
                slot.copy_from_slice(&x.to_le_bytes());
                true
            }
            None => false,
        }
    }

    /// Read the byte at `addr`, zero-extended.
    #[must_use]
    pub fn load_byte(&self, addr: i64) -> Option<Cell> {
        let a = usize::try_from(addr).ok()?;
        self.mem.get(a).map(|&b| Cell::from(b))
    }

    /// Write the low byte of `x` at `addr`. Returns `false` when out of
    /// bounds.
    pub fn store_byte(&mut self, addr: i64, x: Cell) -> bool {
        let Ok(a) = usize::try_from(addr) else {
            return false;
        };
        match self.mem.get_mut(a) {
            Some(slot) => {
                *slot = x as u8;
                true
            }
            None => false,
        }
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_roundtrip_little_endian() {
        let mut m = Machine::with_memory(64);
        assert!(m.store_cell(8, -123456789));
        assert_eq!(m.load_cell(8), Some(-123456789));
        assert_eq!(m.memory()[8], (-123456789i64).to_le_bytes()[0]);
    }

    #[test]
    fn unaligned_cell_access_works() {
        let mut m = Machine::with_memory(64);
        assert!(m.store_cell(3, 0x0102030405060708));
        assert_eq!(m.load_cell(3), Some(0x0102030405060708));
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let mut m = Machine::with_memory(16);
        assert_eq!(m.load_cell(9), None); // 9 + 8 > 16
        assert_eq!(m.load_cell(-1), None);
        assert!(!m.store_cell(9, 1));
        assert!(!m.store_cell(i64::MAX, 1));
        assert_eq!(m.load_byte(16), None);
        assert!(!m.store_byte(16, 1));
        assert!(m.store_byte(15, 0xAB));
        assert_eq!(m.load_byte(15), Some(0xAB));
    }

    #[test]
    fn bytes_are_zero_extended() {
        let mut m = Machine::with_memory(16);
        assert!(m.store_byte(0, -1));
        assert_eq!(m.load_byte(0), Some(255));
    }

    #[test]
    fn reset_keeps_memory() {
        let mut m = Machine::with_memory(16);
        m.push(1);
        m.rpush(2);
        m.out.extend_from_slice(b"x");
        m.store_cell(0, 42);
        m.reset_stacks();
        assert!(m.stack().is_empty());
        assert!(m.rstack().is_empty());
        assert!(m.output().is_empty());
        assert_eq!(m.load_cell(0), Some(42));
    }

    #[test]
    fn reset_from_restores_the_prototype_exactly() {
        let mut proto = Machine::with_memory(32);
        proto.push(7);
        proto.rpush(9);
        proto.store_cell(8, -1);

        let mut m = Machine::with_memory(16);
        m.push(100);
        m.out.extend_from_slice(b"dirty");
        m.store_cell(0, 5);

        m.reset_from(&proto);
        assert_eq!(m.stack(), proto.stack());
        assert_eq!(m.rstack(), proto.rstack());
        assert_eq!(m.memory(), proto.memory());
        assert_eq!(m.output(), proto.output());
        assert_eq!(m.stack_limit(), proto.stack_limit());
        assert_eq!(m.rstack_limit(), proto.rstack_limit());

        // and again after running: still byte-identical to the prototype
        m.push(1);
        m.store_byte(0, 0xEE);
        m.reset_from(&proto);
        assert_eq!(m.memory(), proto.memory());
        assert_eq!(m.stack(), proto.stack());
    }
}
