//! Virtual machine error types.

use std::error::Error;
use std::fmt;

/// A runtime trap raised by the virtual machine.
///
/// Every variant records the instruction index (`ip`) at which the trap was
/// raised, so traps can be reported against a program listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The data stack held fewer cells than an instruction required.
    StackUnderflow {
        /// Instruction index of the faulting instruction.
        ip: usize,
    },
    /// The data stack exceeded the configured maximum depth.
    StackOverflow {
        /// Instruction index of the faulting instruction.
        ip: usize,
    },
    /// The return stack held fewer cells than an instruction required.
    ReturnStackUnderflow {
        /// Instruction index of the faulting instruction.
        ip: usize,
    },
    /// The return stack exceeded the configured maximum depth.
    ReturnStackOverflow {
        /// Instruction index of the faulting instruction.
        ip: usize,
    },
    /// A memory access was outside the allocated data space.
    MemoryOutOfBounds {
        /// Instruction index of the faulting instruction.
        ip: usize,
        /// The offending byte address.
        addr: i64,
    },
    /// Division or remainder by zero.
    DivisionByZero {
        /// Instruction index of the faulting instruction.
        ip: usize,
    },
    /// `pick` with an index not inside the stack.
    PickOutOfRange {
        /// Instruction index of the faulting instruction.
        ip: usize,
        /// The requested pick depth.
        index: i64,
    },
    /// `execute` with a token that is not a valid instruction index.
    InvalidExecutionToken {
        /// Instruction index of the faulting instruction.
        ip: usize,
        /// The offending token value.
        token: i64,
    },
    /// Control transferred outside the program.
    InstructionOutOfBounds {
        /// The offending instruction index.
        ip: usize,
    },
    /// The instruction budget was exhausted before the program halted.
    FuelExhausted {
        /// Instruction index at which execution stopped.
        ip: usize,
    },
    /// Execution was cancelled cooperatively (an observer's
    /// [`poll_cancel`](crate::exec::ExecObserver::poll_cancel) returned
    /// `true` — e.g. a wall-clock deadline or a service shutdown).
    Cancelled {
        /// Instruction index at which execution stopped.
        ip: usize,
    },
}

impl VmError {
    /// Instruction index at which the trap was raised.
    #[must_use]
    pub fn ip(&self) -> usize {
        match *self {
            VmError::StackUnderflow { ip }
            | VmError::StackOverflow { ip }
            | VmError::ReturnStackUnderflow { ip }
            | VmError::ReturnStackOverflow { ip }
            | VmError::MemoryOutOfBounds { ip, .. }
            | VmError::DivisionByZero { ip }
            | VmError::PickOutOfRange { ip, .. }
            | VmError::InvalidExecutionToken { ip, .. }
            | VmError::InstructionOutOfBounds { ip }
            | VmError::FuelExhausted { ip }
            | VmError::Cancelled { ip } => ip,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { ip } => write!(f, "data stack underflow at instruction {ip}"),
            VmError::StackOverflow { ip } => write!(f, "data stack overflow at instruction {ip}"),
            VmError::ReturnStackUnderflow { ip } => {
                write!(f, "return stack underflow at instruction {ip}")
            }
            VmError::ReturnStackOverflow { ip } => {
                write!(f, "return stack overflow at instruction {ip}")
            }
            VmError::MemoryOutOfBounds { ip, addr } => {
                write!(
                    f,
                    "memory access at address {addr} out of bounds at instruction {ip}"
                )
            }
            VmError::DivisionByZero { ip } => write!(f, "division by zero at instruction {ip}"),
            VmError::PickOutOfRange { ip, index } => {
                write!(f, "pick index {index} out of range at instruction {ip}")
            }
            VmError::InvalidExecutionToken { ip, token } => {
                write!(f, "invalid execution token {token} at instruction {ip}")
            }
            VmError::InstructionOutOfBounds { ip } => {
                write!(f, "control transferred to invalid instruction index {ip}")
            }
            VmError::FuelExhausted { ip } => {
                write!(f, "instruction budget exhausted at instruction {ip}")
            }
            VmError::Cancelled { ip } => {
                write!(f, "execution cancelled at instruction {ip}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_mentions_ip() {
        let errors = [
            VmError::StackUnderflow { ip: 3 },
            VmError::StackOverflow { ip: 3 },
            VmError::ReturnStackUnderflow { ip: 3 },
            VmError::ReturnStackOverflow { ip: 3 },
            VmError::MemoryOutOfBounds { ip: 3, addr: -1 },
            VmError::DivisionByZero { ip: 3 },
            VmError::PickOutOfRange { ip: 3, index: 9 },
            VmError::InvalidExecutionToken { ip: 3, token: -2 },
            VmError::InstructionOutOfBounds { ip: 3 },
            VmError::FuelExhausted { ip: 3 },
            VmError::Cancelled { ip: 3 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(s.contains('3'), "{s}");
            assert_eq!(e.ip(), 3);
        }
    }
}
