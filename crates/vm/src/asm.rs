//! A textual assembly format for VM programs.
//!
//! [`assemble`] parses a line-oriented assembly source into a
//! [`Program`]; [`disassemble`] renders a program back into assemblable
//! text. The two round-trip: `assemble(&disassemble(p))` reproduces `p`'s
//! instructions and entry point exactly.
//!
//! # Format
//!
//! * one instruction per line, written with its Forth name
//!   (`dup`, `+`, `c@`, `(loop)`, …),
//! * `lit <number>` pushes a literal (decimal, `$hex` or `'c'`),
//! * control transfers take a label: `branch loop`, `?branch done`,
//!   `call square`, `(do)`-family likewise,
//! * `name:` defines a label; `entry:` marks the entry point,
//! * `;` starts a comment; blank lines are ignored.
//!
//! # Examples
//!
//! ```
//! use stackcache_vm::asm::assemble;
//! use stackcache_vm::{exec, Machine};
//!
//! let program = assemble(
//!     "entry:
//!         lit 6
//!         call square
//!         .
//!         halt
//!      square:
//!         dup
//!         *
//!         exit",
//! )?;
//! let mut m = Machine::new();
//! exec::run(&program, &mut m, 1_000)?;
//! assert_eq!(m.output_string(), "36 ");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::inst::{Cell, Inst};
use crate::program::{Program, ProgramBuilder};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line of the offending text (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// Kinds of assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// An unknown mnemonic.
    UnknownMnemonic(String),
    /// A mnemonic that needs an operand did not get one (or vice versa).
    BadOperand(String),
    /// A label used but never defined.
    UndefinedLabel(String),
    /// A label defined twice.
    DuplicateLabel(String),
    /// The assembled program failed validation.
    Invalid(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperand(m) => write!(f, "bad operand for `{m}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::Invalid(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl Error for AsmError {}

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError { line, kind }
}

/// Mnemonics that take a label operand, with their instruction builders.
fn branch_like(mnemonic: &str) -> Option<fn(u32) -> Inst> {
    Some(match mnemonic {
        "branch" => Inst::Branch,
        "?branch" => Inst::BranchIfZero,
        "call" => Inst::Call,
        "(?do)" => Inst::QDoSetup,
        "(loop)" => Inst::LoopInc,
        "(+loop)" => Inst::PlusLoopInc,
        _ => return None,
    })
}

/// Parse assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] for unknown mnemonics, malformed operands,
/// undefined or duplicate labels, or an invalid resulting program.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // mnemonic table from the instruction set itself
    let mut plain: HashMap<&'static str, Inst> = HashMap::new();
    for inst in Inst::all() {
        if inst.target().is_none() && !matches!(inst, Inst::Lit(_)) {
            plain.insert(inst.name(), inst);
        }
    }

    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, crate::program::Label> = HashMap::new();
    let mut defined: HashMap<String, usize> = HashMap::new();
    let mut label_of = |b: &mut ProgramBuilder, name: &str| {
        labels
            .entry(name.to_string())
            .or_insert_with(|| b.new_label())
            .to_owned()
    };
    let mut first_use: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // label definitions (possibly several on one line)
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.contains(char::is_whitespace) {
                break; // `:` belongs to an operand, not a label
            }
            if name == "entry" {
                b.entry_here();
            } else {
                if defined.contains_key(name) {
                    return Err(err(line_no, AsmErrorKind::DuplicateLabel(name.to_string())));
                }
                defined.insert(name.to_string(), line_no);
                let l = label_of(&mut b, name);
                b.bind(l)
                    .map_err(|_| err(line_no, AsmErrorKind::DuplicateLabel(name.to_string())))?;
            }
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("non-empty");
        let operand = parts.next();
        if parts.next().is_some() {
            return Err(err(line_no, AsmErrorKind::BadOperand(mnemonic.to_string())));
        }

        if mnemonic == "lit" {
            let Some(op) = operand else {
                return Err(err(line_no, AsmErrorKind::BadOperand("lit".into())));
            };
            let n = parse_literal(op)
                .ok_or_else(|| err(line_no, AsmErrorKind::BadOperand("lit".into())))?;
            b.push(Inst::Lit(n));
        } else if let Some(make) = branch_like(mnemonic) {
            let Some(op) = operand else {
                return Err(err(line_no, AsmErrorKind::BadOperand(mnemonic.to_string())));
            };
            first_use.entry(op.to_string()).or_insert(line_no);
            let l = label_of(&mut b, op);
            // emit a placeholder through the builder's fixup machinery
            match make(0) {
                Inst::Branch(_) => b.branch(l),
                Inst::BranchIfZero(_) => b.branch_if_zero(l),
                Inst::Call(_) => b.call(l),
                Inst::QDoSetup(_) => b.qdo(l),
                Inst::LoopInc(_) => b.loop_inc(l),
                Inst::PlusLoopInc(_) => b.plus_loop_inc(l),
                _ => unreachable!(),
            };
        } else if let Some(inst) = plain.get(mnemonic) {
            if operand.is_some() {
                return Err(err(line_no, AsmErrorKind::BadOperand(mnemonic.to_string())));
            }
            b.push(*inst);
        } else {
            return Err(err(
                line_no,
                AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
            ));
        }
    }

    b.finish().map_err(|e| match e {
        crate::program::BuildError::UnboundLabel { .. } => {
            // find which named label is missing
            let missing = labels
                .keys()
                .find(|name| !defined.contains_key(*name))
                .cloned()
                .unwrap_or_default();
            let line = first_use.get(&missing).copied().unwrap_or(0);
            err(line, AsmErrorKind::UndefinedLabel(missing))
        }
        other => err(0, AsmErrorKind::Invalid(other.to_string())),
    })
}

fn parse_literal(s: &str) -> Option<Cell> {
    if let Some(hex) = s.strip_prefix('$') {
        return i64::from_str_radix(hex, 16)
            .or_else(|_| u64::from_str_radix(hex, 16).map(|u| u as i64))
            .ok();
    }
    let bytes = s.as_bytes();
    if bytes.len() == 3 && bytes[0] == b'\'' && bytes[2] == b'\'' {
        return Some(Cell::from(bytes[1]));
    }
    s.parse().ok()
}

/// Render a program as assemblable text.
///
/// Branch targets become `L<index>` labels; the entry point gets an
/// `entry:` marker. The output assembles back to an identical program.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    let mut targets: Vec<usize> = program
        .insts()
        .iter()
        .filter_map(|i| i.target().map(|t| t as usize))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_for = |ip: usize| format!("L{ip}");

    let mut out = String::new();
    for (ip, inst) in program.insts().iter().enumerate() {
        if targets.binary_search(&ip).is_ok() {
            let _ = writeln!(out, "{}:", label_for(ip));
        }
        if ip == program.entry() {
            let _ = writeln!(out, "entry:");
        }
        match inst {
            Inst::Lit(n) => {
                let _ = writeln!(out, "    lit {n}");
            }
            _ => match inst.target() {
                Some(t) => {
                    let _ = writeln!(out, "    {} {}", inst.name(), label_for(t as usize));
                }
                None => {
                    let _ = writeln!(out, "    {}", inst.name());
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::machine::Machine;
    use crate::program::program_of;

    #[test]
    fn assembles_and_runs() {
        let p = assemble(
            "entry:
                lit 6
                call square
                .
                halt
             square:
                dup
                *
                exit",
        )
        .unwrap();
        let mut m = Machine::new();
        exec::run(&p, &mut m, 1_000).unwrap();
        assert_eq!(m.output_string(), "36 ");
    }

    #[test]
    fn loops_and_comments() {
        let p = assemble(
            "; countdown
             entry:
                lit 3
             top:
                1-         ; decrement
                dup
                0<>
                ?branch done
                branch top
             done:
                .
                halt",
        )
        .unwrap();
        let mut m = Machine::new();
        exec::run(&p, &mut m, 1_000).unwrap();
        assert_eq!(m.output_string(), "0 ");
    }

    #[test]
    fn literal_forms() {
        let p = assemble("lit $ff\nlit 'A'\nlit -9\nhalt").unwrap();
        assert_eq!(
            &p.insts()[..3],
            &[Inst::Lit(255), Inst::Lit(65), Inst::Lit(-9)]
        );
    }

    #[test]
    fn errors_are_located() {
        let e = assemble("dup\nfrobnicate\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));

        let e = assemble("lit\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadOperand(_)));

        let e = assemble("branch nowhere\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, AsmErrorKind::UndefinedLabel(_)));

        let e = assemble("a:\nhalt\na:\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));

        let e = assemble("dup 5\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadOperand(_)));
    }

    #[test]
    fn every_plain_instruction_has_a_unique_mnemonic() {
        // assemble a program containing every non-operand instruction
        let mut src = String::new();
        for inst in Inst::all() {
            if inst.target().is_none() && !matches!(inst, Inst::Lit(_)) {
                src.push_str("    ");
                src.push_str(inst.name());
                src.push('\n');
            }
        }
        let p = assemble(&src).unwrap();
        let plain_count = Inst::all()
            .filter(|i| i.target().is_none() && !matches!(i, Inst::Lit(_)))
            .count();
        assert_eq!(p.len(), plain_count);
    }

    #[test]
    fn roundtrip_through_disassembly() {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(w);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();

        let text = disassemble(&p);
        let q = assemble(&text).unwrap();
        assert_eq!(p.insts(), q.insts());
        assert_eq!(p.entry(), q.entry());
    }

    #[test]
    fn roundtrip_straight_line() {
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Swap, Inst::Sub, Inst::Dot]);
        let q = assemble(&disassemble(&p)).unwrap();
        assert_eq!(p.insts(), q.insts());
    }
}
