//! Differential tests: the JIT against the reference interpreter on
//! targeted programs — every opcode family, every trap, fuel sweeps.
//!
//! The deep randomized campaign lives in the workspace root
//! (`tests/jit_campaign.rs`, under the full harness); these tests are
//! the fast, named, first-line-of-defence suite.

use stackcache_jit::run_jit_with_checks;
use stackcache_vm::interp::run_baseline_with_checks;
use stackcache_vm::{program_of, Checks, Inst, Machine, Program, ProgramBuilder};

const MEM: usize = 256;

/// Run `p` under both engines from identical machines and assert every
/// observable agrees: result/error, stacks, output, memory, fuel.
fn check(p: &Program, fuel: u64, checks: Checks, setup: &[i64]) {
    let mut m_ref = Machine::with_memory(MEM);
    let mut m_jit = Machine::with_memory(MEM);
    for &x in setup {
        m_ref.push(x);
        m_jit.push(x);
    }
    let r_ref = run_baseline_with_checks(p, &mut m_ref, fuel, checks);
    let r_jit = run_jit_with_checks(p, &mut m_jit, fuel, checks);
    match (&r_ref, &r_jit) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.executed, b.executed, "fuel divergence on {p:?}");
            assert_eq!(m_ref.stack(), m_jit.stack(), "stack divergence on {p:?}");
            assert_eq!(m_ref.rstack(), m_jit.rstack(), "rstack divergence on {p:?}");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "error divergence on {p:?}"),
        other => panic!("result divergence on {p:?}: {other:?}"),
    }
    assert_eq!(m_ref.output(), m_jit.output(), "output divergence on {p:?}");
    assert_eq!(m_ref.memory(), m_jit.memory(), "memory divergence on {p:?}");
}

fn check_full(p: &Program, setup: &[i64]) {
    check(p, 1_000_000, Checks::Full, setup);
}

fn halted(mut insts: Vec<Inst>) -> Program {
    insts.push(Inst::Halt);
    program_of(&insts)
}

#[test]
fn arithmetic_and_logic() {
    use Inst::*;
    for insts in [
        vec![Lit(6), Lit(7), Mul],
        vec![Lit(5), Lit(3), Sub],
        vec![Lit(3), Lit(5), Sub],
        vec![Lit(i64::MAX), Lit(1), Add],
        vec![Lit(i64::MIN), Lit(1), Sub],
        vec![Lit(i64::MAX), Lit(i64::MAX), Mul],
        vec![Lit(0x0FF0), Lit(0x00FF), And],
        vec![Lit(0x0FF0), Lit(0x00FF), Or],
        vec![Lit(0x0FF0), Lit(0x00FF), Xor],
        vec![Lit(1), Lit(63), Lshift],
        vec![Lit(1), Lit(64), Lshift],
        vec![Lit(-1), Lit(1), Rshift],
        vec![Lit(-8), Lit(200), Rshift],
        vec![Lit(3), Lit(9), Min],
        vec![Lit(3), Lit(9), Max],
        vec![Lit(-3), Lit(9), Min],
        vec![Lit(5), Negate],
        vec![Lit(i64::MIN), Negate],
        vec![Lit(0), Invert],
        vec![Lit(7), Abs],
        vec![Lit(-7), Abs],
        vec![Lit(i64::MIN), Abs],
        vec![Lit(41), OnePlus],
        vec![Lit(41), OneMinus],
        vec![Lit(21), TwoStar],
        vec![Lit(-5), TwoSlash],
        vec![Lit(5), TwoSlash],
        vec![Lit(3), CellPlus],
        vec![Lit(3), Cells],
        vec![Lit(3), CharPlus],
    ] {
        check_full(&halted(insts), &[]);
    }
}

#[test]
fn division_euclidean() {
    use Inst::*;
    for (a, b) in [
        (7, 2),
        (-7, 2),
        (7, -2),
        (-7, -2),
        (6, 3),
        (-6, 3),
        (6, -3),
        (-6, -3),
        (0, 5),
        (i64::MAX, 1),
        (i64::MIN, 1),
        (i64::MIN, 2),
        (i64::MAX, -1),
        (1, i64::MIN),
        (-1, i64::MIN),
    ] {
        check_full(&halted(vec![Lit(a), Lit(b), Div]), &[]);
        check_full(&halted(vec![Lit(a), Lit(b), Mod]), &[]);
    }
}

#[test]
fn division_by_zero_traps_identically() {
    use Inst::*;
    check_full(&halted(vec![Lit(7), Lit(0), Div]), &[]);
    check_full(&halted(vec![Lit(7), Lit(0), Mod]), &[]);
    // Trap must preserve the pre-instruction stack exactly.
    check_full(&halted(vec![Lit(1), Lit(2), Lit(7), Lit(0), Div]), &[]);
}

#[test]
fn comparisons() {
    use Inst::*;
    for (a, b) in [
        (1, 2),
        (2, 1),
        (2, 2),
        (-1, 1),
        (1, -1),
        (i64::MIN, i64::MAX),
    ] {
        for op in [Eq, Ne, Lt, Gt, Le, Ge, ULt, UGt] {
            check_full(&halted(vec![Lit(a), Lit(b), op]), &[]);
        }
    }
    for a in [-2i64, -1, 0, 1, 2, i64::MIN, i64::MAX] {
        for op in [ZeroEq, ZeroNe, ZeroLt, ZeroGt] {
            check_full(&halted(vec![Lit(a), op]), &[]);
        }
    }
}

#[test]
fn shuffles() {
    use Inst::*;
    let setup = [10, 20, 30, 40, 50];
    for insts in [
        vec![Dup],
        vec![Drop],
        vec![Swap],
        vec![Over],
        vec![Rot],
        vec![MinusRot],
        vec![Nip],
        vec![Tuck],
        vec![TwoDup],
        vec![TwoDrop],
        vec![TwoSwap],
        vec![TwoOver],
        vec![Depth],
        vec![Swap, Rot, Nip, Tuck, Dup],
        vec![Rot, Rot, Rot],      // identity via three rotations
        vec![Swap, Swap],         // identity
        vec![Dup, Dup, Dup, Dup], // forces spills
    ] {
        check_full(&halted(insts), &setup);
    }
    check_full(&halted(vec![QDup]), &[0]);
    check_full(&halted(vec![QDup]), &[7]);
    check_full(&halted(vec![Lit(0), Pick]), &setup);
    check_full(&halted(vec![Lit(4), Pick]), &setup);
    check_full(&halted(vec![Lit(5), Pick]), &setup); // out of range → trap
    check_full(&halted(vec![Lit(-1), Pick]), &setup); // negative → trap
    check_full(&halted(vec![Depth]), &[]);
}

#[test]
fn return_stack_ops() {
    use Inst::*;
    for insts in [
        vec![Lit(5), ToR, FromR],
        vec![Lit(5), ToR, RFetch, FromR],
        vec![Lit(1), Lit(2), TwoToR, TwoFromR],
        vec![Lit(1), Lit(2), TwoToR, TwoRFetch, TwoFromR, Add, Add, Add],
        vec![Lit(9), ToR, LoopI, FromR],
        vec![
            Lit(1),
            Lit(2),
            Lit(3),
            Lit(4),
            TwoToR,
            TwoToR,
            LoopJ,
            FromR,
            FromR,
            FromR,
            FromR,
        ],
        vec![Lit(1), Lit(2), TwoToR, Unloop],
        // underflow traps
        vec![FromR],
        vec![RFetch],
        vec![TwoFromR],
        vec![TwoRFetch],
        vec![LoopI],
        vec![LoopJ],
        vec![Unloop],
        vec![Lit(1), ToR, TwoFromR],
    ] {
        check_full(&halted(insts), &[]);
    }
}

#[test]
fn memory_ops() {
    use Inst::*;
    for insts in [
        vec![Lit(42), Lit(0), Store, Lit(0), Fetch],
        vec![
            Lit(42),
            Lit(MEM as i64 - 8),
            Store,
            Lit(MEM as i64 - 8),
            Fetch,
        ],
        vec![Lit(-1), Lit(8), Store, Lit(8), Fetch],
        vec![Lit(300), Lit(3), CStore, Lit(3), CFetch], // truncates to byte
        vec![Lit(65), Lit(0), CStore, Lit(0), CFetch],
        vec![
            Lit(5),
            Lit(16),
            Store,
            Lit(3),
            Lit(16),
            PlusStore,
            Lit(16),
            Fetch,
        ],
        // unaligned cell access
        vec![Lit(0x1122334455667788), Lit(3), Store, Lit(3), Fetch],
        // bounds traps: negative, straddling, far out
        vec![Lit(-1), Fetch],
        vec![Lit(MEM as i64 - 7), Fetch],
        vec![Lit(MEM as i64), Fetch],
        vec![Lit(1), Lit(-1), Store],
        vec![Lit(1), Lit(MEM as i64 - 7), Store],
        vec![Lit(-1), CFetch],
        vec![Lit(MEM as i64), CFetch],
        vec![Lit(1), Lit(MEM as i64), CStore],
        vec![Lit(1), Lit(-9), PlusStore],
    ] {
        check_full(&halted(insts), &[]);
    }
}

#[test]
fn output_ops() {
    use Inst::*;
    check_full(&halted(vec![Lit(72), Emit, Lit(105), Emit, Cr]), &[]);
    check_full(&halted(vec![Lit(300), Emit]), &[]); // byte truncation
    check_full(&halted(vec![Lit(-42), Dot, Lit(7), Dot]), &[]);
    // Enough emits to force Vec growth (capacity guard → deopt → regrow).
    let mut insts = Vec::new();
    for i in 0..64 {
        insts.push(Lit(65 + (i % 26)));
        insts.push(Emit);
    }
    check_full(&halted(insts), &[]);
    // type: valid range, empty range, negative length, out of bounds
    check_full(
        &halted(vec![
            Lit(72),
            Lit(0),
            CStore,
            Lit(73),
            Lit(1),
            CStore,
            Lit(0),
            Lit(2),
            Type,
        ]),
        &[],
    );
    check_full(&halted(vec![Lit(0), Lit(0), Type]), &[]);
    check_full(&halted(vec![Lit(0), Lit(-3), Type]), &[]);
    check_full(&halted(vec![Lit(MEM as i64 - 1), Lit(5), Type]), &[]);
}

#[test]
fn stack_depth_traps() {
    use Inst::*;
    // underflow at every arity
    for insts in [
        vec![Add],
        vec![Lit(1), Add],
        vec![Dup],
        vec![Drop],
        vec![Swap],
        vec![Rot],
        vec![Lit(1), Lit(2), Rot],
        vec![TwoSwap],
        vec![Lit(1), Lit(2), Lit(3), TwoSwap],
        vec![TwoOver],
        vec![Pick],
        vec![QDup],
        vec![ToR],
        vec![Store],
        vec![Lit(0), Store],
        vec![Emit],
        vec![Dot],
    ] {
        check_full(&halted(insts), &[]);
    }
}

#[test]
fn stack_overflow_traps() {
    use Inst::*;
    // A machine with a tiny stack limit: overflow through every pusher.
    let mut m_ref = Machine::with_memory(MEM);
    let mut m_jit = Machine::with_memory(MEM);
    m_ref.set_stack_limit(4);
    m_jit.set_stack_limit(4);
    for insts in [
        vec![Lit(1), Lit(2), Lit(3), Lit(4), Lit(5)],
        vec![Lit(1), Lit(2), Lit(3), Lit(4), Dup],
        vec![Lit(1), Lit(2), Lit(3), Lit(4), Over],
        vec![Lit(1), Lit(2), Lit(3), TwoDup],
        vec![Lit(1), Lit(2), Lit(3), Lit(4), Depth],
        vec![Lit(1), Lit(2), Lit(3), Tuck, Tuck],
        vec![Lit(1), Lit(2), Lit(3), Lit(4), ToR, RFetch, FromR, Depth],
    ] {
        let p = halted(insts);
        let mut a = m_ref.clone();
        let mut b = m_jit.clone();
        let ra = run_baseline_with_checks(&p, &mut a, 1_000, Checks::Full);
        let rb = run_jit_with_checks(&p, &mut b, 1_000, Checks::Full);
        match (&ra, &rb) {
            (Ok(x), Ok(y)) => assert_eq!(x.executed, y.executed),
            (Err(x), Err(y)) => assert_eq!(x, y, "on {p:?}"),
            other => panic!("divergence on {p:?}: {other:?}"),
        }
        assert_eq!(a.stack(), b.stack(), "on {p:?}");
    }
}

#[test]
fn rstack_overflow_traps() {
    use Inst::*;
    let mut m_ref = Machine::with_memory(MEM);
    let mut m_jit = Machine::with_memory(MEM);
    m_ref.set_rstack_limit(2);
    m_jit.set_rstack_limit(2);
    for insts in [
        vec![Lit(1), ToR, Lit(2), ToR, Lit(3), ToR],
        vec![Lit(1), Lit(2), TwoToR, Lit(3), ToR],
        vec![Lit(1), ToR, Lit(2), Lit(3), TwoToR],
    ] {
        let p = halted(insts);
        let mut a = m_ref.clone();
        let mut b = m_jit.clone();
        let ra = run_baseline_with_checks(&p, &mut a, 1_000, Checks::Full);
        let rb = run_jit_with_checks(&p, &mut b, 1_000, Checks::Full);
        match (&ra, &rb) {
            (Err(x), Err(y)) => assert_eq!(x, y, "on {p:?}"),
            other => panic!("expected matching traps on {p:?}: {other:?}"),
        }
        assert_eq!(a.rstack(), b.rstack(), "on {p:?}");
    }
}

fn countdown_loop() -> Program {
    use Inst::*;
    let mut b = ProgramBuilder::new();
    b.entry_here();
    b.push(Lit(0));
    b.push(Lit(100));
    let top = b.new_label();
    b.bind(top).unwrap();
    b.push(Swap);
    b.push(Over);
    b.push(Add);
    b.push(Swap);
    b.push(OneMinus);
    b.push(Dup);
    let out = b.new_label();
    b.branch_if_zero(out);
    b.branch(top);
    b.bind(out).unwrap();
    b.push(Drop);
    b.push(Halt);
    b.finish().unwrap()
}

fn do_loop_program() -> Program {
    use Inst::*;
    let mut b = ProgramBuilder::new();
    let word = b.new_label();
    b.entry_here();
    b.push(Lit(0));
    b.push(Lit(20));
    b.push(Lit(0));
    b.push(DoSetup);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.push(LoopI);
    b.call(word);
    b.push(Add);
    b.loop_inc(top);
    b.push(Halt);
    b.bind(word).unwrap();
    b.push(Dup);
    b.push(Mul);
    b.push(Return);
    b.finish().unwrap()
}

fn plus_loop_program(start: i64, limit: i64, step: i64) -> Program {
    use Inst::*;
    let mut b = ProgramBuilder::new();
    b.entry_here();
    b.push(Lit(0));
    b.push(Lit(limit));
    b.push(Lit(start));
    b.push(DoSetup);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.push(LoopI);
    b.push(Add);
    b.push(Lit(step));
    b.plus_loop_inc(top);
    b.push(Halt);
    b.finish().unwrap()
}

fn qdo_program(limit: i64, start: i64) -> Program {
    use Inst::*;
    let mut b = ProgramBuilder::new();
    b.entry_here();
    b.push(Lit(0));
    b.push(Lit(limit));
    b.push(Lit(start));
    let out = b.new_label();
    b.qdo(out);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.push(LoopI);
    b.push(Add);
    b.loop_inc(top);
    b.bind(out).unwrap();
    b.push(Halt);
    b.finish().unwrap()
}

#[test]
fn control_flow_programs() {
    check_full(&countdown_loop(), &[]);
    check_full(&do_loop_program(), &[]);
    check_full(&plus_loop_program(0, 10, 3), &[]);
    check_full(&plus_loop_program(10, 0, -3), &[]);
    check_full(&plus_loop_program(0, 10, -1), &[]); // wraps the long way
    check_full(&plus_loop_program(5, 5, 1), &[]);
    check_full(&qdo_program(5, 5), &[]); // taken: empty loop
    check_full(&qdo_program(5, 0), &[]);
}

#[test]
fn execute_and_tokens() {
    use Inst::*;
    // execute of a valid word: the word lives at index 4
    let p = program_of(&[Lit(6), Lit(4), Execute, Halt, Dup, Mul, Return]);
    check_full(&p, &[]);
    // invalid tokens
    check_full(&halted(vec![Lit(-1), Execute]), &[]);
    check_full(&halted(vec![Lit(1_000_000), Execute]), &[]);
    check_full(&halted(vec![Lit(0), Execute]), &[]); // self-loop until fuel
}

#[test]
fn return_bounds() {
    use Inst::*;
    check_full(&halted(vec![Return]), &[]); // rstack underflow
    check_full(&program_of(&[Lit(-5), ToR, Return]), &[]); // negative ret
    check_full(&program_of(&[Lit(1_000_000), ToR, Return]), &[]); // past end
                                                                  // ret == len is allowed by the bound, then the fetch traps
    check_full(&program_of(&[Lit(3), ToR, Return]), &[]);
}

#[test]
fn fuel_sweeps_across_loops() {
    for p in [
        countdown_loop(),
        do_loop_program(),
        plus_loop_program(0, 10, 3),
    ] {
        // Sweep fuel right through the whole execution: the reported
        // FuelExhausted ip must match at every cutoff.
        for fuel in 0..900 {
            check(&p, fuel, Checks::Full, &[]);
        }
    }
}

#[test]
fn falls_through_block_boundaries() {
    use Inst::*;
    // A branch target mid-straight-line code creates adjacent blocks
    // connected by fallthrough.
    let mut b = ProgramBuilder::new();
    b.entry_here();
    b.push(Lit(1));
    let mid = b.new_label();
    b.push(Lit(2));
    b.bind(mid).unwrap();
    b.push(Add);
    b.push(Dup);
    let out = b.new_label();
    b.push(Lit(10));
    b.push(Lt);
    b.branch_if_zero(out);
    b.push(Lit(1));
    b.branch(mid);
    b.bind(out).unwrap();
    b.push(Halt);
    let p = b.finish().unwrap();
    check_full(&p, &[]);
}

#[test]
fn checks_levels_agree_on_safe_programs() {
    // On programs that never underflow/overflow, every checks level
    // must produce identical results in both engines.
    for checks in [Checks::Full, Checks::NoUnderflow, Checks::None] {
        check(&countdown_loop(), 1_000_000, checks, &[]);
        check(&do_loop_program(), 1_000_000, checks, &[]);
        check(&plus_loop_program(0, 10, 3), 1_000_000, checks, &[]);
    }
}

#[test]
fn degraded_mode_is_behaviorally_identical() {
    // With the JIT forced unavailable the public entry point must give
    // byte-identical results, not an error.
    use Inst::*;
    let before = stackcache_jit::stats().fallbacks;
    stackcache_jit::force_unavailable(true);
    assert!(!stackcache_jit::available());
    // Programs no other test compiles — a block-cache hit would serve
    // already-mapped native code and mask the degradation path.
    check_full(
        &halted(vec![Lit(111_222), Lit(333_444), Add, Dup, Mul]),
        &[],
    );
    check_full(&halted(vec![Lit(987_654), Dup, Add, Lit(3), Mod]), &[]);
    stackcache_jit::force_unavailable(false);
    let after = stackcache_jit::stats().fallbacks;
    assert!(
        after > before,
        "degraded runs must count jit_fallbacks_total"
    );
}
