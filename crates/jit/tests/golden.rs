//! Golden byte-image tests: the exact machine code emitted for
//! representative blocks at each entry cache state, mirroring the
//! frozen wire-format suite in `crates/net`.
//!
//! These bytes are a contract. If a template, the register map, the
//! prologue/epilogue, or stub layout changes *intentionally*, regenerate
//! with `cargo run -p stackcache-jit --example golden_gen` and update —
//! and expect the differential campaign to re-vet every change.

use stackcache_jit::{block_bytes, CacheState};
use stackcache_vm::{program_of, Checks, Inst, Program};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn image(p: &Program, end: usize, state: usize, checks: Checks) -> String {
    hex(&block_bytes(
        p,
        0,
        end,
        CacheState::canonical(state),
        checks,
    ))
}

/// `lit 2; add` at every entry cache state: state 0 fills from memory,
/// deeper states use progressively more registers, state 3 must spill
/// for the literal.
#[test]
fn add_block_at_each_entry_state() {
    use Inst::*;
    let p = program_of(&[Lit(2), Add, Halt]);
    let expect = [
        // state 0: fuel gate + fill guard + fill + add
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f875b0000004889c5488d4601483b47100f875600000049c7c0020000004885f60f84590000004c8b4cf3f84883ee014d01c14c890cf34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc348c7c000000000e9ddffffff4883ed0348b80000000001000000e9caffffff4c8904f34883c6014883ed0248b80100000001000000e9afffffff",
        // state 1: TOS already in r8 — no fill needed
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f87490000004889c5488d4602483b47100f874c00000049c7c1020000004d01c84c8904f34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34883c60148c7c000000000e9d5ffffff4c8904f34883c6014883ed0348b80000000001000000e9baffffff",
        // state 2
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f874e0000004889c5488d4603483b47100f875600000049c7c2020000004d01d14c8904f34c894cf3084883c60248b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34c894cf3084883c60248c7c000000000e9d0ffffff4c8904f34c894cf3084883c6024883ed0348b80000000001000000e9b0ffffff",
        // state 3: pool full — the literal spills the bottom cell
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f87560000004889c5488d4604483b47100f87630000004c8904f34883c60149c7c0020000004d01c24c890cf34c8954f3084883c60248b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34c894cf3084c8954f3104883c60348c7c000000000e9cbffffff4c8904f34c894cf3084c8954f3104883c6034883ed0348b80000000001000000e9a6ffffff",
    ];
    for (n, want) in expect.iter().enumerate() {
        assert_eq!(&image(&p, 3, n, Checks::Full), want, "entry state {n}");
    }
}

/// Pure shuffles compile to zero instructions: at entry state 3 the
/// whole `swap; rot; nip` body is just prologue, fuel gate, flush,
/// exit.
#[test]
fn shuffles_emit_no_code() {
    use Inst::*;
    let p = program_of(&[Swap, Rot, Nip, Halt]);
    assert_eq!(
        image(&p, 4, 3, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4504483b47580f87360000004889c54c8914f34c8944f3084883c60248b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34c894cf3084c8954f3104883c60348c7c000000000e9cbffffff",
    );
    // The paper's property as a length identity: adding a swap to a
    // block changes nothing but the flush order.
    let swap_halt = block_bytes(
        &program_of(&[Swap, Halt]),
        0,
        2,
        CacheState::canonical(2),
        Checks::Full,
    );
    let halt_only = block_bytes(
        &program_of(&[Halt]),
        0,
        1,
        CacheState::canonical(2),
        Checks::Full,
    );
    assert_eq!(swap_halt.len(), halt_only.len());
}

/// Memory loads carry their two-sided bounds guard at every state.
#[test]
fn fetch_block_images() {
    use Inst::*;
    let p = program_of(&[Fetch, Halt]);
    assert_eq!(
        image(&p, 2, 0, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4502483b47580f875d0000004889c54885f60f845d0000004c8b44f3f84883ee014d39f80f835e000000498d40084c39f80f87510000004f8b04064c8904f34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc348c7c000000000e9ddffffff4883ed0248b80000000001000000e9caffffff4c8904f34883c6014883ed0248b80000000001000000e9afffffff",
    );
    assert_eq!(
        image(&p, 2, 1, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4502483b47580f874b0000004889c54d39f80f8353000000498d40084c39f80f87460000004f8b04064c8904f34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34883c60148c7c000000000e9d5ffffff4c8904f34883c6014883ed0248b80000000001000000e9baffffff",
    );
}

/// Division: zero guard, MIN/-1 guard, idiv, euclidean fixup.
#[test]
fn div_block_image() {
    use Inst::*;
    let p = program_of(&[Div, Halt]);
    assert_eq!(
        image(&p, 2, 2, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4502483b47580f87810000004889c54d85c90f848e00000049bb00000000000000804d39d80f850a0000004983f9ff0f84910000004c89c0489949f7f94885d20f89160000004d85c90f88090000004883e801e9040000004883c0014989c04c8904f34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34c894cf3084883c60248c7c000000000e9d0ffffff4c8904f34c894cf3084883c6024883ed0248b80000000001000000e9b0ffffff4c8904f34c894cf3084883c6024883ed0248b80000000001000000e990ffffff",
    );
}

/// Conditional branch: both exits carry their own packed exit word.
#[test]
fn branch_if_zero_image() {
    use Inst::*;
    let p = program_of(&[BranchIfZero(0)]);
    assert_eq!(
        image(&p, 1, 1, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4501483b47580f873b0000004889c54d85c00f850c00000048c7c000000000e90c00000048c7c001000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc34c8904f34883c60148c7c000000000e9d5ffffff",
    );
}

/// Loop back-edge: underflow guard, wrapping increment, limit compare.
#[test]
fn loop_inc_image() {
    use Inst::*;
    let p = program_of(&[LoopInc(0)]);
    assert_eq!(
        image(&p, 1, 0, Checks::Full),
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4501483b47580f875c0000004889c54983fd020f825b0000004b8b44ecf84883c0014b8b4cecf04839c80f84110000004b8944ecf848c7c000000000e9100000004983ed0248c7c001000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc348c7c000000000e9ddffffff4883ed0148b80000000001000000e9caffffff",
    );
}

/// The three checks levels shed guards monotonically: Full carries the
/// underflow guard, NoUnderflow drops it, None drops the overflow
/// guard too (proof-gated admission only).
#[test]
fn checks_levels_shed_guards() {
    use Inst::*;
    let p = program_of(&[Lit(2), Add, Halt]);
    let full = image(&p, 3, 0, Checks::Full);
    let nou = image(&p, 3, 0, Checks::NoUnderflow);
    let none = image(&p, 3, 0, Checks::None);
    assert_eq!(
        nou,
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f87520000004889c5488d4601483b47100f874d00000049c7c0020000004c8b4cf3f84883ee014d01c14c890cf34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc348c7c000000000e9ddffffff4883ed0348b80000000001000000e9caffffff",
    );
    assert_eq!(
        none,
        "53554154415541564157488b1f488b77084c8b67184c8b6f204c8b77304c8b7f38488b6f60488d4503483b47580f87440000004889c549c7c0020000004c8b4cf3f84883ee014d01c14c890cf34883c60148b80000000002000000e900000000488977084c896f2048896f60415f415e415d415c5d5bc348c7c000000000e9ddffffff",
    );
    assert!(full.len() > nou.len());
    assert!(nou.len() > none.len());
}
