use stackcache_jit::{block_bytes, CacheState};
use stackcache_vm::{program_of, Checks, Inst};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn main() {
    use Inst::*;
    let add = program_of(&[Lit(2), Add, Halt]);
    for n in 0..=3 {
        let b = block_bytes(&add, 0, 3, CacheState::canonical(n), Checks::Full);
        println!("add s{n} len={} {}", b.len(), hex(&b));
    }
    let shuffle = program_of(&[Swap, Rot, Nip, Halt]);
    for n in [0, 3] {
        let b = block_bytes(&shuffle, 0, 4, CacheState::canonical(n), Checks::Full);
        println!("shuffle s{n} len={} {}", b.len(), hex(&b));
    }
    let fetch = program_of(&[Fetch, Halt]);
    for n in [0, 1] {
        let b = block_bytes(&fetch, 0, 2, CacheState::canonical(n), Checks::Full);
        println!("fetch s{n} len={} {}", b.len(), hex(&b));
    }
    let div = program_of(&[Div, Halt]);
    let b = block_bytes(&div, 0, 2, CacheState::canonical(2), Checks::Full);
    println!("div s2 len={} {}", b.len(), hex(&b));
    let bz = program_of(&[BranchIfZero(0)]);
    let b = block_bytes(&bz, 0, 1, CacheState::canonical(1), Checks::Full);
    println!("bz s1 len={} {}", b.len(), hex(&b));
    let lp = program_of(&[LoopInc(0)]);
    let b = block_bytes(&lp, 0, 1, CacheState::canonical(0), Checks::Full);
    println!("loopinc s0 len={} {}", b.len(), hex(&b));
    // checks-level comparison for the same block
    for c in [Checks::Full, Checks::NoUnderflow, Checks::None] {
        let b = block_bytes(&add, 0, 3, CacheState::empty(), c);
        println!("add-{c:?} len={} {}", b.len(), hex(&b));
    }
}
