//! The basic-block template compiler.
//!
//! Each VM basic block becomes one native function. Inside a block the
//! paper's static cache-state FSM runs at *compile time*: the top of
//! the data stack migrates into machine registers ([`CacheState`]) and
//! pure stack shuffles (`swap`, `rot`, `nip`, …) emit **zero
//! instructions** — they permute the compile-time register list.
//!
//! # Register map
//!
//! | register      | role                                             |
//! |---------------|--------------------------------------------------|
//! | `rdi`         | `*mut JitCtx` (pinned, callee argument)          |
//! | `rbx`         | data-stack base pointer                          |
//! | `rsi`         | data-stack depth of the *in-memory* part (cells) |
//! | `r12`         | return-stack base pointer                        |
//! | `r13`         | return-stack depth (cells)                       |
//! | `r14`         | VM memory base pointer                           |
//! | `r15`         | VM memory length (bytes)                         |
//! | `r8 r9 r10`   | stack-cache registers (the [`CacheState`] pool)  |
//! | `rax rcx rdx r11` | template scratch                             |
//!
//! The block invariant: `logical stack = stack_mem[0..rsi] ++ regs`.
//!
//! # Template discipline
//!
//! Every template runs in three phases:
//!
//! 1. **fill** — bring operands into registers (each fill carries its
//!    own underflow guard under [`Checks::Full`]);
//! 2. **guard** — branch to a deoptimization stub on any condition the
//!    interpreter would trap on (or that native code cannot express,
//!    e.g. an output-buffer grow). Guards only *peek*; nothing logical
//!    has changed yet, so the stub can restore the interpreter state by
//!    flushing the current compile-time state and reporting the
//!    instruction's own ip. Guards may be conservative (a spurious
//!    fallback re-executes the instruction in the interpreter, which is
//!    always correct) but must never miss a condition the interpreter
//!    checks.
//! 3. **commit** — mutate registers, memory and the compile-time state.
//!
//! Traps therefore never materialize in native code: the stub returns
//! `(FALLBACK << 32) | ip` and the interpreter re-executes from `ip`,
//! reproducing the exact `VmError` (and exact partial state) the
//! reference implementation defines.

use crate::asm::{Asm, Cc, Label, Mem, Reg};
use crate::mem::{ExecBuf, MapError};
use crate::state::CacheState;
use stackcache_vm::{Checks, Inst, Program};

// `JitCtx` field offsets; pinned by a layout test in `run.rs`.
pub(crate) const OFF_STACK_PTR: i32 = 0;
pub(crate) const OFF_SP: i32 = 8;
pub(crate) const OFF_STACK_LIMIT: i32 = 16;
pub(crate) const OFF_RSTACK_PTR: i32 = 24;
pub(crate) const OFF_RSP: i32 = 32;
pub(crate) const OFF_RSTACK_LIMIT: i32 = 40;
pub(crate) const OFF_MEM_PTR: i32 = 48;
pub(crate) const OFF_MEM_LEN: i32 = 56;
pub(crate) const OFF_OUT_PTR: i32 = 64;
pub(crate) const OFF_OUT_LEN: i32 = 72;
pub(crate) const OFF_OUT_CAP: i32 = 80;
pub(crate) const OFF_FUEL: i32 = 88;
pub(crate) const OFF_EXECUTED: i32 = 96;

/// Exit-word kinds packed into bits 32.. of the native return value;
/// bits ..32 carry an instruction index.
pub(crate) const KIND_JUMP: u64 = 0;
pub(crate) const KIND_FALLBACK: u64 = 1;
pub(crate) const KIND_HALT: u64 = 2;

const CTX: Reg = Reg::Rdi;
const SBASE: Reg = Reg::Rbx;
const SP: Reg = Reg::Rsi;
const RBASE: Reg = Reg::R12;
const RSP: Reg = Reg::R13;
const MBASE: Reg = Reg::R14;
const MLEN: Reg = Reg::R15;
/// Executed-instruction counter, pinned so chained blocks charge fuel
/// without touching `JitCtx` memory.
const EXEC: Reg = Reg::Rbp;

/// One compiled basic block.
#[derive(Debug, Clone, Copy)]
pub struct BlockEntry {
    /// First instruction index (the block leader).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Byte offset of the block's native entry point.
    pub offset: usize,
}

/// A whole program compiled to native blocks at one [`Checks`] level.
#[derive(Debug)]
pub struct JitProgram {
    buf: ExecBuf,
    /// Sorted by `start`; blocks tile the program.
    blocks: Vec<BlockEntry>,
    checks: Checks,
}

impl JitProgram {
    /// Compile every basic block of `program`.
    ///
    /// # Errors
    /// [`MapError`] when executable memory is unavailable (wrong
    /// architecture, mmap failure, or the test hook) — callers degrade
    /// to the interpreter.
    pub fn compile(program: &Program, checks: Checks) -> Result<JitProgram, MapError> {
        if !cfg!(all(target_arch = "x86_64", unix)) {
            return Err(MapError::Unsupported);
        }
        let mut asm = Asm::new();
        let mut blocks = Vec::new();
        // Every block leader gets a *chain* label at its post-prologue
        // body, so static-target terminators jump block-to-block without
        // leaving native code (the cache state is empty at every block
        // boundary, so no adapter is needed).
        let spans = program.basic_blocks();
        let chain: ChainMap = spans
            .iter()
            .map(|&(start, _)| (start, asm.new_label()))
            .collect();
        // `return` chains through a table of chain offsets indexed by
        // instruction ip (0 = not a leader, exit to the driver).
        let base = asm.new_label();
        let table = asm.new_label();
        asm.bind(base);
        for &(start, end) in &spans {
            let offset = asm.here();
            compile_block(
                &mut asm,
                program,
                start,
                end,
                CacheState::empty(),
                checks,
                &chain,
                Some((base, table)),
            );
            blocks.push(BlockEntry { start, end, offset });
        }
        asm.bind(table);
        for ip in 0..=program.len() {
            match chain.get(&ip) {
                Some(&label) => asm.label_offset_u32(label),
                None => asm.zero_u32(),
            }
        }
        let code = asm.finish();
        let buf = ExecBuf::new(&code)?;
        Ok(JitProgram {
            buf,
            blocks,
            checks,
        })
    }

    /// The checks level this code was emitted for.
    #[must_use]
    pub fn checks(&self) -> Checks {
        self.checks
    }

    /// Look up the block whose leader is exactly `ip`.
    #[must_use]
    pub fn block_at(&self, ip: usize) -> Option<BlockEntry> {
        self.blocks
            .binary_search_by_key(&ip, |b| b.start)
            .ok()
            .map(|i| self.blocks[i])
    }

    /// Exclusive end of the block containing `ip` (not necessarily a
    /// leader), or `usize::MAX` when no block covers it — the stop
    /// boundary for an interpreter span after a deoptimization.
    #[must_use]
    pub fn block_end_containing(&self, ip: usize) -> usize {
        let i = self.blocks.partition_point(|b| b.start <= ip);
        match i.checked_sub(1).map(|i| self.blocks[i]) {
            Some(b) if ip < b.end => b.end,
            _ => usize::MAX,
        }
    }

    /// Native entry point for a compiled block.
    #[cfg(all(target_arch = "x86_64", unix))]
    #[must_use]
    pub(crate) fn entry(
        &self,
        block: BlockEntry,
    ) -> extern "sysv64" fn(*mut crate::run::JitCtx) -> u64 {
        self.buf.entry(block.offset)
    }

    /// Total emitted code size in bytes (page-rounded).
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.buf.len()
    }
}

/// Compile a single block to bytes with a given entry cache state —
/// the golden byte-image surface. The produced function assumes the top
/// `entry.depth()` stack cells are already in the entry state's
/// registers; the driver always uses the empty state, non-empty states
/// exist so tests can pin every template specialization.
#[must_use]
pub fn block_bytes(
    program: &Program,
    start: usize,
    end: usize,
    entry: CacheState,
    checks: Checks,
) -> Vec<u8> {
    let mut asm = Asm::new();
    compile_block(
        &mut asm,
        program,
        start,
        end,
        entry,
        checks,
        &ChainMap::new(),
        None,
    );
    asm.finish()
}

/// Block-leader ip → chain label (the block's post-prologue body).
type ChainMap = std::collections::HashMap<usize, Label>;

/// A deoptimization site: flush this state snapshot, refund the block
/// instructions that never ran, then exit with `(FALLBACK << 32) | ip`.
struct Stub {
    label: Label,
    state: CacheState,
    ip: usize,
}

struct BlockCompiler<'a> {
    asm: &'a mut Asm,
    checks: Checks,
    state: CacheState,
    epilogue: Label,
    stubs: Vec<Stub>,
    insts_len: usize,
    /// One past this block's last instruction — the refund base.
    end: usize,
    /// Chain labels for every block leader in the same buffer.
    targets: &'a ChainMap,
    /// `(buffer base, chain table)` labels for indirect `return`
    /// chaining; `None` on the single-block `block_bytes` surface.
    ret_table: Option<(Label, Label)>,
}

#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
#[allow(clippy::too_many_arguments)]
fn compile_block(
    asm: &mut Asm,
    program: &Program,
    start: usize,
    end: usize,
    entry: CacheState,
    checks: Checks,
    targets: &ChainMap,
    ret_table: Option<(Label, Label)>,
) {
    let epilogue = asm.new_label();
    let mut c = BlockCompiler {
        asm,
        checks,
        state: entry,
        epilogue,
        stubs: Vec::new(),
        insts_len: program.len(),
        end,
        targets,
        ret_table,
    };

    // Prologue: save callee-saved registers, load the pinned VM state.
    // Only the external (Rust → native) entry runs this; chained entries
    // land on the chain label below with the pinned registers live.
    c.asm.push(SBASE);
    c.asm.push(EXEC);
    c.asm.push(RBASE);
    c.asm.push(RSP);
    c.asm.push(MBASE);
    c.asm.push(MLEN);
    c.asm.mov_rm(SBASE, Mem::base(CTX, OFF_STACK_PTR));
    c.asm.mov_rm(SP, Mem::base(CTX, OFF_SP));
    c.asm.mov_rm(RBASE, Mem::base(CTX, OFF_RSTACK_PTR));
    c.asm.mov_rm(RSP, Mem::base(CTX, OFF_RSP));
    c.asm.mov_rm(MBASE, Mem::base(CTX, OFF_MEM_PTR));
    c.asm.mov_rm(MLEN, Mem::base(CTX, OFF_MEM_LEN));
    c.asm.mov_rm(EXEC, Mem::base(CTX, OFF_EXECUTED));
    if let Some(&label) = targets.get(&start) {
        c.asm.bind(label);
    }

    // Fuel gate: charge the whole block up front (into the pinned
    // counter), or bail to the driver with a *jump* exit at the leader
    // so the interpreter owns the instruction-exact `FuelExhausted`.
    // Deopt stubs refund the tail that never ran.
    let bail = c.asm.new_label();
    c.stubs.push(Stub {
        label: bail,
        state: c.state.clone(),
        ip: usize::MAX, // sentinel: emitted as a fuel bail, not a deopt
    });
    c.asm.lea(Reg::Rax, Mem::base(EXEC, (end - start) as i32));
    c.asm.cmp_rm(Reg::Rax, Mem::base(CTX, OFF_FUEL));
    c.asm.jcc(Cc::A, bail);
    c.asm.mov_rr(EXEC, Reg::Rax);

    let mut terminated = false;
    for ip in start..end {
        let inst = program.insts()[ip];
        if c.compile_inst(ip, inst) {
            terminated = true;
            break;
        }
    }
    if !terminated {
        // Fall through to the next leader.
        c.flush();
        c.exit_jump(end);
    }

    // Epilogue: publish depths and the fuel counter, restore, return
    // (rax set by the jumper).
    c.asm.bind(epilogue);
    c.asm.mov_mr(Mem::base(CTX, OFF_SP), SP);
    c.asm.mov_mr(Mem::base(CTX, OFF_RSP), RSP);
    c.asm.mov_mr(Mem::base(CTX, OFF_EXECUTED), EXEC);
    c.asm.pop(MLEN);
    c.asm.pop(MBASE);
    c.asm.pop(RSP);
    c.asm.pop(RBASE);
    c.asm.pop(EXEC);
    c.asm.pop(SBASE);
    c.asm.ret();

    // Deoptimization stubs: restore the interpreter-visible stack by
    // flushing the state as it was at the guard, refund the block tail
    // that never committed, then report the ip. The fuel-bail stub
    // (sentinel ip) flushes and reports a jump at the leader instead —
    // nothing was charged yet.
    for stub in std::mem::take(&mut c.stubs) {
        c.asm.bind(stub.label);
        flush_state(c.asm, &stub.state);
        if stub.ip == usize::MAX {
            c.asm
                .mov_ri(Reg::Rax, ((KIND_JUMP << 32) | start as u64) as i64);
        } else {
            let refund = (end - stub.ip) as i32;
            if refund > 0 {
                c.asm.sub_ri(EXEC, refund);
            }
            c.asm
                .mov_ri(Reg::Rax, ((KIND_FALLBACK << 32) | stub.ip as u64) as i64);
        }
        c.asm.jmp(epilogue);
    }
}

/// Emit stores for every cached cell (bottom first) and bump `rsi`.
fn flush_state(asm: &mut Asm, state: &CacheState) {
    for (i, &r) in state.regs().iter().enumerate() {
        asm.mov_mr(Mem::base_index8(SBASE, SP, 8 * i as i32), r);
    }
    let n = state.depth();
    if n > 0 {
        asm.add_ri(SP, n as i32);
    }
}

impl BlockCompiler<'_> {
    /// New deopt site at `ip` with the current state snapshot.
    fn stub(&mut self, ip: usize) -> Label {
        let label = self.asm.new_label();
        self.stubs.push(Stub {
            label,
            state: self.state.clone(),
            ip,
        });
        label
    }

    /// Spill the whole cache state to memory.
    fn flush(&mut self) {
        flush_state(self.asm, &self.state);
        while self.state.depth() > 0 {
            self.state.pop();
        }
    }

    /// Exit the block: continue at `ip`. When `ip` is a block leader in
    /// the same buffer, jump straight to its chain entry — the cache
    /// state is empty at every exit, so no adapter is needed and control
    /// never leaves native code. Otherwise return to the driver.
    fn exit_jump(&mut self, ip: usize) {
        if let Some(&label) = self.targets.get(&ip) {
            self.asm.jmp(label);
        } else {
            self.asm
                .mov_ri(Reg::Rax, ((KIND_JUMP << 32) | ip as u64) as i64);
            self.asm.jmp(self.epilogue);
        }
    }

    /// Exit the block into the interpreter at `ip` (unsupported opcode),
    /// refunding the block tail from `ip` on — those instructions were
    /// charged by the fuel gate but never ran.
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    fn exit_fallback(&mut self, ip: usize) {
        let refund = (self.end - ip) as i32;
        if refund > 0 {
            self.asm.sub_ri(EXEC, refund);
        }
        self.asm
            .mov_ri(Reg::Rax, ((KIND_FALLBACK << 32) | ip as u64) as i64);
        self.asm.jmp(self.epilogue);
    }

    /// Bring one more cell from memory into the bottom of the cache.
    fn fill_one(&mut self, ip: usize) {
        let reg = self.state.free_reg().expect("fill with no free register");
        if self.checks == Checks::Full {
            let stub = self.stub(ip);
            self.asm.test_rr(SP, SP);
            self.asm.jcc(Cc::E, stub);
        }
        self.asm.mov_rm(reg, Mem::base_index8(SBASE, SP, -8));
        self.asm.sub_ri(SP, 1);
        self.state.fill_bottom(reg);
    }

    /// Ensure at least `n` cells are cached (`n <= MAX_CACHED`).
    fn fill_to(&mut self, n: usize, ip: usize) {
        while self.state.depth() < n {
            self.fill_one(ip);
        }
    }

    /// Allocate a register for a new TOS cell, spilling the bottom
    /// cached cell if the pool is full. The returned register's content
    /// is undefined; the caller must write it.
    fn push_reg(&mut self, _ip: usize) -> Reg {
        if let Some(r) = self.state.free_reg() {
            self.state.push(r);
            return r;
        }
        let bottom = self.state.spill_bottom();
        self.asm.mov_mr(Mem::base_index8(SBASE, SP, 0), bottom);
        self.asm.add_ri(SP, 1);
        self.state.push(bottom);
        bottom
    }

    /// Guard: the interpreter would overflow the data stack pushing
    /// `pushes` cells on top of the current logical depth.
    fn guard_overflow(&mut self, pushes: usize, ip: usize) {
        if self.checks == Checks::None {
            return;
        }
        let watermark = (self.state.depth() + pushes) as i32;
        let stub = self.stub(ip);
        self.asm.lea(Reg::Rax, Mem::base(SP, watermark));
        self.asm.cmp_rm(Reg::Rax, Mem::base(CTX, OFF_STACK_LIMIT));
        self.asm.jcc(Cc::A, stub);
    }

    /// Guard: return-stack overflow pushing `pushes` cells.
    fn guard_roverflow(&mut self, pushes: usize, ip: usize) {
        if self.checks == Checks::None {
            return;
        }
        let stub = self.stub(ip);
        self.asm.lea(Reg::Rax, Mem::base(RSP, pushes as i32));
        self.asm.cmp_rm(Reg::Rax, Mem::base(CTX, OFF_RSTACK_LIMIT));
        self.asm.jcc(Cc::A, stub);
    }

    /// Guard: return-stack underflow popping/peeking `n` cells.
    fn guard_runderflow(&mut self, n: usize, ip: usize) {
        if self.checks != Checks::Full {
            return;
        }
        let stub = self.stub(ip);
        self.asm.cmp_ri(RSP, n as i32);
        self.asm.jcc(Cc::B, stub);
    }

    /// Guard: the in-memory stack holds fewer than `n` cells (used by
    /// flush-based templates needing more operands than the pool).
    fn guard_mem_underflow(&mut self, n: usize, ip: usize) {
        if self.checks != Checks::Full {
            return;
        }
        let stub = self.stub(ip);
        self.asm.cmp_ri(SP, n as i32);
        self.asm.jcc(Cc::B, stub);
    }

    /// Guard: `addr` (unsigned-compared) is not a valid cell address.
    /// Matches `Machine::load_cell`: trap iff `addr < 0` or
    /// `addr + 8 > mem_len`. Valid at every checks level — memory
    /// bounds are not depth checks.
    fn guard_cell_addr(&mut self, addr: Reg, ip: usize) {
        let stub = self.stub(ip);
        // addr as unsigned >= len catches negatives outright…
        self.asm.cmp_rr(addr, MLEN);
        self.asm.jcc(Cc::Ae, stub);
        // …so addr < len here and addr+8 cannot wrap.
        self.asm.lea(Reg::Rax, Mem::base(addr, 8));
        self.asm.cmp_rr(Reg::Rax, MLEN);
        self.asm.jcc(Cc::A, stub);
    }

    /// Guard: `addr` is not a valid byte address.
    fn guard_byte_addr(&mut self, addr: Reg, ip: usize) {
        let stub = self.stub(ip);
        self.asm.cmp_rr(addr, MLEN);
        self.asm.jcc(Cc::Ae, stub);
    }

    // ---- template families ----

    /// Binary ALU op: `[.. a b] -> [.. f(a,b)]`.
    fn binop(&mut self, ip: usize, f: impl FnOnce(&mut Asm, Reg, Reg)) {
        self.fill_to(2, ip);
        let b = self.state.from_top(0);
        let a = self.state.from_top(1);
        f(self.asm, a, b);
        self.state.pop();
    }

    /// Unary ALU op on TOS in place.
    fn unop(&mut self, ip: usize, f: impl FnOnce(&mut Asm, Reg)) {
        self.fill_to(1, ip);
        let a = self.state.from_top(0);
        f(self.asm, a);
    }

    /// Comparison producing a Forth flag (-1 / 0).
    fn cmp_flag(&mut self, ip: usize, cc: Cc) {
        self.fill_to(2, ip);
        let b = self.state.from_top(0);
        let a = self.state.from_top(1);
        self.asm.cmp_rr(a, b);
        self.asm.setcc(cc, Reg::R11);
        self.asm.movzx_rr8(Reg::R11, Reg::R11);
        self.asm.neg(Reg::R11);
        self.asm.mov_rr(a, Reg::R11);
        self.state.pop();
    }

    /// Comparison of TOS against zero.
    fn zero_flag(&mut self, ip: usize, cc: Cc) {
        self.fill_to(1, ip);
        let a = self.state.from_top(0);
        self.asm.cmp_ri(a, 0);
        self.asm.setcc(cc, Reg::R11);
        self.asm.movzx_rr8(Reg::R11, Reg::R11);
        self.asm.neg(Reg::R11);
        self.asm.mov_rr(a, Reg::R11);
    }

    /// `div`/`mod` front half: fill, division guards, `idiv` leaving
    /// quotient in rax, remainder in rdx; returns `(a, b)` registers.
    fn div_common(&mut self, ip: usize) -> (Reg, Reg) {
        self.fill_to(2, ip);
        let b = self.state.from_top(0);
        let a = self.state.from_top(1);
        // b == 0 → DivisionByZero in the interpreter.
        let zero = self.stub(ip);
        self.asm.test_rr(b, b);
        self.asm.jcc(Cc::E, zero);
        // i64::MIN / -1 faults in hardware; the interpreter's own
        // div_euclid panics on it too — let the interpreter own it.
        let minover = self.stub(ip);
        let ok = self.asm.new_label();
        self.asm.mov_ri(Reg::R11, i64::MIN);
        self.asm.cmp_rr(a, Reg::R11);
        self.asm.jcc(Cc::Ne, ok);
        self.asm.cmp_ri(b, -1);
        self.asm.jcc(Cc::E, minover);
        self.asm.bind(ok);
        self.asm.mov_rr(Reg::Rax, a);
        self.asm.cqo();
        self.asm.idiv(b);
        (a, b)
    }

    /// Compile one instruction; returns true when the block ends here.
    #[allow(clippy::too_many_lines)]
    fn compile_inst(&mut self, ip: usize, inst: Inst) -> bool {
        match inst {
            Inst::Lit(n) => {
                self.guard_overflow(1, ip);
                let d = self.push_reg(ip);
                self.asm.mov_ri(d, n);
            }
            Inst::Add => self.binop(ip, |a, x, y| a.add_rr(x, y)),
            Inst::Sub => self.binop(ip, |a, x, y| a.sub_rr(x, y)),
            Inst::Mul => self.binop(ip, |a, x, y| a.imul_rr(x, y)),
            Inst::And => self.binop(ip, |a, x, y| a.and_rr(x, y)),
            Inst::Or => self.binop(ip, |a, x, y| a.or_rr(x, y)),
            Inst::Xor => self.binop(ip, |a, x, y| a.xor_rr(x, y)),
            Inst::Min => self.binop(ip, |a, x, y| {
                a.cmp_rr(x, y);
                a.cmovcc(Cc::G, x, y);
            }),
            Inst::Max => self.binop(ip, |a, x, y| {
                a.cmp_rr(x, y);
                a.cmovcc(Cc::L, x, y);
            }),
            Inst::Lshift => self.binop(ip, |a, x, y| {
                a.mov_rr(Reg::Rcx, y);
                a.shl_cl(x); // hardware masks cl & 63 — the VM's rule
            }),
            Inst::Rshift => self.binop(ip, |a, x, y| {
                a.mov_rr(Reg::Rcx, y);
                a.shr_cl(x);
            }),
            Inst::Div => {
                let (a, b) = self.div_common(ip);
                // Truncated → euclidean quotient: remainder < 0 means
                // step one toward -inf (sign of b decides direction).
                let done = self.asm.new_label();
                let bneg = self.asm.new_label();
                self.asm.test_rr(Reg::Rdx, Reg::Rdx);
                self.asm.jcc(Cc::Ns, done);
                self.asm.test_rr(b, b);
                self.asm.jcc(Cc::S, bneg);
                self.asm.sub_ri(Reg::Rax, 1);
                self.asm.jmp(done);
                self.asm.bind(bneg);
                self.asm.add_ri(Reg::Rax, 1);
                self.asm.bind(done);
                self.asm.mov_rr(a, Reg::Rax);
                self.state.pop();
            }
            Inst::Mod => {
                let (a, b) = self.div_common(ip);
                // Truncated → euclidean remainder: add |b| when negative.
                let done = self.asm.new_label();
                let bneg = self.asm.new_label();
                self.asm.test_rr(Reg::Rdx, Reg::Rdx);
                self.asm.jcc(Cc::Ns, done);
                self.asm.test_rr(b, b);
                self.asm.jcc(Cc::S, bneg);
                self.asm.add_rr(Reg::Rdx, b);
                self.asm.jmp(done);
                self.asm.bind(bneg);
                self.asm.sub_rr(Reg::Rdx, b);
                self.asm.bind(done);
                self.asm.mov_rr(a, Reg::Rdx);
                self.state.pop();
            }
            Inst::Eq => self.cmp_flag(ip, Cc::E),
            Inst::Ne => self.cmp_flag(ip, Cc::Ne),
            Inst::Lt => self.cmp_flag(ip, Cc::L),
            Inst::Gt => self.cmp_flag(ip, Cc::G),
            Inst::Le => self.cmp_flag(ip, Cc::Le),
            Inst::Ge => self.cmp_flag(ip, Cc::Ge),
            Inst::ULt => self.cmp_flag(ip, Cc::B),
            Inst::UGt => self.cmp_flag(ip, Cc::A),
            Inst::ZeroEq => self.zero_flag(ip, Cc::E),
            Inst::ZeroNe => self.zero_flag(ip, Cc::Ne),
            Inst::ZeroLt => self.zero_flag(ip, Cc::L),
            Inst::ZeroGt => self.zero_flag(ip, Cc::G),
            Inst::Negate => self.unop(ip, Asm::neg),
            Inst::Invert => self.unop(ip, Asm::not),
            Inst::Abs => self.unop(ip, |a, x| {
                // branchless wrapping abs (MIN stays MIN, like the VM)
                a.mov_rr(Reg::R11, x);
                a.sar_i(Reg::R11, 63);
                a.xor_rr(x, Reg::R11);
                a.sub_rr(x, Reg::R11);
            }),
            Inst::OnePlus | Inst::CharPlus => self.unop(ip, |a, x| a.add_ri(x, 1)),
            Inst::OneMinus => self.unop(ip, |a, x| a.sub_ri(x, 1)),
            Inst::TwoStar => self.unop(ip, |a, x| a.add_rr(x, x)),
            Inst::TwoSlash => self.unop(ip, |a, x| a.sar_i(x, 1)),
            Inst::CellPlus => self.unop(ip, |a, x| a.add_ri(x, 8)),
            Inst::Cells => self.unop(ip, |a, x| a.shl_i(x, 3)),

            // ---- shuffles: the compile-time FSM at work ----
            Inst::Dup => {
                self.fill_to(1, ip);
                self.guard_overflow(1, ip);
                let top = self.state.from_top(0);
                let d = self.push_reg(ip);
                self.asm.mov_rr(d, top);
            }
            Inst::Drop => {
                self.fill_to(1, ip);
                self.state.pop();
            }
            Inst::Swap => {
                self.fill_to(2, ip);
                self.state.permute_top(&[1, 0]); // zero instructions
            }
            Inst::Rot => {
                self.fill_to(3, ip);
                self.state.permute_top(&[2, 0, 1]); // zero instructions
            }
            Inst::MinusRot => {
                self.fill_to(3, ip);
                self.state.permute_top(&[1, 2, 0]); // zero instructions
            }
            Inst::Nip => {
                self.fill_to(2, ip);
                self.state.remove_from_top(1); // zero instructions
            }
            Inst::Over => {
                self.fill_to(2, ip);
                self.guard_overflow(1, ip);
                let second = self.state.from_top(1);
                let d = self.push_reg(ip);
                self.asm.mov_rr(d, second);
            }
            Inst::Tuck => {
                self.fill_to(2, ip);
                self.guard_overflow(1, ip);
                self.state.permute_top(&[1, 0]);
                let b = self.state.from_top(1); // original TOS, now deeper
                let d = self.push_reg(ip);
                self.asm.mov_rr(d, b);
            }
            Inst::TwoDup => {
                self.fill_to(2, ip);
                self.guard_overflow(2, ip);
                let a = self.state.from_top(1);
                let d1 = self.push_reg(ip);
                self.asm.mov_rr(d1, a);
                let b = self.state.from_top(1); // original TOS
                let d2 = self.push_reg(ip);
                self.asm.mov_rr(d2, b);
            }
            Inst::TwoDrop => {
                self.fill_to(2, ip);
                self.state.pop();
                self.state.pop();
            }
            Inst::TwoSwap => {
                // Four operands exceed the pool: run from memory.
                self.flush();
                self.guard_mem_underflow(4, ip);
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -32));
                self.asm.mov_rm(Reg::Rcx, Mem::base_index8(SBASE, SP, -16));
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, -32), Reg::Rcx);
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, -16), Reg::Rax);
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -24));
                self.asm.mov_rm(Reg::Rcx, Mem::base_index8(SBASE, SP, -8));
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, -24), Reg::Rcx);
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, -8), Reg::Rax);
            }
            Inst::TwoOver => {
                self.flush();
                self.guard_mem_underflow(4, ip);
                self.guard_overflow(2, ip);
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -32));
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, 0), Reg::Rax);
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -24));
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, 8), Reg::Rax);
                self.asm.add_ri(SP, 2);
            }
            Inst::QDup => {
                // The two runtime outcomes leave different cache depths,
                // so converge through memory: both paths end state-empty.
                self.flush();
                self.guard_mem_underflow(1, ip);
                let skip = self.asm.new_label();
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -8));
                self.asm.test_rr(Reg::Rax, Reg::Rax);
                self.asm.jcc(Cc::E, skip);
                if self.checks != Checks::None {
                    let stub = self.stub(ip);
                    self.asm.cmp_rm(SP, Mem::base(CTX, OFF_STACK_LIMIT));
                    self.asm.jcc(Cc::Ae, stub);
                }
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, 0), Reg::Rax);
                self.asm.add_ri(SP, 1);
                self.asm.bind(skip);
            }
            Inst::Pick => {
                self.flush();
                self.guard_mem_underflow(1, ip);
                // u = TOS (peek); trap unless 0 <= u < depth-after-pop.
                // This range check is the interpreter's own and fires at
                // every checks level.
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(SBASE, SP, -8));
                let stub = self.stub(ip);
                self.asm.lea(Reg::R11, Mem::base(SP, -1));
                self.asm.cmp_rr(Reg::Rax, Reg::R11);
                self.asm.jcc(Cc::Ae, stub);
                // v = buf[(sp-1) - 1 - u]; pop u, push v — net zero.
                self.asm.mov_rr(Reg::Rcx, SP);
                self.asm.sub_rr(Reg::Rcx, Reg::Rax);
                self.asm
                    .mov_rm(Reg::R11, Mem::base_index8(SBASE, Reg::Rcx, -16));
                self.asm.mov_mr(Mem::base_index8(SBASE, SP, -8), Reg::R11);
            }
            Inst::Depth => {
                self.guard_overflow(1, ip);
                // Total depth before any spill push_reg might do.
                self.asm
                    .lea(Reg::R11, Mem::base(SP, self.state.depth() as i32));
                let d = self.push_reg(ip);
                self.asm.mov_rr(d, Reg::R11);
            }

            // ---- return stack ----
            Inst::ToR => {
                self.fill_to(1, ip);
                self.guard_roverflow(1, ip);
                let a = self.state.from_top(0);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 0), a);
                self.asm.add_ri(RSP, 1);
                self.state.pop();
            }
            Inst::FromR => {
                self.guard_runderflow(1, ip);
                self.guard_overflow(1, ip);
                let d = self.push_reg(ip);
                self.asm.mov_rm(d, Mem::base_index8(RBASE, RSP, -8));
                self.asm.sub_ri(RSP, 1);
            }
            Inst::RFetch => {
                self.guard_runderflow(1, ip);
                self.guard_overflow(1, ip);
                let d = self.push_reg(ip);
                self.asm.mov_rm(d, Mem::base_index8(RBASE, RSP, -8));
            }
            Inst::TwoToR => {
                self.fill_to(2, ip);
                self.guard_roverflow(2, ip);
                let b = self.state.from_top(0);
                let a = self.state.from_top(1);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 0), a);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 8), b);
                self.asm.add_ri(RSP, 2);
                self.state.pop();
                self.state.pop();
            }
            Inst::TwoFromR => {
                self.guard_runderflow(2, ip);
                self.guard_overflow(2, ip);
                let d1 = self.push_reg(ip);
                self.asm.mov_rm(d1, Mem::base_index8(RBASE, RSP, -16));
                let d2 = self.push_reg(ip);
                self.asm.mov_rm(d2, Mem::base_index8(RBASE, RSP, -8));
                self.asm.sub_ri(RSP, 2);
            }
            Inst::TwoRFetch => {
                self.guard_runderflow(2, ip);
                self.guard_overflow(2, ip);
                let d1 = self.push_reg(ip);
                self.asm.mov_rm(d1, Mem::base_index8(RBASE, RSP, -16));
                let d2 = self.push_reg(ip);
                self.asm.mov_rm(d2, Mem::base_index8(RBASE, RSP, -8));
            }
            Inst::LoopI => {
                self.guard_runderflow(1, ip);
                self.guard_overflow(1, ip);
                let d = self.push_reg(ip);
                self.asm.mov_rm(d, Mem::base_index8(RBASE, RSP, -8));
            }
            Inst::LoopJ => {
                self.guard_runderflow(4, ip);
                self.guard_overflow(1, ip);
                let d = self.push_reg(ip);
                self.asm.mov_rm(d, Mem::base_index8(RBASE, RSP, -24));
            }
            Inst::Unloop => {
                self.guard_runderflow(2, ip);
                self.asm.sub_ri(RSP, 2);
            }
            Inst::DoSetup => {
                self.fill_to(2, ip);
                self.guard_roverflow(2, ip);
                let start = self.state.from_top(0);
                let limit = self.state.from_top(1);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 0), limit);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 8), start);
                self.asm.add_ri(RSP, 2);
                self.state.pop();
                self.state.pop();
            }

            // ---- memory ----
            Inst::Fetch => {
                self.fill_to(1, ip);
                let a = self.state.from_top(0);
                self.guard_cell_addr(a, ip);
                self.asm.mov_rm(a, Mem::base_index1(MBASE, a, 0));
            }
            Inst::CFetch => {
                self.fill_to(1, ip);
                let a = self.state.from_top(0);
                self.guard_byte_addr(a, ip);
                self.asm.movzx_rm8(a, Mem::base_index1(MBASE, a, 0));
            }
            Inst::Store => {
                self.fill_to(2, ip);
                let addr = self.state.from_top(0);
                let x = self.state.from_top(1);
                self.guard_cell_addr(addr, ip);
                self.asm.mov_mr(Mem::base_index1(MBASE, addr, 0), x);
                self.state.pop();
                self.state.pop();
            }
            Inst::CStore => {
                self.fill_to(2, ip);
                let addr = self.state.from_top(0);
                let x = self.state.from_top(1);
                self.guard_byte_addr(addr, ip);
                self.asm.mov_m8r(Mem::base_index1(MBASE, addr, 0), x);
                self.state.pop();
                self.state.pop();
            }
            Inst::PlusStore => {
                self.fill_to(2, ip);
                let addr = self.state.from_top(0);
                let n = self.state.from_top(1);
                self.guard_cell_addr(addr, ip);
                self.asm.mov_rm(Reg::Rax, Mem::base_index1(MBASE, addr, 0));
                self.asm.add_rr(Reg::Rax, n);
                self.asm.mov_mr(Mem::base_index1(MBASE, addr, 0), Reg::Rax);
                self.state.pop();
                self.state.pop();
            }

            // ---- output ----
            Inst::Emit => {
                self.fill_to(1, ip);
                let c = self.state.from_top(0);
                // A full output Vec must grow — only Rust can do that.
                let stub = self.stub(ip);
                self.asm.mov_rm(Reg::Rax, Mem::base(CTX, OFF_OUT_LEN));
                self.asm.cmp_rm(Reg::Rax, Mem::base(CTX, OFF_OUT_CAP));
                self.asm.jcc(Cc::Ae, stub);
                self.asm.mov_rm(Reg::Rcx, Mem::base(CTX, OFF_OUT_PTR));
                self.asm.mov_m8r(Mem::base_index1(Reg::Rcx, Reg::Rax, 0), c);
                self.asm.add_ri(Reg::Rax, 1);
                self.asm.mov_mr(Mem::base(CTX, OFF_OUT_LEN), Reg::Rax);
                self.state.pop();
            }
            Inst::Cr => {
                let stub = self.stub(ip);
                self.asm.mov_rm(Reg::Rax, Mem::base(CTX, OFF_OUT_LEN));
                self.asm.cmp_rm(Reg::Rax, Mem::base(CTX, OFF_OUT_CAP));
                self.asm.jcc(Cc::Ae, stub);
                self.asm.mov_rm(Reg::Rcx, Mem::base(CTX, OFF_OUT_PTR));
                self.asm
                    .mov_m8i(Mem::base_index1(Reg::Rcx, Reg::Rax, 0), b'\n');
                self.asm.add_ri(Reg::Rax, 1);
                self.asm.mov_mr(Mem::base(CTX, OFF_OUT_LEN), Reg::Rax);
            }

            // Decimal formatting and byte-range walks stay in Rust.
            Inst::Dot | Inst::Type | Inst::Execute => {
                self.flush();
                self.exit_fallback(ip);
                return true;
            }

            Inst::Nop => {}

            // ---- terminators ----
            Inst::Branch(t) => {
                self.flush();
                self.exit_jump(t as usize);
                return true;
            }
            Inst::BranchIfZero(t) => {
                self.fill_to(1, ip);
                let f = self.state.pop();
                self.flush();
                let not_taken = self.asm.new_label();
                self.asm.test_rr(f, f);
                self.asm.jcc(Cc::Ne, not_taken);
                self.exit_jump(t as usize);
                self.asm.bind(not_taken);
                self.exit_jump(ip + 1);
                return true;
            }
            Inst::Call(t) => {
                self.guard_roverflow(1, ip);
                self.flush();
                self.asm.mov_ri(Reg::R11, (ip + 1) as i64);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 0), Reg::R11);
                self.asm.add_ri(RSP, 1);
                self.exit_jump(t as usize);
                return true;
            }
            Inst::Return => {
                self.guard_runderflow(1, ip);
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(RBASE, RSP, -8));
                // ret < 0 or ret > len → InstructionOutOfBounds{ip: ret};
                // one unsigned compare covers both.
                let stub = self.stub(ip);
                self.asm.mov_ri(Reg::R11, self.insts_len as i64);
                self.asm.cmp_rr(Reg::Rax, Reg::R11);
                self.asm.jcc(Cc::A, stub);
                self.asm.sub_ri(RSP, 1);
                self.flush();
                // rax already holds (JUMP<<32)|ret (KIND_JUMP is 0 and
                // the range guard proved ret <= len). Chain through the
                // in-buffer offset table when the target is a leader;
                // a zero entry means "exit to the driver".
                if let Some((base, table)) = self.ret_table {
                    self.asm.lea_rip(Reg::Rcx, table);
                    self.asm
                        .mov_r32m(Reg::Rdx, Mem::base_index4(Reg::Rcx, Reg::Rax, 0));
                    self.asm.test_rr(Reg::Rdx, Reg::Rdx);
                    self.asm.jcc(Cc::E, self.epilogue);
                    self.asm.lea_rip(Reg::R11, base);
                    self.asm.add_rr(Reg::R11, Reg::Rdx);
                    self.asm.jmp_r(Reg::R11);
                } else {
                    self.asm.jmp(self.epilogue);
                }
                return true;
            }
            Inst::Halt => {
                self.flush();
                self.asm.mov_ri(Reg::Rax, (KIND_HALT << 32) as i64);
                self.asm.jmp(self.epilogue);
                return true;
            }
            Inst::QDoSetup(t) => {
                self.fill_to(2, ip);
                // Conservative: the interpreter only pushes loop params
                // on the not-taken path; a spurious fallback re-executes.
                self.guard_roverflow(2, ip);
                let s = self.state.pop();
                let l = self.state.pop();
                self.flush();
                let taken = self.asm.new_label();
                self.asm.cmp_rr(l, s);
                self.asm.jcc(Cc::E, taken);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 0), l);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, 8), s);
                self.asm.add_ri(RSP, 2);
                self.exit_jump(ip + 1);
                self.asm.bind(taken);
                self.exit_jump(t as usize);
                return true;
            }
            Inst::LoopInc(t) => {
                self.guard_runderflow(2, ip);
                self.flush();
                let exit = self.asm.new_label();
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(RBASE, RSP, -8));
                self.asm.add_ri(Reg::Rax, 1);
                self.asm.mov_rm(Reg::Rcx, Mem::base_index8(RBASE, RSP, -16));
                self.asm.cmp_rr(Reg::Rax, Reg::Rcx);
                self.asm.jcc(Cc::E, exit);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, -8), Reg::Rax);
                self.exit_jump(t as usize);
                self.asm.bind(exit);
                self.asm.sub_ri(RSP, 2);
                self.exit_jump(ip + 1);
                return true;
            }
            Inst::PlusLoopInc(t) => {
                self.fill_to(1, ip);
                self.guard_runderflow(2, ip);
                let step = self.state.pop();
                self.flush();
                let neg = self.asm.new_label();
                let cont = self.asm.new_label();
                let exit = self.asm.new_label();
                self.asm.mov_rm(Reg::Rax, Mem::base_index8(RBASE, RSP, -8)); // old
                self.asm.mov_rr(Reg::Rcx, Reg::Rax);
                self.asm.add_rr(Reg::Rcx, step); // new (wrapping)
                self.asm.mov_rm(Reg::Rdx, Mem::base_index8(RBASE, RSP, -16)); // limit
                self.asm.test_rr(step, step);
                self.asm.jcc(Cc::S, neg);
                // step >= 0: crossed iff old < limit && new >= limit
                self.asm.cmp_rr(Reg::Rax, Reg::Rdx);
                self.asm.jcc(Cc::Ge, cont);
                self.asm.cmp_rr(Reg::Rcx, Reg::Rdx);
                self.asm.jcc(Cc::Ge, exit);
                self.asm.jmp(cont);
                // step < 0: crossed iff old >= limit && new < limit
                self.asm.bind(neg);
                self.asm.cmp_rr(Reg::Rax, Reg::Rdx);
                self.asm.jcc(Cc::L, cont);
                self.asm.cmp_rr(Reg::Rcx, Reg::Rdx);
                self.asm.jcc(Cc::L, exit);
                self.asm.bind(cont);
                self.asm.mov_mr(Mem::base_index8(RBASE, RSP, -8), Reg::Rcx);
                self.exit_jump(t as usize);
                self.asm.bind(exit);
                self.asm.sub_ri(RSP, 2);
                self.exit_jump(ip + 1);
                return true;
            }
        }
        false
    }
}
