//! A byte-buffer x86-64 assembler.
//!
//! Just enough of the instruction set for the stack-machine templates:
//! 64-bit moves and ALU ops between registers and `[base + disp]` /
//! `[base + index*8 + disp]` memory operands, `setcc`/`cmovcc`, shifts,
//! signed division, and rel32 branches with a two-pass [`Label`] fixup.
//! Encodings follow the Intel SDM; every public method carries an
//! encoding unit test, and the golden byte-image suite in
//! `tests/golden.rs` pins whole compiled blocks.
//!
//! Nothing here allocates registers or knows about the VM — this module
//! is purely "append these instruction bytes".

/// A 64-bit general-purpose register, numbered as in ModRM encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    #[inline]
    fn num(self) -> u8 {
        self as u8
    }
    #[inline]
    fn low3(self) -> u8 {
        self.num() & 7
    }
    #[inline]
    fn ext(self) -> bool {
        self.num() >= 8
    }
}

/// Condition codes for `jcc` / `setcc` / `cmovcc` (the low opcode nibble).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    /// overflow-free below (unsigned <)
    B = 0x2,
    /// above-or-equal (unsigned >=)
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    /// below-or-equal (unsigned <=)
    Be = 0x6,
    /// above (unsigned >)
    A = 0x7,
    /// sign set (negative)
    S = 0x8,
    /// sign clear (non-negative)
    Ns = 0x9,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
}

/// A branch target: created with [`Asm::new_label`], bound once with
/// [`Asm::bind`], referenced any number of times before or after binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A memory operand: `[base + index*8 + disp]` (index optional).
///
/// The only scale the templates need is 8 (cells); byte addressing uses
/// an explicit scale of 1 via [`Mem::base_index1`].
#[derive(Debug, Clone, Copy)]
pub struct Mem {
    base: Reg,
    index: Option<(Reg, u8)>, // (register, scale log2)
    disp: i32,
}

impl Mem {
    /// `[base + disp]`
    #[must_use]
    pub fn base(base: Reg, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index*8 + disp]` — cell addressing.
    #[must_use]
    pub fn base_index8(base: Reg, index: Reg, disp: i32) -> Mem {
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            base,
            index: Some((index, 3)),
            disp,
        }
    }

    /// `[base + index + disp]` — byte addressing.
    #[must_use]
    pub fn base_index1(base: Reg, index: Reg, disp: i32) -> Mem {
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            base,
            index: Some((index, 0)),
            disp,
        }
    }

    /// `[base + index*4 + disp]` — u32 table addressing.
    #[must_use]
    pub fn base_index4(base: Reg, index: Reg, disp: i32) -> Mem {
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem {
            base,
            index: Some((index, 2)),
            disp,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// rel32 displacement: `target - (at + 4)` (jumps, rip-relative lea).
    Rel32,
    /// The label's absolute buffer offset as a little-endian u32 (chain
    /// dispatch tables).
    Abs32,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    /// Offset of the 4-byte field in the buffer.
    at: usize,
    label: Label,
    kind: FixupKind,
}

/// The append-only code buffer.
#[derive(Debug, Default)]
pub struct Asm {
    buf: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Fresh empty buffer.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset — the address the next emitted byte will occupy.
    #[must_use]
    pub fn here(&self) -> usize {
        self.buf.len()
    }

    /// Finalize: patch every label reference and return the code bytes.
    ///
    /// # Panics
    /// If any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for f in &self.fixups {
            let target = self.labels[f.label.0].expect("unbound label at finish");
            let word = match f.kind {
                FixupKind::Rel32 => {
                    let rel = (target as i64) - (f.at as i64 + 4);
                    i32::try_from(rel).expect("rel32 overflow").to_le_bytes()
                }
                FixupKind::Abs32 => u32::try_from(target).expect("abs32 overflow").to_le_bytes(),
            };
            self.buf[f.at..f.at + 4].copy_from_slice(&word);
        }
        self.buf
    }

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current offset.
    ///
    /// # Panics
    /// If the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.buf.len());
    }

    #[inline]
    fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }
    #[inline]
    fn i32_(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix. `w`: 64-bit operand; `r`: ModRM.reg extension;
    /// `x`: SIB.index extension; `b`: ModRM.rm / SIB.base extension.
    #[inline]
    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool) {
        let byte =
            0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b);
        self.u8(byte);
    }

    /// REX for a reg/reg form where it is only needed conditionally
    /// (8-bit ops touching sil/dil/spl/bpl or r8b..r15b).
    #[inline]
    fn rex_opt8(&mut self, r: Reg, rm: Reg) {
        if r.ext() || rm.ext() || r.num() >= 4 || rm.num() >= 4 {
            self.rex(false, r.ext(), false, rm.ext());
        }
    }

    #[inline]
    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.u8((md << 6) | ((reg & 7) << 3) | (rm & 7));
    }

    /// Emit ModRM (+ SIB + disp) for `reg_field` against memory operand `m`.
    fn mem_operand(&mut self, reg_field: u8, m: Mem) {
        let need_disp8 = m.disp == 0 && m.base.low3() == 5; // rbp/r13 base needs disp
        let (md, disp_kind) = if m.disp == 0 && !need_disp8 {
            (0b00, 0)
        } else if i8::try_from(m.disp).is_ok() {
            (0b01, 1)
        } else {
            (0b10, 4)
        };
        match m.index {
            None => {
                if m.base.low3() == 4 {
                    // rsp/r12 base requires a SIB byte
                    self.modrm(md, reg_field, 4);
                    self.u8(0x24); // scale=0, index=100 (none), base=100
                } else {
                    self.modrm(md, reg_field, m.base.low3());
                }
            }
            Some((index, scale)) => {
                self.modrm(md, reg_field, 4);
                self.u8((scale << 6) | (index.low3() << 3) | m.base.low3());
            }
        }
        match disp_kind {
            0 => {}
            1 => self.u8(m.disp as u8),
            _ => self.i32_(m.disp),
        }
    }

    fn rex_mem(&mut self, w: bool, reg: Reg, m: Mem) {
        let x = m.index.is_some_and(|(i, _)| i.ext());
        self.rex(w, reg.ext(), x, m.base.ext());
    }

    // ---- moves ----

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, src.ext(), false, dst.ext());
        self.u8(0x89);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `mov dst, imm` — `C7 /0 imm32` when the value sign-extends,
    /// otherwise `movabs` (`B8+r imm64`).
    pub fn mov_ri(&mut self, dst: Reg, imm: i64) {
        if let Ok(v) = i32::try_from(imm) {
            self.rex(true, false, false, dst.ext());
            self.u8(0xC7);
            self.modrm(0b11, 0, dst.low3());
            self.i32_(v);
        } else {
            self.rex(true, false, false, dst.ext());
            self.u8(0xB8 + dst.low3());
            self.buf.extend_from_slice(&imm.to_le_bytes());
        }
    }

    /// `mov dst, [m]` (64-bit load).
    pub fn mov_rm(&mut self, dst: Reg, m: Mem) {
        self.rex_mem(true, dst, m);
        self.u8(0x8B);
        self.mem_operand(dst.low3(), m);
    }

    /// `mov [m], src` (64-bit store).
    pub fn mov_mr(&mut self, m: Mem, src: Reg) {
        self.rex_mem(true, src, m);
        self.u8(0x89);
        self.mem_operand(src.low3(), m);
    }

    /// `movzx dst, byte [m]` (zero-extending byte load).
    pub fn movzx_rm8(&mut self, dst: Reg, m: Mem) {
        self.rex_mem(true, dst, m);
        self.u8(0x0F);
        self.u8(0xB6);
        self.mem_operand(dst.low3(), m);
    }

    /// `movzx dst, src_low8` (zero-extend a byte register to 64 bits).
    pub fn movzx_rr8(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst.ext(), false, src.ext());
        self.u8(0x0F);
        self.u8(0xB6);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `mov byte [m], src_low8`.
    pub fn mov_m8r(&mut self, m: Mem, src: Reg) {
        let x = m.index.is_some_and(|(i, _)| i.ext());
        if src.ext() || src.num() >= 4 || m.base.ext() || x {
            self.rex(false, src.ext(), x, m.base.ext());
        }
        self.u8(0x88);
        self.mem_operand(src.low3(), m);
    }

    /// `mov byte [m], imm8`.
    pub fn mov_m8i(&mut self, m: Mem, imm: u8) {
        let x = m.index.is_some_and(|(i, _)| i.ext());
        if m.base.ext() || x {
            self.rex(false, false, x, m.base.ext());
        }
        self.u8(0xC6);
        self.mem_operand(0, m);
        self.u8(imm);
    }

    // ---- ALU reg/reg ----

    fn alu_rr(&mut self, op: u8, dst: Reg, src: Reg) {
        self.rex(true, src.ext(), false, dst.ext());
        self.u8(op);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `add dst, src`
    pub fn add_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x01, dst, src);
    }
    /// `sub dst, src`
    pub fn sub_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x29, dst, src);
    }
    /// `and dst, src`
    pub fn and_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x21, dst, src);
    }
    /// `or dst, src`
    pub fn or_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x09, dst, src);
    }
    /// `xor dst, src`
    pub fn xor_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x31, dst, src);
    }
    /// `cmp dst, src`
    pub fn cmp_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x39, dst, src);
    }
    /// `test dst, src`
    pub fn test_rr(&mut self, dst: Reg, src: Reg) {
        self.alu_rr(0x85, dst, src);
    }

    /// `imul dst, src` (two-operand signed multiply; wraps like the VM).
    pub fn imul_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, dst.ext(), false, src.ext());
        self.u8(0x0F);
        self.u8(0xAF);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    // ---- ALU reg/imm ----

    fn alu_ri(&mut self, ext: u8, dst: Reg, imm: i32) {
        self.rex(true, false, false, dst.ext());
        if let Ok(v) = i8::try_from(imm) {
            self.u8(0x83);
            self.modrm(0b11, ext, dst.low3());
            self.u8(v as u8);
        } else {
            self.u8(0x81);
            self.modrm(0b11, ext, dst.low3());
            self.i32_(imm);
        }
    }

    /// `add dst, imm`
    pub fn add_ri(&mut self, dst: Reg, imm: i32) {
        self.alu_ri(0, dst, imm);
    }
    /// `sub dst, imm`
    pub fn sub_ri(&mut self, dst: Reg, imm: i32) {
        self.alu_ri(5, dst, imm);
    }
    /// `cmp dst, imm`
    pub fn cmp_ri(&mut self, dst: Reg, imm: i32) {
        self.alu_ri(7, dst, imm);
    }

    /// `cmp dst, [m]`
    pub fn cmp_rm(&mut self, dst: Reg, m: Mem) {
        self.rex_mem(true, dst, m);
        self.u8(0x3B);
        self.mem_operand(dst.low3(), m);
    }

    // ---- unary / shifts / division ----

    /// `neg dst`
    pub fn neg(&mut self, dst: Reg) {
        self.rex(true, false, false, dst.ext());
        self.u8(0xF7);
        self.modrm(0b11, 3, dst.low3());
    }

    /// `not dst`
    pub fn not(&mut self, dst: Reg) {
        self.rex(true, false, false, dst.ext());
        self.u8(0xF7);
        self.modrm(0b11, 2, dst.low3());
    }

    /// `cqo` — sign-extend rax into rdx:rax.
    pub fn cqo(&mut self) {
        self.u8(0x48);
        self.u8(0x99);
    }

    /// `idiv src` — rdx:rax / src → quotient rax, remainder rdx.
    pub fn idiv(&mut self, src: Reg) {
        self.rex(true, false, false, src.ext());
        self.u8(0xF7);
        self.modrm(0b11, 7, src.low3());
    }

    fn shift_cl(&mut self, ext: u8, dst: Reg) {
        self.rex(true, false, false, dst.ext());
        self.u8(0xD3);
        self.modrm(0b11, ext, dst.low3());
    }

    /// `shl dst, cl`
    pub fn shl_cl(&mut self, dst: Reg) {
        self.shift_cl(4, dst);
    }
    /// `shr dst, cl`
    pub fn shr_cl(&mut self, dst: Reg) {
        self.shift_cl(5, dst);
    }

    /// `sar dst, imm8` / `shl dst, imm8`
    pub fn sar_i(&mut self, dst: Reg, imm: u8) {
        self.rex(true, false, false, dst.ext());
        self.u8(0xC1);
        self.modrm(0b11, 7, dst.low3());
        self.u8(imm);
    }

    /// `shl dst, imm8`
    pub fn shl_i(&mut self, dst: Reg, imm: u8) {
        self.rex(true, false, false, dst.ext());
        self.u8(0xC1);
        self.modrm(0b11, 4, dst.low3());
        self.u8(imm);
    }

    /// `lea dst, [m]`
    pub fn lea(&mut self, dst: Reg, m: Mem) {
        self.rex_mem(true, dst, m);
        self.u8(0x8D);
        self.mem_operand(dst.low3(), m);
    }

    // ---- conditionals ----

    /// `setcc dst_low8`.
    pub fn setcc(&mut self, cc: Cc, dst: Reg) {
        self.rex_opt8(Reg::Rax, dst); // reg field unused; only rm ext matters
        self.u8(0x0F);
        self.u8(0x90 | cc as u8);
        self.modrm(0b11, 0, dst.low3());
    }

    /// `cmovcc dst, src` (64-bit).
    pub fn cmovcc(&mut self, cc: Cc, dst: Reg, src: Reg) {
        self.rex(true, dst.ext(), false, src.ext());
        self.u8(0x0F);
        self.u8(0x40 | cc as u8);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    // ---- control flow ----

    /// `jmp label` (rel32).
    pub fn jmp(&mut self, label: Label) {
        self.u8(0xE9);
        self.label_fixup(label, FixupKind::Rel32);
    }

    /// `jcc label` (rel32).
    pub fn jcc(&mut self, cc: Cc, label: Label) {
        self.u8(0x0F);
        self.u8(0x80 | cc as u8);
        self.label_fixup(label, FixupKind::Rel32);
    }

    /// `jmp r64` — indirect through a register.
    pub fn jmp_r(&mut self, r: Reg) {
        if r.ext() {
            self.u8(0x41);
        }
        self.u8(0xFF);
        self.modrm(0b11, 4, r.low3());
    }

    /// `lea dst, [rip + label]` — materialize a code address.
    pub fn lea_rip(&mut self, dst: Reg, label: Label) {
        self.rex(true, dst.ext(), false, false);
        self.u8(0x8D);
        self.modrm(0b00, dst.low3(), 0b101);
        self.label_fixup(label, FixupKind::Rel32);
    }

    /// `mov dst32, m32` — 32-bit load, zero-extending into the full
    /// register (chain-table entries).
    pub fn mov_r32m(&mut self, dst: Reg, m: Mem) {
        let x = m.index.is_some_and(|(i, _)| i.ext());
        if dst.ext() || x || m.base.ext() {
            self.rex(false, dst.ext(), x, m.base.ext());
        }
        self.u8(0x8B);
        self.mem_operand(dst.low3(), m);
    }

    /// Emit a 4-byte slot holding `label`'s absolute buffer offset
    /// (patched at `finish`) — dispatch-table data, not code.
    pub fn label_offset_u32(&mut self, label: Label) {
        self.label_fixup(label, FixupKind::Abs32);
    }

    /// Emit 4 zero bytes (an empty dispatch-table slot).
    pub fn zero_u32(&mut self) {
        self.i32_(0);
    }

    fn label_fixup(&mut self, label: Label, kind: FixupKind) {
        let at = self.buf.len();
        self.i32_(0);
        self.fixups.push(Fixup { at, label, kind });
    }

    /// `push r64`
    pub fn push(&mut self, r: Reg) {
        if r.ext() {
            self.u8(0x41);
        }
        self.u8(0x50 + r.low3());
    }

    /// `pop r64`
    pub fn pop(&mut self, r: Reg) {
        if r.ext() {
            self.u8(0x41);
        }
        self.u8(0x58 + r.low3());
    }

    /// `ret`
    pub fn ret(&mut self) {
        self.u8(0xC3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Reg::{Rax, Rbx, Rcx, Rdi, Rdx, Rsi, R10, R11, R12, R13, R14, R15, R8, R9};

    fn bytes(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn mov_rr_encodings() {
        assert_eq!(bytes(|a| a.mov_rr(Rax, Rbx)), [0x48, 0x89, 0xD8]);
        assert_eq!(bytes(|a| a.mov_rr(R8, Rsi)), [0x49, 0x89, 0xF0]);
        assert_eq!(bytes(|a| a.mov_rr(Rcx, R9)), [0x4C, 0x89, 0xC9]);
    }

    #[test]
    fn mov_ri_small_and_movabs() {
        assert_eq!(bytes(|a| a.mov_ri(Rax, 1)), [0x48, 0xC7, 0xC0, 1, 0, 0, 0]);
        assert_eq!(
            bytes(|a| a.mov_ri(R9, -2)),
            [0x49, 0xC7, 0xC1, 0xFE, 0xFF, 0xFF, 0xFF]
        );
        let b = bytes(|a| a.mov_ri(Rdx, i64::MIN));
        assert_eq!(&b[..2], &[0x48, 0xBA]);
        assert_eq!(&b[2..], &i64::MIN.to_le_bytes());
    }

    #[test]
    fn loads_and_stores() {
        // mov rax, [rdi+8]
        assert_eq!(
            bytes(|a| a.mov_rm(Rax, Mem::base(Rdi, 8))),
            [0x48, 0x8B, 0x47, 0x08]
        );
        // mov rax, [rdi] — no disp byte
        assert_eq!(
            bytes(|a| a.mov_rm(Rax, Mem::base(Rdi, 0))),
            [0x48, 0x8B, 0x07]
        );
        // r12 base forces SIB; r13 base forces disp8
        assert_eq!(
            bytes(|a| a.mov_rm(Rax, Mem::base(R12, 0))),
            [0x49, 0x8B, 0x04, 0x24]
        );
        assert_eq!(
            bytes(|a| a.mov_rm(Rax, Mem::base(R13, 0))),
            [0x49, 0x8B, 0x45, 0x00]
        );
        // mov r10, [rbx+rsi*8-8]
        assert_eq!(
            bytes(|a| a.mov_rm(R10, Mem::base_index8(Rbx, Rsi, -8))),
            [0x4C, 0x8B, 0x54, 0xF3, 0xF8]
        );
        // mov [rbx+rsi*8], r8
        assert_eq!(
            bytes(|a| a.mov_mr(Mem::base_index8(Rbx, Rsi, 0), R8)),
            [0x4C, 0x89, 0x04, 0xF3]
        );
        // movzx rax, byte [r14+rax]
        assert_eq!(
            bytes(|a| a.movzx_rm8(Rax, Mem::base_index1(R14, Rax, 0))),
            [0x49, 0x0F, 0xB6, 0x04, 0x06]
        );
        // mov byte [r14+rax], r8b
        assert_eq!(
            bytes(|a| a.mov_m8r(Mem::base_index1(R14, Rax, 0), R8)),
            [0x45, 0x88, 0x04, 0x06]
        );
        // mov byte [rcx+rax], 10
        assert_eq!(
            bytes(|a| a.mov_m8i(Mem::base_index1(Rcx, Rax, 0), 10)),
            [0xC6, 0x04, 0x01, 0x0A]
        );
    }

    #[test]
    fn alu_and_shifts() {
        assert_eq!(bytes(|a| a.add_rr(R8, R9)), [0x4D, 0x01, 0xC8]);
        assert_eq!(bytes(|a| a.sub_rr(Rax, Rcx)), [0x48, 0x29, 0xC8]);
        assert_eq!(bytes(|a| a.imul_rr(R8, R9)), [0x4D, 0x0F, 0xAF, 0xC1]);
        assert_eq!(bytes(|a| a.cmp_rr(Rsi, Rax)), [0x48, 0x39, 0xC6]);
        assert_eq!(bytes(|a| a.test_rr(Rsi, Rsi)), [0x48, 0x85, 0xF6]);
        assert_eq!(bytes(|a| a.add_ri(Rsi, 1)), [0x48, 0x83, 0xC6, 0x01]);
        assert_eq!(
            bytes(|a| a.add_ri(Rsi, 1000)),
            [0x48, 0x81, 0xC6, 0xE8, 0x03, 0x00, 0x00]
        );
        assert_eq!(bytes(|a| a.cmp_ri(R13, 2)), [0x49, 0x83, 0xFD, 0x02]);
        assert_eq!(bytes(|a| a.shl_cl(R8)), [0x49, 0xD3, 0xE0]);
        assert_eq!(bytes(|a| a.shr_cl(Rax)), [0x48, 0xD3, 0xE8]);
        assert_eq!(bytes(|a| a.sar_i(R9, 1)), [0x49, 0xC1, 0xF9, 0x01]);
        assert_eq!(bytes(|a| a.sar_i(Rax, 63)), [0x48, 0xC1, 0xF8, 0x3F]);
        assert_eq!(bytes(|a| a.shl_i(R10, 3)), [0x49, 0xC1, 0xE2, 0x03]);
        assert_eq!(bytes(|a| a.neg(R8)), [0x49, 0xF7, 0xD8]);
        assert_eq!(bytes(|a| a.not(Rax)), [0x48, 0xF7, 0xD0]);
        assert_eq!(bytes(|a| a.cqo()), [0x48, 0x99]);
        assert_eq!(bytes(|a| a.idiv(R9)), [0x49, 0xF7, 0xF9]);
        assert_eq!(
            bytes(|a| a.lea(Rax, Mem::base(Rsi, 2))),
            [0x48, 0x8D, 0x46, 0x02]
        );
        assert_eq!(
            bytes(|a| a.cmp_rm(Rax, Mem::base(Rdi, 16))),
            [0x48, 0x3B, 0x47, 0x10]
        );
    }

    #[test]
    fn conditionals() {
        assert_eq!(bytes(|a| a.setcc(Cc::E, R11)), [0x41, 0x0F, 0x94, 0xC3]);
        assert_eq!(bytes(|a| a.movzx_rr8(R11, R11)), [0x4D, 0x0F, 0xB6, 0xDB]);
        assert_eq!(bytes(|a| a.cmovcc(Cc::G, R8, R9)), [0x4D, 0x0F, 0x4F, 0xC1]);
        assert_eq!(
            bytes(|a| a.cmovcc(Cc::L, Rax, Rcx)),
            [0x48, 0x0F, 0x4C, 0xC1]
        );
    }

    #[test]
    fn push_pop_ret() {
        assert_eq!(bytes(|a| a.push(Rbx)), [0x53]);
        assert_eq!(bytes(|a| a.push(R12)), [0x41, 0x54]);
        assert_eq!(bytes(|a| a.pop(R15)), [0x41, 0x5F]);
        assert_eq!(bytes(|a| a.ret()), [0xC3]);
    }

    #[test]
    fn labels_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.test_rr(Rax, Rax); // 3 bytes
        a.jcc(Cc::E, out); // 6 bytes
        a.jmp(top); // 5 bytes
        a.bind(out);
        a.ret();
        let b = a.finish();
        // jcc target: offset 14 (ret), rel = 14 - 9 = 5
        assert_eq!(&b[5..9], &5i32.to_le_bytes());
        // jmp target: offset 0, rel = 0 - 14 = -14
        assert_eq!(&b[10..14], &(-14i32).to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jmp(l);
        let _ = a.finish();
    }

    #[test]
    fn r15_byte_index_gets_rex_x() {
        assert_eq!(
            bytes(|a| a.movzx_rm8(Rdx, Mem::base_index1(R14, R15, 0))),
            [0x4B, 0x0F, 0xB6, 0x14, 0x3E]
        );
    }
}
