//! The compiled-block cache and JIT metrics.
//!
//! Keyed like the svc artifact cache: program identity (the full
//! instruction vector — never a lossy hash) plus the [`Checks`] level
//! the code was emitted for, with a generation counter per program so
//! [`invalidate`] (called on quickening rewrites or any other in-place
//! program mutation) atomically retires stale native code: live runs
//! holding an `Arc` finish on the old code against the old text,
//! new runs recompile.
//!
//! Metrics are process-global atomics exposed through [`stats`] so the
//! serving layer can merge them into its Prometheus exposition.

use crate::compile::JitProgram;
use stackcache_vm::{Checks, Inst, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One global JIT counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Programs compiled to native code.
    Compiled,
    /// Cache lookups served without compiling.
    CacheHits,
    /// Explicit invalidations (quickening rewrites etc.).
    Invalidations,
    /// Whole runs degraded to the interpreter (no native backend).
    Fallbacks,
    /// Per-instruction deoptimization events (guard fired mid-block).
    Deopts,
}

static COMPILED: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static DEOPTS: AtomicU64 = AtomicU64::new(0);

/// The live counter behind a [`Stat`].
pub fn stats_counter(stat: Stat) -> &'static AtomicU64 {
    match stat {
        Stat::Compiled => &COMPILED,
        Stat::CacheHits => &CACHE_HITS,
        Stat::Invalidations => &INVALIDATIONS,
        Stat::Fallbacks => &FALLBACKS,
        Stat::Deopts => &DEOPTS,
    }
}

/// Snapshot of the JIT counters (for Prometheus merging in svc).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitStats {
    /// `jit_compiled_total`
    pub compiled: u64,
    /// `jit_cache_hits_total`
    pub cache_hits: u64,
    /// `jit_invalidations_total`
    pub invalidations: u64,
    /// `jit_fallbacks_total`
    pub fallbacks: u64,
    /// `jit_deopts_total`
    pub deopts: u64,
}

/// Read all counters at once.
#[must_use]
pub fn stats() -> JitStats {
    JitStats {
        compiled: COMPILED.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        invalidations: INVALIDATIONS.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        deopts: DEOPTS.load(Ordering::Relaxed),
    }
}

#[derive(PartialEq, Eq, Hash, Clone)]
struct Key {
    insts: Arc<[Inst]>,
    entry: usize,
    checks: Checks,
    generation: u64,
}

/// Entries beyond this are dropped wholesale — native blocks are cheap
/// to re-emit and the differential harness churns many tiny programs.
const CAPACITY: usize = 256;

/// Process-wide compiled-block cache.
pub struct BlockCache {
    map: Mutex<HashMap<Key, Arc<JitProgram>>>,
    generation: AtomicU64,
}

impl BlockCache {
    fn new() -> BlockCache {
        BlockCache {
            map: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Fetch or compile native code for `program` at `checks`.
    /// Returns `None` when native execution is unavailable on this
    /// host (the caller degrades to the interpreter).
    pub fn get_or_compile(&self, program: &Program, checks: Checks) -> Option<Arc<JitProgram>> {
        let key = Key {
            insts: program.insts().into(),
            entry: program.entry(),
            checks,
            generation: self.generation.load(Ordering::Acquire),
        };
        {
            let map = self.map.lock().expect("jit cache poisoned");
            if let Some(jp) = map.get(&key) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(jp));
            }
        }
        // Compile outside the lock; a racing duplicate is harmless.
        let jp = Arc::new(JitProgram::compile(program, checks).ok()?);
        COMPILED.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("jit cache poisoned");
        if map.len() >= CAPACITY {
            map.clear();
        }
        map.insert(key, Arc::clone(&jp));
        Some(jp)
    }

    /// Retire every cached compilation. Called when program text is
    /// rewritten in place (quickening): the old machine code encodes
    /// the old instructions, so it must never be dispatched again.
    pub fn invalidate_all(&self) {
        INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Release);
        self.map.lock().expect("jit cache poisoned").clear();
    }

    /// Number of live cached compilations (for tests/metrics).
    pub fn len(&self) -> usize {
        self.map.lock().expect("jit cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-global cache used by [`crate::run::run_jit_with_checks`].
pub fn global() -> &'static BlockCache {
    static GLOBAL: OnceLock<BlockCache> = OnceLock::new();
    GLOBAL.get_or_init(BlockCache::new)
}

/// Invalidate the global cache (quickening rewrite hook).
pub fn invalidate() {
    global().invalidate_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::program_of;

    #[test]
    #[cfg(all(target_arch = "x86_64", unix))]
    fn hit_miss_and_invalidate() {
        let cache = BlockCache::new();
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add, Inst::Halt]);
        let before = stats();
        let a = cache.get_or_compile(&p, Checks::Full).unwrap();
        let b = cache.get_or_compile(&p, Checks::Full).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different checks level is a different compilation.
        let c = cache.get_or_compile(&p, Checks::None).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        cache.invalidate_all();
        assert!(cache.is_empty());
        let d = cache.get_or_compile(&p, Checks::Full).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        let after = stats();
        assert!(after.compiled >= before.compiled + 3);
        assert!(after.cache_hits > before.cache_hits);
        assert!(after.invalidations > before.invalidations);
    }
}
