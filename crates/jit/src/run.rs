//! Mixed-mode execution driver: native blocks where possible, the
//! [`stackcache_vm::stepper`] interpreter everywhere else.
//!
//! The driver owns the dispatch loop. At each step it either calls one
//! compiled block (when `ip` is a block leader, the whole block fits in
//! the remaining fuel, and native code exists) or interprets a span.
//! Native blocks report back through a packed exit word
//! (`kind << 32 | ip`): *jump* (block completed, continue at `ip`),
//! *fallback* (deoptimize — re-enter the interpreter at `ip`, which
//! re-executes the instruction and materializes any trap exactly), or
//! *halt*.
//!
//! Fuel is exact: a block is only dispatched natively when all of its
//! instructions are affordable, completed blocks charge their full
//! instruction count, and a deoptimizing block charges only the
//! instructions that committed before the guard fired. Interpreted
//! spans charge per instruction — so `FuelExhausted` carries the same
//! ip the reference interpreter reports.

use crate::cache::{self, stats_counter, Stat};
use crate::compile::{JitProgram, KIND_FALLBACK, KIND_HALT, KIND_JUMP};
use stackcache_vm::interp::{run_baseline_with_checks, RunStats};
use stackcache_vm::stepper::{run_span, FlatStacks, SpanExit};
use stackcache_vm::{Checks, Machine, Program, VmError};

/// The native code's view of the machine, passed in `rdi`.
///
/// Field order and layout are load-bearing: the template compiler bakes
/// these offsets into emitted code (`compile::OFF_*`); a layout test
/// below pins them.
#[repr(C)]
#[derive(Debug)]
pub struct JitCtx {
    pub(crate) stack_ptr: *mut i64,
    pub(crate) sp: u64,
    pub(crate) stack_limit: u64,
    pub(crate) rstack_ptr: *mut i64,
    pub(crate) rsp: u64,
    pub(crate) rstack_limit: u64,
    pub(crate) mem_ptr: *mut u8,
    pub(crate) mem_len: u64,
    pub(crate) out_ptr: *mut u8,
    pub(crate) out_len: u64,
    pub(crate) out_cap: u64,
    pub(crate) fuel: u64,
    pub(crate) executed: u64,
}

/// Run `program` under the JIT with [`Checks::Full`].
///
/// # Errors
/// Exactly the [`VmError`]s of the reference interpreter.
pub fn run_jit(program: &Program, machine: &mut Machine, fuel: u64) -> Result<RunStats, VmError> {
    run_jit_with_checks(program, machine, fuel, Checks::Full)
}

/// Run `program` under the JIT at an explicit checks level, compiling
/// (or fetching) native blocks through the global block cache.
///
/// When native execution is unavailable — non-x86-64 host, mapping
/// failure, or the test hook — this degrades to the reference
/// interpreter with identical behavior and bumps `jit_fallbacks_total`;
/// it never errors for that reason.
///
/// # Errors
/// Exactly the [`VmError`]s of the reference interpreter.
pub fn run_jit_with_checks(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    match cache::global().get_or_compile(program, checks) {
        Some(jp) => run_compiled(&jp, program, machine, fuel, checks),
        None => {
            stats_counter(Stat::Fallbacks).fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            run_baseline_with_checks(program, machine, fuel, checks)
        }
    }
}

/// Drive a pre-compiled [`JitProgram`] to completion.
///
/// # Errors
/// Exactly the [`VmError`]s of the reference interpreter.
#[allow(unused_mut, unused_variables)]
pub fn run_compiled(
    jp: &JitProgram,
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    debug_assert_eq!(jp.checks(), checks);
    let mut st = FlatStacks::from_machine(machine);
    let mut executed: u64 = 0;
    let mut ip = program.entry();

    loop {
        let block = jp.block_at(ip);
        let affordable = block.is_some_and(|b| {
            executed
                .checked_add((b.end - b.start) as u64)
                .is_some_and(|total| total <= fuel)
        });

        #[cfg(all(target_arch = "x86_64", unix))]
        if affordable {
            let b = block.expect("affordable implies block");
            let (out_ptr, out_len, out_cap) = machine.output_raw_parts();
            let mut ctx = JitCtx {
                stack_ptr: st.buf.as_mut_ptr(),
                sp: st.sp as u64,
                stack_limit: st.limit as u64,
                rstack_ptr: st.rbuf.as_mut_ptr(),
                rsp: st.rsp as u64,
                rstack_limit: st.rlimit as u64,
                mem_ptr: machine.memory_mut().as_mut_ptr(),
                mem_len: machine.memory_mut().len() as u64,
                out_ptr,
                out_len: out_len as u64,
                out_cap: out_cap as u64,
                fuel,
                executed,
            };
            let f = jp.entry(b);
            let word = f(&mut ctx);
            st.sp = ctx.sp as usize;
            st.rsp = ctx.rsp as usize;
            // SAFETY: native `emit` only appends initialized bytes below
            // the capacity it was handed.
            unsafe { machine.set_output_len(ctx.out_len as usize) };
            // Blocks chain natively (static branch targets jump block to
            // block without returning), so the exit may come from any
            // block — the native fuel gates keep `executed` exact: a
            // completed block charges its full length up front, a deopt
            // refunds the tail that never committed.
            executed = ctx.executed;

            let kind = word >> 32;
            let exit_ip = (word & 0xFFFF_FFFF) as usize;
            match kind {
                KIND_JUMP => ip = exit_ip,
                KIND_FALLBACK => {
                    stats_counter(Stat::Deopts).fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let stop = jp.block_end_containing(exit_ip);
                    match run_span(
                        program,
                        machine,
                        &mut st,
                        exit_ip,
                        stop,
                        fuel,
                        &mut executed,
                        checks,
                    )? {
                        SpanExit::Continue(next) => ip = next,
                        SpanExit::Halted => return Ok(RunStats { executed }),
                    }
                }
                _ => {
                    debug_assert_eq!(kind, KIND_HALT);
                    st.publish(machine);
                    return Ok(RunStats { executed });
                }
            }
            continue;
        }

        // Interpreter path: mid-block entry, fuel too short for the
        // block, or no native code for this target.
        match run_span(
            program,
            machine,
            &mut st,
            ip,
            usize::MAX,
            fuel,
            &mut executed,
            checks,
        )? {
            SpanExit::Continue(next) => ip = next,
            SpanExit::Halted => return Ok(RunStats { executed }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{
        OFF_EXECUTED, OFF_FUEL, OFF_MEM_LEN, OFF_MEM_PTR, OFF_OUT_CAP, OFF_OUT_LEN, OFF_OUT_PTR,
        OFF_RSP, OFF_RSTACK_LIMIT, OFF_RSTACK_PTR, OFF_SP, OFF_STACK_LIMIT, OFF_STACK_PTR,
    };

    #[test]
    fn ctx_layout_matches_baked_offsets() {
        assert_eq!(
            std::mem::offset_of!(JitCtx, stack_ptr),
            OFF_STACK_PTR as usize
        );
        assert_eq!(std::mem::offset_of!(JitCtx, sp), OFF_SP as usize);
        assert_eq!(
            std::mem::offset_of!(JitCtx, stack_limit),
            OFF_STACK_LIMIT as usize
        );
        assert_eq!(
            std::mem::offset_of!(JitCtx, rstack_ptr),
            OFF_RSTACK_PTR as usize
        );
        assert_eq!(std::mem::offset_of!(JitCtx, rsp), OFF_RSP as usize);
        assert_eq!(
            std::mem::offset_of!(JitCtx, rstack_limit),
            OFF_RSTACK_LIMIT as usize
        );
        assert_eq!(std::mem::offset_of!(JitCtx, mem_ptr), OFF_MEM_PTR as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, mem_len), OFF_MEM_LEN as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, out_ptr), OFF_OUT_PTR as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, out_len), OFF_OUT_LEN as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, out_cap), OFF_OUT_CAP as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, fuel), OFF_FUEL as usize);
        assert_eq!(
            std::mem::offset_of!(JitCtx, executed),
            OFF_EXECUTED as usize
        );
    }
}
