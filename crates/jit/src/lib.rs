//! Template JIT: the paper's static cache states become machine
//! registers.
//!
//! The static regime of *Stack Caching for Interpreters* assigns every
//! instruction a `(cache state → cache state)` specialized
//! implementation and compiles pure stack shuffles to *nothing*. That
//! compile-time FSM is a template-JIT register allocator: this crate
//! runs it over each basic block and emits real x86-64, keeping the top
//! of the data stack in `r8`/`r9`/`r10` across the block.
//!
//! The design is deliberately interpreter-subordinate:
//!
//! * the [reference interpreter](stackcache_vm::interp) stays the
//!   oracle — native code **never materializes a trap**; every guard
//!   deoptimizes into [`stackcache_vm::stepper::run_span`], which
//!   re-executes the instruction and reproduces the exact
//!   [`stackcache_vm::VmError`] and partial state;
//! * fuel accounting is instruction-exact in both tiers;
//! * on non-x86-64 hosts or any `mmap` failure, [`run_jit`] degrades to
//!   the interpreter with zero behavioral difference (counted by
//!   `jit_fallbacks_total`);
//! * dropped depth checks (`Checks::None`) are only ever requested by
//!   callers holding an analysis-crate safety proof — native code has
//!   no safe-Rust panic net below that contract.
//!
//! Pipeline: [`asm`] (byte-buffer emitter) → [`state`] (cache-state
//! FSM) → [`compile`] (per-block templates + deopt stubs) → [`mem`]
//! (W^X executable pages) → [`cache`] (generation-keyed block cache) →
//! [`run`] (mixed-mode driver).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod asm;
pub mod cache;
pub mod compile;
pub mod mem;
pub mod run;
pub mod state;

pub use cache::{invalidate, stats, JitStats};
pub use compile::{block_bytes, BlockEntry, JitProgram};
pub use mem::{force_unavailable, ExecBuf, MapError};
pub use run::{run_compiled, run_jit, run_jit_with_checks};
pub use state::{CacheState, CACHE_REGS, MAX_CACHED};

/// True when this host can execute JIT-compiled blocks at all.
///
/// Probes an actual mapping, so it also reflects the
/// [`force_unavailable`] test hook and genuine `mmap` failures.
#[must_use]
pub fn available() -> bool {
    ExecBuf::new(&[0xC3]).is_ok()
}
