//! Executable memory with W^X discipline.
//!
//! [`ExecBuf`] owns one anonymous private mapping. Code bytes are
//! copied in while the pages are read-write, then the mapping is
//! flipped to read-execute with `mprotect` — at no point is a page both
//! writable and executable. The raw `mmap`/`mprotect`/`munmap`
//! declarations follow `crates/evio`'s libc-free shim idiom: bare
//! `extern "C"` prototypes against the platform C runtime, no external
//! crates.
//!
//! On non-x86-64 targets (or non-unix hosts) the constructor always
//! returns [`MapError::Unsupported`]; callers degrade to the
//! interpreter. [`force_unavailable`] lets tests exercise that same
//! degradation path on hosts where the real mapping would succeed.

use std::sync::atomic::{AtomicBool, Ordering};

/// Why executable memory could not be obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Host is not x86-64 unix — there is no template backend for it.
    Unsupported,
    /// `mmap` or `mprotect` failed (errno value), or the test hook
    /// forced failure.
    SyscallFailed(i32),
}

static FORCE_UNAVAILABLE: AtomicBool = AtomicBool::new(false);

/// Test hook: when set, every [`ExecBuf::new`] fails as if `mmap` had
/// returned `ENOMEM`, forcing the interpreter-degradation path.
pub fn force_unavailable(on: bool) {
    FORCE_UNAVAILABLE.store(on, Ordering::SeqCst);
}

#[cfg(all(target_arch = "x86_64", unix))]
mod sys {
    use super::MapError;

    // Shared-library C runtime entry points, declared directly in the
    // style of `crates/evio/src/sys.rs` — no libc crate.
    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn mprotect(addr: *mut u8, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    #[cfg(target_os = "linux")]
    const MAP_ANONYMOUS: i32 = 0x20;
    #[cfg(not(target_os = "linux"))]
    const MAP_ANONYMOUS: i32 = 0x1000; // BSD/macOS MAP_ANON

    fn errno() -> i32 {
        std::io::Error::last_os_error().raw_os_error().unwrap_or(-1)
    }

    /// Map `len` bytes read-write. Returns the page-aligned base.
    pub(super) fn map_rw(len: usize) -> Result<*mut u8, MapError> {
        // SAFETY: anonymous private mapping with a null hint; the
        // kernel picks the address. fd/offset are ignored for
        // MAP_ANONYMOUS.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p as isize == -1 {
            return Err(MapError::SyscallFailed(errno()));
        }
        Ok(p)
    }

    /// Flip a mapping to read-execute (the X side of W^X).
    pub(super) fn protect_rx(p: *mut u8, len: usize) -> Result<(), MapError> {
        // SAFETY: `p` is a live mapping of `len` bytes from map_rw.
        if unsafe { mprotect(p, len, PROT_READ | PROT_EXEC) } != 0 {
            return Err(MapError::SyscallFailed(errno()));
        }
        Ok(())
    }

    pub(super) fn unmap(p: *mut u8, len: usize) {
        // SAFETY: `p`/`len` exactly describe a mapping we own.
        unsafe {
            munmap(p, len);
        }
    }
}

/// An immutable, executable code buffer.
///
/// After construction the pages are read-execute only and never change,
/// so sharing across threads is sound.
#[derive(Debug)]
pub struct ExecBuf {
    #[cfg(all(target_arch = "x86_64", unix))]
    base: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (RX) for the life of the value and
// freed only in Drop, which takes `self` by unique reference.
unsafe impl Send for ExecBuf {}
// SAFETY: no interior mutability; all access is to immutable pages.
unsafe impl Sync for ExecBuf {}

impl ExecBuf {
    /// Copy `code` into fresh executable memory.
    ///
    /// # Errors
    ///
    /// [`MapError::Unsupported`] off x86-64 unix; otherwise any `mmap`
    /// or `mprotect` failure (also simulated by [`force_unavailable`]).
    pub fn new(code: &[u8]) -> Result<ExecBuf, MapError> {
        if FORCE_UNAVAILABLE.load(Ordering::SeqCst) {
            return Err(MapError::SyscallFailed(12)); // ENOMEM
        }
        Self::new_inner(code)
    }

    #[cfg(all(target_arch = "x86_64", unix))]
    fn new_inner(code: &[u8]) -> Result<ExecBuf, MapError> {
        let len = code.len().max(1).div_ceil(4096) * 4096;
        let base = sys::map_rw(len)?;
        // SAFETY: base..base+len is a fresh private RW mapping; code
        // fits because len was rounded up from code.len().
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), base, code.len());
        }
        if let Err(e) = sys::protect_rx(base, len) {
            sys::unmap(base, len);
            return Err(e);
        }
        Ok(ExecBuf { base, len })
    }

    #[cfg(not(all(target_arch = "x86_64", unix)))]
    fn new_inner(_code: &[u8]) -> Result<ExecBuf, MapError> {
        Err(MapError::Unsupported)
    }

    /// Entry address at byte `offset` into the buffer, as a sysv64
    /// function taking the JIT context and returning the packed exit
    /// word.
    ///
    /// # Safety contract (for callers)
    ///
    /// The bytes at `offset` must be the start of a function emitted by
    /// this crate's compiler for the matching context layout.
    #[cfg(all(target_arch = "x86_64", unix))]
    #[must_use]
    pub fn entry(&self, offset: usize) -> extern "sysv64" fn(*mut crate::run::JitCtx) -> u64 {
        assert!(offset < self.len);
        // SAFETY: the mapping is executable and immutable; the compiler
        // emitted a well-formed sysv64 function at this offset.
        unsafe { std::mem::transmute(self.base.add(offset)) }
    }

    /// Mapping length in bytes (page-rounded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never the case for a live buffer).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(all(target_arch = "x86_64", unix))]
impl Drop for ExecBuf {
    fn drop(&mut self) {
        sys::unmap(self.base, self.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not two: force_unavailable is process-global state and
    // the harness runs tests concurrently.
    #[test]
    fn maps_executes_and_honors_force_unavailable() {
        force_unavailable(true);
        let r = ExecBuf::new(&[0xC3]);
        force_unavailable(false);
        assert_eq!(r.err(), Some(MapError::SyscallFailed(12)));

        #[cfg(all(target_arch = "x86_64", unix))]
        {
            // mov eax, 7; ret — minimal sanity that the pages execute.
            let code = [0xB8, 7, 0, 0, 0, 0xC3];
            let buf = ExecBuf::new(&code).expect("mmap should work on this host");
            let f = buf.entry(0);
            let r = f(std::ptr::null_mut());
            assert_eq!(r & 0xFFFF_FFFF, 7);
        }
    }
}
