//! Compile-time stack-cache state: which top-of-stack cells currently
//! live in machine registers.
//!
//! This is the paper's static cache-state FSM made physical. A
//! [`CacheState`] lists, bottom first, the registers holding the
//! topmost cells of the data stack; the remaining (deeper) cells live
//! in the in-memory stack buffer indexed by the `rsi` depth counter.
//! The invariant every template preserves:
//!
//! ```text
//! logical stack = stack_mem[0 .. rsi] ++ regs      (bottom → top)
//! ```
//!
//! *Fill* moves the deepest cached cell boundary down (memory → new
//! bottom register); *spill* moves it up (bottom register → memory).
//! Both preserve the invariant, which is what lets a deoptimization
//! stub restore the interpreter-visible stack by a plain flush of
//! whatever state is current at the guard site.

use crate::asm::Reg;

/// Registers available for caching stack cells, in canonical order.
///
/// These are exactly the caller-context registers the block prologue
/// does *not* dedicate to VM state (`rbx`, `rsi`, `r12`–`r15` are
/// pinned; `rax`, `rcx`, `rdx`, `r11` are template scratch).
pub const CACHE_REGS: [Reg; 3] = [Reg::R8, Reg::R9, Reg::R10];

/// Maximum number of stack cells cached in registers.
pub const MAX_CACHED: usize = CACHE_REGS.len();

/// An ordered multiset-free list of cache registers, bottom → top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    regs: Vec<Reg>,
}

impl CacheState {
    /// State 0: everything in memory.
    #[must_use]
    pub fn empty() -> CacheState {
        CacheState { regs: Vec::new() }
    }

    /// The canonical state with `n` cells cached (`n <= MAX_CACHED`):
    /// `[r8]`, `[r8, r9]`, `[r8, r9, r10]`.
    ///
    /// # Panics
    /// If `n > MAX_CACHED`.
    #[must_use]
    pub fn canonical(n: usize) -> CacheState {
        assert!(n <= MAX_CACHED);
        CacheState {
            regs: CACHE_REGS[..n].to_vec(),
        }
    }

    /// Number of cells currently cached.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.regs.len()
    }

    /// Registers bottom → top.
    #[must_use]
    pub fn regs(&self) -> &[Reg] {
        &self.regs
    }

    /// The register holding the cell `i` from the top (0 = TOS).
    ///
    /// # Panics
    /// If fewer than `i + 1` cells are cached.
    #[must_use]
    pub fn from_top(&self, i: usize) -> Reg {
        self.regs[self.regs.len() - 1 - i]
    }

    /// A register not currently holding a stack cell, if any.
    #[must_use]
    pub fn free_reg(&self) -> Option<Reg> {
        CACHE_REGS.iter().copied().find(|r| !self.regs.contains(r))
    }

    /// Record a push of `reg` (caller has ensured it is free).
    pub fn push(&mut self, reg: Reg) {
        debug_assert!(!self.regs.contains(&reg));
        self.regs.push(reg);
    }

    /// Record a pop; returns the register that held TOS.
    ///
    /// # Panics
    /// If no cells are cached.
    pub fn pop(&mut self) -> Reg {
        self.regs.pop().expect("pop from empty cache state")
    }

    /// Remove the cell `i` from the top (`nip` is `remove_from_top(1)`);
    /// emits no code. Returns the freed register.
    ///
    /// # Panics
    /// If fewer than `i + 1` cells are cached.
    pub fn remove_from_top(&mut self, i: usize) -> Reg {
        let pos = self.regs.len() - 1 - i;
        self.regs.remove(pos)
    }

    /// Record a spill: the *bottom* cached cell moved to memory.
    ///
    /// # Panics
    /// If no cells are cached.
    pub fn spill_bottom(&mut self) -> Reg {
        assert!(!self.regs.is_empty());
        self.regs.remove(0)
    }

    /// Record a fill: `reg` became the new *bottom* cached cell.
    pub fn fill_bottom(&mut self, reg: Reg) {
        debug_assert!(!self.regs.contains(&reg));
        self.regs.insert(0, reg);
    }

    /// Apply a pure permutation of the top `n` cells: `perm[i]` says
    /// which old position-from-top now sits at position-from-top `i`.
    /// Swap is `[1, 0]`, rot (`[a b c] -> [b c a]`) is `[2, 0, 1]`.
    ///
    /// This emits no code — the stack shuffle compiles to *nothing*,
    /// the paper's headline property, carried over to native blocks.
    ///
    /// # Panics
    /// If fewer than `perm.len()` cells are cached.
    pub fn permute_top(&mut self, perm: &[usize]) {
        let n = perm.len();
        assert!(self.regs.len() >= n);
        let top: Vec<Reg> = (0..n).map(|i| self.from_top(i)).collect();
        for (i, &src) in perm.iter().enumerate() {
            let pos = self.regs.len() - 1 - i;
            self.regs[pos] = top[src];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_states() {
        assert_eq!(CacheState::canonical(0), CacheState::empty());
        assert_eq!(CacheState::canonical(2).regs(), &[Reg::R8, Reg::R9]);
        assert_eq!(CacheState::canonical(3).from_top(0), Reg::R10);
        assert_eq!(CacheState::canonical(3).from_top(2), Reg::R8);
    }

    #[test]
    fn fill_spill_roundtrip() {
        let mut s = CacheState::canonical(2); // [r8, r9]
        s.fill_bottom(Reg::R10); // [r10, r8, r9]
        assert_eq!(s.regs(), &[Reg::R10, Reg::R8, Reg::R9]);
        assert_eq!(s.free_reg(), None);
        assert_eq!(s.spill_bottom(), Reg::R10);
        assert_eq!(s.regs(), &[Reg::R8, Reg::R9]);
        assert_eq!(s.free_reg(), Some(Reg::R10));
    }

    #[test]
    fn swap_and_rot_are_free() {
        let mut s = CacheState::canonical(3); // [r8, r9, r10] bottom→top
        s.permute_top(&[1, 0]); // swap
        assert_eq!(s.regs(), &[Reg::R8, Reg::R10, Reg::R9]);
        let mut s = CacheState::canonical(3);
        s.permute_top(&[2, 0, 1]); // rot: [a b c] -> [b c a], TOS=a
                                   // old: a=r10(top), b=r9, c=r8 → new top=a? no: new TOS is old pos 2 = c=r8
        assert_eq!(s.from_top(0), Reg::R8);
        assert_eq!(s.from_top(1), Reg::R10);
        assert_eq!(s.from_top(2), Reg::R9);
    }
}
