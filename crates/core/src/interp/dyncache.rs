//! A real (wall-clock) dynamically stack-cached interpreter (Section 4).
//!
//! Minimal organization with **three cache registers** (`r0`, `r1`, `r2` —
//! local variables the native compiler allocates to machine registers) and
//! four states: `s` = number of cached top-of-stack items, `r0` holding the
//! deepest cached item. The overflow followup state is the full state; the
//! underflow followup holds exactly the instruction's results, as in the
//! paper's measured configurations.
//!
//! The paper implements dynamic caching by replicating the interpreter per
//! state and jumping between copies with computed gotos; stable Rust has
//! neither computed gotos nor guaranteed tail calls, so the faithful
//! analogue is a single dispatch loop whose arms are specialized per
//! (state, instruction) — the state lives in a register, instruction
//! implementations are exactly the per-state specializations of Fig. 19,
//! and the stack pointer is only touched on overflow/underflow
//! (sp-update minimization, Section 3.1).

use stackcache_vm::{Cell, Checks, Inst, Machine, Program, VmError, CELL_BYTES, FALSE, TRUE};

use crate::interp::{RunStats, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Run `program` with the dynamically stack-cached interpreter.
///
/// Observable behaviour (final stacks, memory, output, traps) is identical
/// to the reference interpreter in `stackcache-vm`; tests cross-validate.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter.
pub fn run_dyncache(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    run_dyncache_mode::<CHECK_FULL>(program, machine, fuel)
}

/// [`run_dyncache`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; see [`Checks`] for the contract.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter (minus the
/// trap classes the chosen level elides).
pub fn run_dyncache_with_checks(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    match checks {
        Checks::Full => run_dyncache_mode::<CHECK_FULL>(program, machine, fuel),
        Checks::NoUnderflow => run_dyncache_mode::<CHECK_NO_UNDERFLOW>(program, machine, fuel),
        Checks::None => run_dyncache_mode::<CHECK_NONE>(program, machine, fuel),
    }
}

#[allow(clippy::too_many_lines)]
#[allow(unused_assignments)] // the cache-state macros assign past the last use
fn run_dyncache_mode<const MODE: u8>(
    program: &Program,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    let insts = program.insts();
    let limit = machine.stack_limit().min(1 << 20);
    let rlimit = machine.rstack_limit().min(1 << 20);
    let mut buf = vec![0 as Cell; limit]; // in-memory part of the data stack
    let mut rbuf = vec![0 as Cell; rlimit];
    let mut rsp = machine.rstack().len();
    rbuf[..rsp].copy_from_slice(machine.rstack());

    // cache registers and state
    let mut r0: Cell = 0;
    let mut r1: Cell = 0;
    let mut r2: Cell = 0;
    let mut s: u8 = 0;

    // Adopt pre-set stack contents into memory; the cache starts empty.
    let mut sp = machine.stack().len();
    buf[..sp].copy_from_slice(machine.stack());

    let mut ip = program.entry();
    let mut executed: u64 = 0;

    loop {
        if executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        let Some(&inst) = insts.get(ip) else {
            return Err(VmError::InstructionOutOfBounds { ip });
        };
        executed += 1;
        let cur = ip;
        ip += 1;

        // ---- cache helpers ------------------------------------------------
        macro_rules! depth {
            () => {
                sp + s as usize
            };
        }
        /// Push a value into the cache (overflow followup: full state).
        macro_rules! push_val {
            ($v:expr) => {{
                let v = $v;
                match s {
                    0 => {
                        r0 = v;
                        s = 1;
                    }
                    1 => {
                        r1 = v;
                        s = 2;
                    }
                    2 => {
                        r2 = v;
                        s = 3;
                    }
                    _ => {
                        // overflow: spill the bottom, shift, stay full
                        if MODE < CHECK_NONE && sp >= limit {
                            return Err(VmError::StackOverflow { ip: cur });
                        }
                        buf[sp] = r0;
                        sp += 1;
                        r0 = r1;
                        r1 = r2;
                        r2 = v;
                    }
                }
            }};
        }
        /// Pop the top of stack out of the cache.
        macro_rules! pop_val {
            () => {{
                match s {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        buf[sp]
                    }
                    1 => {
                        s = 0;
                        r0
                    }
                    2 => {
                        s = 1;
                        r1
                    }
                    _ => {
                        s = 2;
                        r2
                    }
                }
            }};
        }
        /// Binary operation; result stays cached (underflow policy).
        macro_rules! binop {
            ($f:expr) => {{
                match s {
                    0 => {
                        if MODE == CHECK_FULL && sp < 2 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        let b = buf[sp - 1];
                        let a = buf[sp - 2];
                        sp -= 2;
                        r0 = $f(a, b);
                        s = 1;
                    }
                    1 => {
                        if MODE == CHECK_FULL && sp < 1 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        let a = buf[sp - 1];
                        sp -= 1;
                        r0 = $f(a, r0);
                    }
                    2 => {
                        r0 = $f(r0, r1);
                        s = 1;
                    }
                    _ => {
                        r1 = $f(r1, r2);
                        s = 2;
                    }
                }
            }};
        }
        /// Unary operation on the cached top of stack.
        macro_rules! unop {
            ($f:expr) => {{
                match s {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        r0 = $f(buf[sp]);
                        s = 1;
                    }
                    1 => r0 = $f(r0),
                    2 => r1 = $f(r1),
                    _ => r2 = $f(r2),
                }
            }};
        }
        /// Spill the whole cache to memory (for rare, cache-opaque work).
        macro_rules! flush {
            () => {{
                if MODE < CHECK_NONE && sp + s as usize > limit {
                    return Err(VmError::StackOverflow { ip: cur });
                }
                if s >= 1 {
                    buf[sp] = r0;
                }
                if s >= 2 {
                    buf[sp + 1] = r1;
                }
                if s >= 3 {
                    buf[sp + 2] = r2;
                }
                sp += s as usize;
                s = 0;
            }};
        }
        macro_rules! need {
            ($n:expr) => {
                if MODE == CHECK_FULL && depth!() < $n {
                    return Err(VmError::StackUnderflow { ip: cur });
                }
            };
        }
        macro_rules! rpush {
            ($v:expr) => {{
                if MODE < CHECK_NONE && rsp >= rlimit {
                    return Err(VmError::ReturnStackOverflow { ip: cur });
                }
                rbuf[rsp] = $v;
                rsp += 1;
            }};
        }
        macro_rules! rpop {
            () => {{
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 1;
                rbuf[rsp]
            }};
        }

        match inst {
            Inst::Lit(n) => push_val!(n),

            Inst::Add => binop!(|a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(|a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(|a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                let b = pop_val!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                let a = pop_val!();
                push_val!(a.div_euclid(b));
            }
            Inst::Mod => {
                let b = pop_val!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                let a = pop_val!();
                push_val!(a.rem_euclid(b));
            }
            Inst::And => binop!(|a: Cell, b: Cell| a & b),
            Inst::Or => binop!(|a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(|a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(|a: Cell, b: Cell| ((a as u64) << (b as u64 & 63)) as Cell),
            Inst::Rshift => binop!(|a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63)) as Cell),
            Inst::Min => binop!(|a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(|a: Cell, b: Cell| a.max(b)),
            Inst::Eq => binop!(|a, b| flag(a == b)),
            Inst::Ne => binop!(|a, b| flag(a != b)),
            Inst::Lt => binop!(|a, b| flag(a < b)),
            Inst::Gt => binop!(|a, b| flag(a > b)),
            Inst::Le => binop!(|a, b| flag(a <= b)),
            Inst::Ge => binop!(|a, b| flag(a >= b)),
            Inst::ULt => binop!(|a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(|a: Cell, b: Cell| flag((a as u64) > (b as u64))),

            Inst::Negate => unop!(|a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(|a: Cell| !a),
            Inst::Abs => unop!(|a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(|a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(|a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(|a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(|a: Cell| a >> 1),
            Inst::ZeroEq => unop!(|a| flag(a == 0)),
            Inst::ZeroNe => unop!(|a| flag(a != 0)),
            Inst::ZeroLt => unop!(|a| flag(a < 0)),
            Inst::ZeroGt => unop!(|a| flag(a > 0)),
            Inst::CellPlus => unop!(|a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(|a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(|a: Cell| a.wrapping_add(1)),

            Inst::Dup => {
                // specialize: duplicate the cached top without popping
                match s {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        r0 = buf[sp];
                        r1 = r0;
                        s = 2;
                    }
                    1 => {
                        r1 = r0;
                        s = 2;
                    }
                    2 => {
                        r2 = r1;
                        s = 3;
                    }
                    _ => {
                        let v = r2;
                        push_val!(v);
                    }
                }
            }
            Inst::Drop => {
                let _ = pop_val!();
            }
            Inst::Swap => match s {
                0 | 1 => {
                    let b = pop_val!();
                    let a = pop_val!();
                    push_val!(b);
                    push_val!(a);
                }
                2 => std::mem::swap(&mut r0, &mut r1),
                _ => std::mem::swap(&mut r1, &mut r2),
            },
            Inst::Over => match s {
                2 => {
                    r2 = r0;
                    s = 3;
                }
                3 => {
                    let v = r1;
                    push_val!(v);
                }
                _ => {
                    let b = pop_val!();
                    let a = pop_val!();
                    push_val!(a);
                    push_val!(b);
                    push_val!(a);
                }
            },
            Inst::Rot => match s {
                3 => {
                    let t = r0;
                    r0 = r1;
                    r1 = r2;
                    r2 = t;
                }
                _ => {
                    let c = pop_val!();
                    let b = pop_val!();
                    let a = pop_val!();
                    push_val!(b);
                    push_val!(c);
                    push_val!(a);
                }
            },
            Inst::MinusRot => match s {
                3 => {
                    let t = r2;
                    r2 = r1;
                    r1 = r0;
                    r0 = t;
                }
                _ => {
                    let c = pop_val!();
                    let b = pop_val!();
                    let a = pop_val!();
                    push_val!(c);
                    push_val!(a);
                    push_val!(b);
                }
            },
            Inst::Nip => {
                let b = pop_val!();
                let _ = pop_val!();
                push_val!(b);
            }
            Inst::Tuck => {
                let b = pop_val!();
                let a = pop_val!();
                push_val!(b);
                push_val!(a);
                push_val!(b);
            }
            Inst::TwoDup => {
                need!(2);
                let b = pop_val!();
                let a = pop_val!();
                push_val!(a);
                push_val!(b);
                push_val!(a);
                push_val!(b);
            }
            Inst::TwoDrop => {
                let _ = pop_val!();
                let _ = pop_val!();
            }
            Inst::TwoSwap => {
                need!(4);
                let d = pop_val!();
                let c = pop_val!();
                let b = pop_val!();
                let a = pop_val!();
                push_val!(c);
                push_val!(d);
                push_val!(a);
                push_val!(b);
            }
            Inst::TwoOver => {
                need!(4);
                let d = pop_val!();
                let c = pop_val!();
                let b = pop_val!();
                let a = pop_val!();
                push_val!(a);
                push_val!(b);
                push_val!(c);
                push_val!(d);
                push_val!(a);
                push_val!(b);
            }
            Inst::QDup => {
                let a = pop_val!();
                push_val!(a);
                if a != 0 {
                    push_val!(a);
                }
            }
            Inst::Pick => {
                // cache-opaque: flush, then operate on memory
                flush!();
                if MODE == CHECK_FULL && sp == 0 {
                    return Err(VmError::StackUnderflow { ip: cur });
                }
                sp -= 1;
                let u = buf[sp];
                if u < 0 || u as usize >= sp {
                    return Err(VmError::PickOutOfRange { ip: cur, index: u });
                }
                let v = buf[sp - 1 - u as usize];
                push_val!(v);
            }
            Inst::Depth => {
                let d = depth!() as Cell;
                push_val!(d);
            }
            Inst::ToR => {
                let a = pop_val!();
                rpush!(a);
            }
            Inst::FromR => {
                let a = rpop!();
                push_val!(a);
            }
            Inst::RFetch => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 1];
                push_val!(a);
            }
            Inst::TwoToR => {
                let b = pop_val!();
                let a = pop_val!();
                rpush!(a);
                rpush!(b);
            }
            Inst::TwoFromR => {
                let b = rpop!();
                let a = rpop!();
                push_val!(a);
                push_val!(b);
            }
            Inst::TwoRFetch => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 2];
                let b = rbuf[rsp - 1];
                push_val!(a);
                push_val!(b);
            }
            Inst::Fetch => {
                let addr = pop_val!();
                match machine.load_cell(addr) {
                    Some(x) => push_val!(x),
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Store => {
                let addr = pop_val!();
                let x = pop_val!();
                if !machine.store_cell(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::CFetch => {
                let addr = pop_val!();
                match machine.load_byte(addr) {
                    Some(x) => push_val!(x),
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::CStore => {
                let addr = pop_val!();
                let x = pop_val!();
                if !machine.store_byte(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::PlusStore => {
                let addr = pop_val!();
                let n = pop_val!();
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }
            Inst::Branch(t) => ip = t as usize,
            Inst::BranchIfZero(t) => {
                let f = pop_val!();
                if f == 0 {
                    ip = t as usize;
                }
            }
            Inst::Call(t) => {
                rpush!(ip as Cell);
                ip = t as usize;
            }
            Inst::Execute => {
                let token = pop_val!();
                if token < 0 || token as usize >= insts.len() {
                    return Err(VmError::InvalidExecutionToken { ip: cur, token });
                }
                rpush!(ip as Cell);
                ip = token as usize;
            }
            Inst::Return => {
                let ret = rpop!();
                if ret < 0 || ret as usize > insts.len() {
                    return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                ip = ret as usize;
            }
            Inst::Halt => {
                flush!();
                machine.set_stack(&buf[..sp]);
                machine.set_rstack(&rbuf[..rsp]);
                return Ok(RunStats { executed });
            }
            Inst::Nop => {}
            Inst::DoSetup => {
                let start = pop_val!();
                let limit_v = pop_val!();
                rpush!(limit_v);
                rpush!(start);
            }
            Inst::QDoSetup(t) => {
                let start = pop_val!();
                let limit_v = pop_val!();
                if limit_v == start {
                    ip = t as usize;
                } else {
                    rpush!(limit_v);
                    rpush!(start);
                }
            }
            Inst::LoopInc(t) => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let index = rbuf[rsp - 1].wrapping_add(1);
                let limit_v = rbuf[rsp - 2];
                if index == limit_v {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = index;
                    ip = t as usize;
                }
            }
            Inst::PlusLoopInc(t) => {
                let step = pop_val!();
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let old = rbuf[rsp - 1];
                let new = old.wrapping_add(step);
                let limit_v = rbuf[rsp - 2];
                let crossed = if step >= 0 {
                    old < limit_v && new >= limit_v
                } else {
                    old >= limit_v && new < limit_v
                };
                if crossed {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = new;
                    ip = t as usize;
                }
            }
            Inst::LoopI => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let i = rbuf[rsp - 1];
                push_val!(i);
            }
            Inst::LoopJ => {
                if MODE == CHECK_FULL && rsp < 4 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let j = rbuf[rsp - 3];
                push_val!(j);
            }
            Inst::Unloop => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 2;
            }
            Inst::Emit => {
                let c = pop_val!();
                machine.push_output_byte(c as u8);
            }
            Inst::Dot => {
                let n = pop_val!();
                machine.push_output_number(n);
            }
            Inst::Type => {
                let len = pop_val!();
                let addr = pop_val!();
                if len < 0 {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(byte) => machine.push_output_byte(byte as u8),
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                    }
                }
            }
            Inst::Cr => machine.push_output_byte(b'\n'),
        }
    }
}
