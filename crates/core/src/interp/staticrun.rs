//! A real (wall-clock) statically stack-cached interpreter (Section 5).
//!
//! [`compile_static`] translates a program into specialized code in which
//! every instruction carries the cache state it was compiled in; the
//! interpreter [`run_staticcache`] never tracks the cache state at run
//! time — it is encoded in the instruction stream. Three cache registers
//! are used, with a six-state organization:
//!
//! | state | register word (bottom-first) |
//! |---|---|
//! | 0..=3 | canonical `r0 .. r(s-1)` |
//! | 4 | `r1 r0` (top two swapped) |
//! | 5 | `r0 r2 r1` (top two swapped) |
//!
//! The swapped states make `swap` a pure compile-time state change, and
//! `drop`/`2drop` compile away in canonical states — so statically
//! eliminated stack manipulations execute **no dispatch at all**, the
//! paper's headline property. At basic-block boundaries and around calls
//! the compiler emits reconciliation (embedded in the preceding
//! instruction, not as a separate dispatch) to the canonical convention
//! state.
//!
//! To keep the canonical convention sound at shallow stack depths the
//! compiled program runs with `canonical` sentinel zero cells below the
//! user stack (they are stripped at halt and compensated by `depth`).
//! Consequently this interpreter does not reproduce *data-stack underflow
//! traps* bit-for-bit — run trap-free programs (all other behaviour is
//! cross-validated against the reference interpreter).

use stackcache_vm::{Cell, Cfg, Checks, Inst, Machine, Program, VmError, CELL_BYTES, FALSE, TRUE};

use crate::interp::{RunStats, CHECK_FULL, CHECK_NONE, CHECK_NO_UNDERFLOW};

/// Register word per state, bottom-first.
const WORDS: [&[usize]; 6] = [&[], &[0], &[0, 1], &[0, 1, 2], &[1, 0], &[0, 2, 1]];

/// Marker: no reconciliation after this instruction.
const NO_REC: u8 = u8::MAX;

/// One compiled instruction: the original operation plus the cache state
/// it executes in and an optional embedded reconciliation.
#[derive(Debug, Clone, Copy)]
pub struct SInst {
    /// The operation (branch targets remapped to compiled indices).
    pub inst: Inst,
    /// Cache state the instruction executes in.
    pub s_in: u8,
    /// Reconciliation source state (valid when `rec_to != NO_REC`).
    pub rec_from: u8,
    /// Reconciliation target state, or `u8::MAX` for none.
    pub rec_to: u8,
}

/// Statistics from [`compile_static`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticExeStats {
    /// Original instruction count.
    pub original: usize,
    /// Compiled (dispatching) instruction count.
    pub compiled: usize,
    /// Instructions eliminated entirely.
    pub eliminated: usize,
}

/// A statically compiled executable.
#[derive(Debug, Clone)]
pub struct StaticExecutable {
    code: Vec<SInst>,
    /// original ip -> compiled index
    remap: Vec<u32>,
    entry: usize,
    canonical: u8,
    /// Compilation statistics.
    pub stats: StaticExeStats,
}

impl StaticExecutable {
    /// The compiled instruction stream.
    #[must_use]
    pub fn code(&self) -> &[SInst] {
        &self.code
    }

    /// The canonical convention state depth.
    #[must_use]
    pub fn canonical(&self) -> u8 {
        self.canonical
    }
}

// ---- compile-time state arithmetic (mirrors the runtime macros) ---------

fn sim_pop(st: u8) -> u8 {
    if st == 0 {
        0
    } else {
        st - 1
    }
}

fn sim_push(st: u8) -> u8 {
    (st + 1).min(3)
}

/// natural-out for the pop1-special class (supported in all six states)
const POP1_NAT: [u8; 6] = [0, 0, 1, 2, 1, 2];
/// natural-out for the pop2-special class
const POP2_NAT: [u8; 6] = [0, 0, 0, 1, 0, 1];
/// natural-out for binary operations
const BINOP_NAT: [u8; 6] = [1, 1, 1, 2, 1, 2];
/// natural-out for unary operations (top replaced in place)
const UNOP_NAT: [u8; 6] = [1, 1, 2, 3, 4, 5];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// Pure compile-time state change; no code emitted.
    Elim(u8),
    /// Emit with the given natural output state.
    Emit(u8),
    /// Must normalize a swapped state to canonical first, then re-plan.
    Norm,
}

/// Instruction classes for planning and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Binop,
    Unop,
    Pop1,            // ( x -- ) in all states
    Pop2,            // ( x y -- ) in all states
    Push,            // ( -- x ), canonical states only
    Push2,           // ( -- x y ), canonical states only
    Compose(u8, u8), // generic pops/pushes, canonical states only
    Flush,           // cache-opaque: flush, operate on memory
    Zero,            // ( -- ) no data-stack effect, any state
}

fn class_of(inst: &Inst) -> Class {
    use Inst::*;
    match inst {
        Add | Sub | Mul | Div | Mod | And | Or | Xor | Lshift | Rshift | Min | Max | Eq | Ne
        | Lt | Gt | Le | Ge | ULt | UGt => Class::Binop,
        Negate | Invert | Abs | OnePlus | OneMinus | TwoStar | TwoSlash | ZeroEq | ZeroNe
        | ZeroLt | ZeroGt | CellPlus | Cells | CharPlus | Fetch | CFetch => Class::Unop,
        ToR | Emit | Dot | BranchIfZero(_) | PlusLoopInc(_) | Execute => Class::Pop1,
        Store | CStore | PlusStore | TwoToR | DoSetup | QDoSetup(_) | Type => Class::Pop2,
        Lit(_) | FromR | RFetch | LoopI | LoopJ => Class::Push,
        TwoFromR | TwoRFetch => Class::Push2,
        Dup => Class::Compose(1, 2),
        Over => Class::Compose(2, 3),
        Rot | MinusRot => Class::Compose(3, 3),
        Nip => Class::Compose(2, 1),
        Tuck => Class::Compose(2, 3),
        TwoDup => Class::Compose(2, 4),
        TwoSwap => Class::Compose(4, 4),
        TwoOver => Class::Compose(4, 6),
        Pick | Depth | QDup => Class::Flush,
        Branch(_) | Call(_) | Return | Halt | Nop | LoopInc(_) | Unloop | Cr => Class::Zero,
        Drop | Swap | TwoDrop => unreachable!("planned specially"),
    }
}

fn plan(inst: &Inst, s: u8) -> Plan {
    use Inst::*;
    match inst {
        Swap => match s {
            2 => Plan::Elim(4),
            3 => Plan::Elim(5),
            4 => Plan::Elim(2),
            5 => Plan::Elim(3),
            _ => Plan::Emit(2), // memory-assisted swap ends with both cached
        },
        Drop => match s {
            1..=3 => Plan::Elim(s - 1),
            0 => Plan::Emit(0),
            4 => Plan::Emit(1),
            _ => Plan::Emit(2),
        },
        TwoDrop => match s {
            2 | 3 => Plan::Elim(s - 2),
            4 => Plan::Elim(0),
            5 => Plan::Elim(1),
            // 0/1: memory pops
            s2 => Plan::Emit(sim_pop(sim_pop(s2))),
        },
        _ => match class_of(inst) {
            Class::Binop => Plan::Emit(BINOP_NAT[s as usize]),
            Class::Unop => Plan::Emit(UNOP_NAT[s as usize]),
            Class::Pop1 => Plan::Emit(POP1_NAT[s as usize]),
            Class::Pop2 => Plan::Emit(POP2_NAT[s as usize]),
            Class::Push => {
                if s >= 4 {
                    Plan::Norm
                } else {
                    Plan::Emit(sim_push(s))
                }
            }
            Class::Push2 => {
                if s >= 4 {
                    Plan::Norm
                } else {
                    Plan::Emit(sim_push(sim_push(s)))
                }
            }
            Class::Compose(pops, pushes) => {
                if s >= 4 {
                    Plan::Norm
                } else {
                    let mut st = s;
                    for _ in 0..pops {
                        st = sim_pop(st);
                    }
                    for _ in 0..pushes {
                        st = sim_push(st);
                    }
                    Plan::Emit(st)
                }
            }
            Class::Flush => Plan::Emit(match inst {
                Depth => 1, // flush, then push the depth
                QDup => 0,  // both variants end uncached
                _ => 1,     // pick pushes its result
            }),
            Class::Zero => Plan::Emit(s),
        },
    }
}

/// canonical equivalent of a swapped state
fn canon_of(s: u8) -> u8 {
    match s {
        4 => 2,
        5 => 3,
        other => other,
    }
}

/// Compile `program` for the statically cached interpreter.
///
/// `canonical` (0..=3) is the convention state depth at block boundaries
/// and calls.
///
/// # Panics
///
/// Panics if `canonical > 3` or the program is empty.
#[must_use]
pub fn compile_static(program: &Program, canonical: u8) -> StaticExecutable {
    assert!(canonical <= 3, "canonical state depth must be 0..=3");
    let insts = program.insts();
    assert!(!insts.is_empty(), "cannot compile an empty program");
    let cfg = Cfg::build(program);

    let mut code: Vec<SInst> = Vec::with_capacity(insts.len());
    let mut remap = vec![u32::MAX; insts.len()];
    let mut stats = StaticExeStats {
        original: insts.len(),
        ..StaticExeStats::default()
    };

    for block in cfg.blocks() {
        let mut state = canonical;
        let block_code_start = code.len();

        // Attach a reconciliation after the previously emitted instruction
        // of this block, or emit a no-op carrier when the block has not
        // emitted anything yet.
        macro_rules! attach_rec {
            ($from:expr, $to:expr) => {{
                let from = $from;
                let to = $to;
                if from != to {
                    let has_carrier = code.len() > block_code_start;
                    match code.last_mut() {
                        Some(last) if has_carrier && last.rec_to == NO_REC => {
                            last.rec_from = from;
                            last.rec_to = to;
                        }
                        _ => {
                            code.push(SInst {
                                inst: Inst::Nop,
                                s_in: from,
                                rec_from: from,
                                rec_to: to,
                            });
                            stats.compiled += 1;
                        }
                    }
                }
            }};
        }

        for ip in block.start..block.end {
            remap[ip] = code.len() as u32;
            let inst = insts[ip];
            let mut p = plan(&inst, state);
            if p == Plan::Norm {
                let target = canon_of(state);
                attach_rec!(state, target);
                state = target;
                p = plan(&inst, state);
            }
            match p {
                Plan::Elim(ns) => {
                    state = ns;
                    stats.eliminated += 1;
                }
                Plan::Emit(natural) => {
                    code.push(SInst {
                        inst,
                        s_in: state,
                        rec_from: 0,
                        rec_to: NO_REC,
                    });
                    stats.compiled += 1;
                    state = natural;
                }
                Plan::Norm => unreachable!("normalization re-plans into Emit/Elim"),
            }
            // Terminators reconcile to the convention state (embedded in
            // the instruction's own handler, before the control transfer).
            if inst.ends_block() && !matches!(inst, Inst::Halt) {
                if state != canonical {
                    let last = code.last_mut().expect("terminators always emit");
                    last.rec_from = state;
                    last.rec_to = canonical;
                }
                state = canonical;
            }
        }

        // Fall-through block end: reconcile to the convention state.
        let last_inst = insts[block.end - 1];
        if !last_inst.ends_block() {
            attach_rec!(state, canonical);
        }
    }

    // Patch branch targets through the remap.
    let patch = |t: u32| -> u32 { remap[t as usize] };
    for si in &mut code {
        if let Some(t) = si.inst.target() {
            si.inst = si.inst.with_target(patch(t));
        }
    }
    let entry = remap[program.entry()] as usize;

    StaticExecutable {
        code,
        remap,
        entry,
        canonical,
        stats,
    }
}

#[inline]
fn flag(b: bool) -> Cell {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Run a statically compiled executable.
///
/// See the module documentation for the sentinel-cell caveat on underflow
/// traps.
///
/// # Errors
///
/// Returns the same [`VmError`]s as the reference interpreter for
/// non-underflow traps.
pub fn run_staticcache(
    exe: &StaticExecutable,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    run_staticcache_mode::<CHECK_FULL>(exe, machine, fuel)
}

/// [`run_staticcache`] at a selectable [`Checks`] level.
///
/// Levels above [`Checks::Full`] are sound only for programs proven safe
/// by static analysis; see [`Checks`] for the contract.
///
/// # Errors
///
/// Returns the same [`VmError`]s as [`run_staticcache`] (minus the trap
/// classes the chosen level elides).
pub fn run_staticcache_with_checks(
    exe: &StaticExecutable,
    machine: &mut Machine,
    fuel: u64,
    checks: Checks,
) -> Result<RunStats, VmError> {
    match checks {
        Checks::Full => run_staticcache_mode::<CHECK_FULL>(exe, machine, fuel),
        Checks::NoUnderflow => run_staticcache_mode::<CHECK_NO_UNDERFLOW>(exe, machine, fuel),
        Checks::None => run_staticcache_mode::<CHECK_NONE>(exe, machine, fuel),
    }
}

#[allow(clippy::too_many_lines)]
#[allow(unused_assignments)] // the state-tracking macros assign past the last use
fn run_staticcache_mode<const MODE: u8>(
    exe: &StaticExecutable,
    machine: &mut Machine,
    fuel: u64,
) -> Result<RunStats, VmError> {
    let code = &exe.code;
    let sentinels = usize::from(exe.canonical);
    let limit = machine.stack_limit().min(1 << 20) + sentinels;
    let rlimit = machine.rstack_limit().min(1 << 20);
    let mut buf = vec![0 as Cell; limit];
    let mut rbuf = vec![0 as Cell; rlimit];
    let mut rsp = machine.rstack().len();
    rbuf[..rsp].copy_from_slice(machine.rstack());

    // sentinel cells below the user stack keep the canonical convention
    // loadable at shallow depths
    let preset = machine.stack().len();
    buf[sentinels..sentinels + preset].copy_from_slice(machine.stack());
    let mut sp = sentinels + preset;

    let mut r0: Cell = 0;
    let mut r1: Cell = 0;
    let mut r2: Cell = 0;

    // Reconcile from state `from` to state `to` (registers + memory).
    macro_rules! reconcile {
        ($from:expr, $to:expr, $cur:expr) => {{
            let fw = WORDS[$from as usize];
            let tw = WORDS[$to as usize];
            let fl = fw.len();
            let tl = tw.len();
            let regs = [r0, r1, r2];
            if fl > tl {
                // spill the extra bottom items
                let extra = fl - tl;
                if MODE < CHECK_NONE && sp + extra > limit {
                    return Err(VmError::StackOverflow { ip: $cur });
                }
                for j in 0..extra {
                    buf[sp + j] = regs[fw[j]];
                }
                sp += extra;
            }
            // top-aligned register copies (read-all-then-write)
            let common = fl.min(tl);
            let mut vals = [0 as Cell; 3];
            for k in 0..common {
                vals[k] = regs[fw[fl - 1 - k]];
            }
            let mut out = [r0, r1, r2];
            for k in 0..common {
                out[tw[tl - 1 - k]] = vals[k];
            }
            if tl > fl {
                // load deeper items from memory into the bottom slots
                let need = tl - fl;
                debug_assert!(sp >= need, "sentinels guarantee loadable depth");
                sp -= need;
                for j in 0..need {
                    out[tw[j]] = buf[sp + j];
                }
            }
            r0 = out[0];
            r1 = out[1];
            r2 = out[2];
        }};
    }

    // Enter the convention state.
    reconcile!(0u8, exe.canonical, 0usize);

    let mut ip = exe.entry;
    let mut executed: u64 = 0;

    loop {
        if executed >= fuel {
            return Err(VmError::FuelExhausted { ip });
        }
        let Some(si) = code.get(ip) else {
            return Err(VmError::InstructionOutOfBounds { ip });
        };
        executed += 1;
        let cur = ip;
        ip += 1;
        let sin = si.s_in;

        // ---- class helpers (canonical states only, tracked locally) -----
        macro_rules! pop_v {
            ($st:expr) => {{
                match $st {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        buf[sp]
                    }
                    1 => {
                        $st = 0;
                        r0
                    }
                    2 => {
                        $st = 1;
                        r1
                    }
                    _ => {
                        $st = 2;
                        r2
                    }
                }
            }};
        }
        macro_rules! push_v {
            ($st:expr, $v:expr) => {{
                let v = $v;
                match $st {
                    0 => {
                        r0 = v;
                        $st = 1;
                    }
                    1 => {
                        r1 = v;
                        $st = 2;
                    }
                    2 => {
                        r2 = v;
                        $st = 3;
                    }
                    _ => {
                        if MODE < CHECK_NONE && sp >= limit {
                            return Err(VmError::StackOverflow { ip: cur });
                        }
                        buf[sp] = r0;
                        sp += 1;
                        r0 = r1;
                        r1 = r2;
                        r2 = v;
                    }
                }
            }};
        }
        /// pop1-special: works in all six states (see `POP1_NAT`).
        macro_rules! pop1 {
            () => {{
                match sin {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        buf[sp]
                    }
                    1 => r0,
                    2 => r1,
                    3 => r2,
                    4 => {
                        let v = r0;
                        r0 = r1;
                        v
                    }
                    _ => {
                        let v = r1;
                        r1 = r2;
                        v
                    }
                }
            }};
        }
        /// pop2-special: `(a, b)` with `b` the top, all six states.
        macro_rules! pop2 {
            () => {{
                match sin {
                    0 => {
                        if MODE == CHECK_FULL && sp < 2 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 2;
                        (buf[sp], buf[sp + 1])
                    }
                    1 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        (buf[sp], r0)
                    }
                    2 => (r0, r1),
                    3 => (r1, r2),
                    4 => (r1, r0),
                    _ => (r2, r1),
                }
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                match sin {
                    0 => {
                        if MODE == CHECK_FULL && sp < 2 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        let b = buf[sp - 1];
                        let a = buf[sp - 2];
                        sp -= 2;
                        r0 = $f(a, b);
                    }
                    1 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        r0 = $f(buf[sp], r0);
                    }
                    2 => r0 = $f(r0, r1),
                    3 => r1 = $f(r1, r2),
                    4 => r0 = $f(r1, r0),
                    _ => r1 = $f(r2, r1),
                }
            }};
        }
        macro_rules! unop {
            ($f:expr) => {{
                match sin {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        r0 = $f(buf[sp]);
                    }
                    1 | 4 => r0 = $f(r0),
                    2 | 5 => r1 = $f(r1),
                    _ => r2 = $f(r2),
                }
            }};
        }
        /// top-of-stack register for unary-style fallible ops
        macro_rules! unop_try {
            ($f:expr) => {{
                match sin {
                    0 => {
                        if MODE == CHECK_FULL && sp == 0 {
                            return Err(VmError::StackUnderflow { ip: cur });
                        }
                        sp -= 1;
                        r0 = $f(buf[sp])?;
                    }
                    1 | 4 => r0 = $f(r0)?,
                    2 | 5 => r1 = $f(r1)?,
                    _ => r2 = $f(r2)?,
                }
            }};
        }
        /// flush the cache (per the state word) to memory
        macro_rules! flush {
            () => {{
                let w = WORDS[sin as usize];
                if MODE < CHECK_NONE && sp + w.len() > limit {
                    return Err(VmError::StackOverflow { ip: cur });
                }
                let regs = [r0, r1, r2];
                for (j, &r) in w.iter().enumerate() {
                    buf[sp + j] = regs[r];
                }
                sp += w.len();
            }};
        }
        macro_rules! rpush {
            ($v:expr) => {{
                if MODE < CHECK_NONE && rsp >= rlimit {
                    return Err(VmError::ReturnStackOverflow { ip: cur });
                }
                rbuf[rsp] = $v;
                rsp += 1;
            }};
        }
        macro_rules! rpop {
            () => {{
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 1;
                rbuf[rsp]
            }};
        }
        macro_rules! do_rec {
            () => {
                if si.rec_to != NO_REC {
                    reconcile!(si.rec_from, si.rec_to, cur);
                }
            };
        }

        match si.inst {
            Inst::Lit(n) => {
                let mut st = sin;
                push_v!(st, n);
            }
            Inst::Add => binop!(|a: Cell, b: Cell| a.wrapping_add(b)),
            Inst::Sub => binop!(|a: Cell, b: Cell| a.wrapping_sub(b)),
            Inst::Mul => binop!(|a: Cell, b: Cell| a.wrapping_mul(b)),
            Inst::Div => {
                let (a, b) = pop2!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                // result goes where POP2_NAT's next push would put it:
                // states with nat 0 -> r0, nat 1 -> r1
                if POP2_NAT[sin as usize] == 0 {
                    r0 = a.div_euclid(b);
                } else {
                    r1 = a.div_euclid(b);
                }
            }
            Inst::Mod => {
                let (a, b) = pop2!();
                if b == 0 {
                    return Err(VmError::DivisionByZero { ip: cur });
                }
                if POP2_NAT[sin as usize] == 0 {
                    r0 = a.rem_euclid(b);
                } else {
                    r1 = a.rem_euclid(b);
                }
            }
            Inst::And => binop!(|a: Cell, b: Cell| a & b),
            Inst::Or => binop!(|a: Cell, b: Cell| a | b),
            Inst::Xor => binop!(|a: Cell, b: Cell| a ^ b),
            Inst::Lshift => binop!(|a: Cell, b: Cell| ((a as u64) << (b as u64 & 63)) as Cell),
            Inst::Rshift => binop!(|a: Cell, b: Cell| ((a as u64) >> (b as u64 & 63)) as Cell),
            Inst::Min => binop!(|a: Cell, b: Cell| a.min(b)),
            Inst::Max => binop!(|a: Cell, b: Cell| a.max(b)),
            Inst::Eq => binop!(|a, b| flag(a == b)),
            Inst::Ne => binop!(|a, b| flag(a != b)),
            Inst::Lt => binop!(|a, b| flag(a < b)),
            Inst::Gt => binop!(|a, b| flag(a > b)),
            Inst::Le => binop!(|a, b| flag(a <= b)),
            Inst::Ge => binop!(|a, b| flag(a >= b)),
            Inst::ULt => binop!(|a: Cell, b: Cell| flag((a as u64) < (b as u64))),
            Inst::UGt => binop!(|a: Cell, b: Cell| flag((a as u64) > (b as u64))),
            Inst::Negate => unop!(|a: Cell| a.wrapping_neg()),
            Inst::Invert => unop!(|a: Cell| !a),
            Inst::Abs => unop!(|a: Cell| a.wrapping_abs()),
            Inst::OnePlus => unop!(|a: Cell| a.wrapping_add(1)),
            Inst::OneMinus => unop!(|a: Cell| a.wrapping_sub(1)),
            Inst::TwoStar => unop!(|a: Cell| a.wrapping_mul(2)),
            Inst::TwoSlash => unop!(|a: Cell| a >> 1),
            Inst::ZeroEq => unop!(|a| flag(a == 0)),
            Inst::ZeroNe => unop!(|a| flag(a != 0)),
            Inst::ZeroLt => unop!(|a| flag(a < 0)),
            Inst::ZeroGt => unop!(|a| flag(a > 0)),
            Inst::CellPlus => unop!(|a: Cell| a.wrapping_add(CELL_BYTES as Cell)),
            Inst::Cells => unop!(|a: Cell| a.wrapping_mul(CELL_BYTES as Cell)),
            Inst::CharPlus => unop!(|a: Cell| a.wrapping_add(1)),

            Inst::Dup => {
                let mut st = sin;
                let a = pop_v!(st);
                push_v!(st, a);
                push_v!(st, a);
            }
            Inst::Drop => match sin {
                0 => {
                    if MODE == CHECK_FULL && sp == 0 {
                        return Err(VmError::StackUnderflow { ip: cur });
                    }
                    sp -= 1;
                }
                4 => r0 = r1,
                5 => r1 = r2,
                _ => unreachable!("drop in canonical non-empty states is eliminated"),
            },
            Inst::Swap => {
                // only states 0 and 1 reach here
                let mut st = sin;
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, b);
                push_v!(st, a);
            }
            Inst::Over => {
                let mut st = sin;
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, a);
                push_v!(st, b);
                push_v!(st, a);
            }
            Inst::Rot => {
                let mut st = sin;
                let c = pop_v!(st);
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, b);
                push_v!(st, c);
                push_v!(st, a);
            }
            Inst::MinusRot => {
                let mut st = sin;
                let c = pop_v!(st);
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, c);
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::Nip => {
                let mut st = sin;
                let b = pop_v!(st);
                let _ = pop_v!(st);
                push_v!(st, b);
            }
            Inst::Tuck => {
                let mut st = sin;
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, b);
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::TwoDup => {
                let mut st = sin;
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, a);
                push_v!(st, b);
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::TwoDrop => {
                // only states 0 and 1 reach here
                let mut st = sin;
                let _ = pop_v!(st);
                let _ = pop_v!(st);
            }
            Inst::TwoSwap => {
                let mut st = sin;
                let d = pop_v!(st);
                let c = pop_v!(st);
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, c);
                push_v!(st, d);
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::TwoOver => {
                let mut st = sin;
                let d = pop_v!(st);
                let c = pop_v!(st);
                let b = pop_v!(st);
                let a = pop_v!(st);
                push_v!(st, a);
                push_v!(st, b);
                push_v!(st, c);
                push_v!(st, d);
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::QDup => {
                flush!();
                if MODE == CHECK_FULL && sp == 0 {
                    return Err(VmError::StackUnderflow { ip: cur });
                }
                let a = buf[sp - 1];
                if a != 0 {
                    if MODE < CHECK_NONE && sp >= limit {
                        return Err(VmError::StackOverflow { ip: cur });
                    }
                    buf[sp] = a;
                    sp += 1;
                }
            }
            Inst::Pick => {
                flush!();
                if MODE == CHECK_FULL && sp == 0 {
                    return Err(VmError::StackUnderflow { ip: cur });
                }
                sp -= 1;
                let u = buf[sp];
                let avail = sp - sentinels;
                if u < 0 || u as usize >= avail {
                    return Err(VmError::PickOutOfRange { ip: cur, index: u });
                }
                let v = buf[sp - 1 - u as usize];
                // state 0 after flush: push via registers (natural 1)
                r0 = v;
            }
            Inst::Depth => {
                flush!();
                let d = (sp - sentinels) as Cell;
                r0 = d; // natural state 1
            }

            Inst::ToR => {
                let v = pop1!();
                rpush!(v);
            }
            Inst::FromR => {
                let v = rpop!();
                let mut st = sin;
                push_v!(st, v);
            }
            Inst::RFetch => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let v = rbuf[rsp - 1];
                let mut st = sin;
                push_v!(st, v);
            }
            Inst::TwoToR => {
                let (a, b) = pop2!();
                rpush!(a);
                rpush!(b);
            }
            Inst::TwoFromR => {
                let b = rpop!();
                let a = rpop!();
                let mut st = sin;
                push_v!(st, a);
                push_v!(st, b);
            }
            Inst::TwoRFetch => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let a = rbuf[rsp - 2];
                let b = rbuf[rsp - 1];
                let mut st = sin;
                push_v!(st, a);
                push_v!(st, b);
            }

            Inst::Fetch => {
                unop_try!(|addr| machine
                    .load_cell(addr)
                    .ok_or(VmError::MemoryOutOfBounds { ip: cur, addr }));
            }
            Inst::CFetch => {
                unop_try!(|addr| machine
                    .load_byte(addr)
                    .ok_or(VmError::MemoryOutOfBounds { ip: cur, addr }));
            }
            Inst::Store => {
                let (x, addr) = pop2!();
                if !machine.store_cell(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::CStore => {
                let (x, addr) = pop2!();
                if !machine.store_byte(addr, x) {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr });
                }
            }
            Inst::PlusStore => {
                let (n, addr) = pop2!();
                match machine.load_cell(addr) {
                    Some(x) => {
                        machine.store_cell(addr, x.wrapping_add(n));
                    }
                    None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr }),
                }
            }

            Inst::Branch(t) => {
                do_rec!();
                ip = t as usize;
                continue;
            }
            Inst::BranchIfZero(t) => {
                let f = pop1!();
                do_rec!();
                if f == 0 {
                    ip = t as usize;
                }
                continue;
            }
            Inst::Call(t) => {
                do_rec!();
                rpush!(ip as Cell);
                ip = t as usize;
                continue;
            }
            Inst::Execute => {
                let token = pop1!();
                do_rec!();
                if token < 0 || token as usize >= exe.remap.len() {
                    return Err(VmError::InvalidExecutionToken { ip: cur, token });
                }
                let target = exe.remap[token as usize];
                if target == u32::MAX {
                    return Err(VmError::InvalidExecutionToken { ip: cur, token });
                }
                rpush!(ip as Cell);
                ip = target as usize;
                continue;
            }
            Inst::Return => {
                do_rec!();
                let ret = rpop!();
                if ret < 0 || ret as usize > code.len() {
                    return Err(VmError::InstructionOutOfBounds { ip: ret as usize });
                }
                ip = ret as usize;
                continue;
            }
            Inst::Halt => {
                flush!();
                machine.set_stack(&buf[sentinels..sp]);
                machine.set_rstack(&rbuf[..rsp]);
                return Ok(RunStats { executed });
            }
            Inst::Nop => {}

            Inst::DoSetup => {
                let (limit_v, start) = pop2!();
                rpush!(limit_v);
                rpush!(start);
            }
            Inst::QDoSetup(t) => {
                let (limit_v, start) = pop2!();
                do_rec!();
                if limit_v == start {
                    ip = t as usize;
                } else {
                    rpush!(limit_v);
                    rpush!(start);
                }
                continue;
            }
            Inst::LoopInc(t) => {
                do_rec!();
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let index = rbuf[rsp - 1].wrapping_add(1);
                let limit_v = rbuf[rsp - 2];
                if index == limit_v {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = index;
                    ip = t as usize;
                }
                continue;
            }
            Inst::PlusLoopInc(t) => {
                let step = pop1!();
                do_rec!();
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let old = rbuf[rsp - 1];
                let new = old.wrapping_add(step);
                let limit_v = rbuf[rsp - 2];
                let crossed = if step >= 0 {
                    old < limit_v && new >= limit_v
                } else {
                    old >= limit_v && new < limit_v
                };
                if crossed {
                    rsp -= 2;
                } else {
                    rbuf[rsp - 1] = new;
                    ip = t as usize;
                }
                continue;
            }
            Inst::LoopI => {
                if MODE == CHECK_FULL && rsp == 0 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let v = rbuf[rsp - 1];
                let mut st = sin;
                push_v!(st, v);
            }
            Inst::LoopJ => {
                if MODE == CHECK_FULL && rsp < 4 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                let v = rbuf[rsp - 3];
                let mut st = sin;
                push_v!(st, v);
            }
            Inst::Unloop => {
                if MODE == CHECK_FULL && rsp < 2 {
                    return Err(VmError::ReturnStackUnderflow { ip: cur });
                }
                rsp -= 2;
            }

            Inst::Emit => {
                let c = pop1!();
                machine.push_output_byte(c as u8);
            }
            Inst::Dot => {
                let n = pop1!();
                machine.push_output_number(n);
            }
            Inst::Type => {
                let (addr, len) = pop2!();
                if len < 0 {
                    return Err(VmError::MemoryOutOfBounds { ip: cur, addr: len });
                }
                for i in 0..len {
                    let a = addr.wrapping_add(i);
                    match machine.load_byte(a) {
                        Some(byte) => machine.push_output_byte(byte as u8),
                        None => return Err(VmError::MemoryOutOfBounds { ip: cur, addr: a }),
                    }
                }
            }
            Inst::Cr => machine.push_output_byte(b'\n'),
        }

        do_rec!();
    }
}
