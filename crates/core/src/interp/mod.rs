//! Real (wall-clock) stack-cached interpreters.
//!
//! Together with the baseline and top-of-stack interpreters in
//! `stackcache_vm::interp`, these complete the ladder the paper measures:
//!
//! | interpreter | caching | where |
//! |---|---|---|
//! | `run_baseline` | none (Fig. 11) | `stackcache-vm` |
//! | `run_tos` | constant k = 1 (Fig. 12) | `stackcache-vm` |
//! | [`run_dyncache`] | dynamic, minimal org, 3 registers (Section 4) | here |
//! | [`compile_static`] + [`run_staticcache`] | static, 6-state org (Section 5) | here |
//!
//! All interpreters produce identical observable behaviour on trap-free
//! programs and are cross-validated against the reference interpreter.

mod dyncache;
mod staticrun;

pub use dyncache::{run_dyncache, run_dyncache_with_checks};
pub use staticrun::{
    compile_static, run_staticcache, run_staticcache_with_checks, SInst, StaticExecutable,
};

/// Check-mode constant: all depth checks on (mirrors `vm::Checks::Full`).
pub(crate) const CHECK_FULL: u8 = 0;
/// Check-mode constant: underflow checks off (`vm::Checks::NoUnderflow`).
pub(crate) const CHECK_NO_UNDERFLOW: u8 = 1;
/// Check-mode constant: all depth checks off (`vm::Checks::None`).
pub(crate) const CHECK_NONE: u8 = 2;

/// Outcome of a wall-clock interpreter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of dispatched instructions (for the static interpreter this
    /// is the number of *compiled* instructions executed, which is lower
    /// than the original instruction count when stack manipulations were
    /// eliminated).
    pub executed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::interp::{run_baseline, run_tos};
    use stackcache_vm::{exec, program_of, Inst, Machine, Program, ProgramBuilder};

    /// Run a trap-free program on every engine and assert identical
    /// observable behaviour.
    fn cross_validate(p: &Program) {
        let mut m_ref = Machine::with_memory(4096);
        exec::run(p, &mut m_ref, 1_000_000).expect("reference runs");

        let mut m = Machine::with_memory(4096);
        run_baseline(p, &mut m, 1_000_000).expect("baseline runs");
        assert_eq!(m_ref.stack(), m.stack(), "baseline stack");

        let mut m = Machine::with_memory(4096);
        run_tos(p, &mut m, 1_000_000).expect("tos runs");
        assert_eq!(m_ref.stack(), m.stack(), "tos stack");

        let mut m = Machine::with_memory(4096);
        run_dyncache(p, &mut m, 1_000_000).expect("dyncache runs");
        assert_eq!(m_ref.stack(), m.stack(), "dyncache stack");
        assert_eq!(m_ref.rstack(), m.rstack(), "dyncache rstack");
        assert_eq!(m_ref.output(), m.output(), "dyncache output");
        assert_eq!(m_ref.memory(), m.memory(), "dyncache memory");

        for c in 0..=3u8 {
            let exe = compile_static(p, c);
            let mut m = Machine::with_memory(4096);
            run_staticcache(&exe, &mut m, 1_000_000)
                .unwrap_or_else(|e| panic!("static c={c} traps: {e}"));
            assert_eq!(m_ref.stack(), m.stack(), "static c={c} stack");
            assert_eq!(m_ref.rstack(), m.rstack(), "static c={c} rstack");
            assert_eq!(m_ref.output(), m.output(), "static c={c} output");
            assert_eq!(m_ref.memory(), m.memory(), "static c={c} memory");
        }
    }

    #[test]
    fn agree_on_arithmetic_and_shuffles() {
        cross_validate(&program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Lit(3),
            Inst::Lit(4),
            Inst::TwoSwap,
            Inst::Rot,
            Inst::Tuck,
            Inst::MinusRot,
            Inst::Over,
            Inst::Nip,
            Inst::TwoDup,
            Inst::TwoOver,
            Inst::Swap,
            Inst::Dup,
            Inst::Add,
            Inst::Mul,
            Inst::Sub,
        ]));
    }

    #[test]
    fn agree_on_swap_chains() {
        // exercises the swapped static states
        cross_validate(&program_of(&[
            Inst::Lit(10),
            Inst::Lit(20),
            Inst::Swap,
            Inst::Sub, // executes in a swapped state
            Inst::Lit(30),
            Inst::Lit(40),
            Inst::Swap,
            Inst::Swap, // cancels statically
            Inst::Lit(7),
            Inst::Swap,
            Inst::Drop, // drop in a swapped state
            Inst::Add,
            Inst::Add,
        ]));
    }

    #[test]
    fn agree_on_deep_stacks() {
        let mut insts = Vec::new();
        for i in 0..20 {
            insts.push(Inst::Lit(i));
        }
        for _ in 0..19 {
            insts.push(Inst::Add);
        }
        cross_validate(&program_of(&insts));
    }

    #[test]
    fn agree_on_memory_io_and_unops() {
        cross_validate(&program_of(&[
            Inst::Lit(42),
            Inst::Lit(128),
            Inst::Store,
            Inst::Lit(128),
            Inst::Fetch,
            Inst::Dup,
            Inst::Dot,
            Inst::Negate,
            Inst::Abs,
            Inst::OnePlus,
            Inst::Lit(65),
            Inst::Lit(130),
            Inst::CStore,
            Inst::Lit(130),
            Inst::CFetch,
            Inst::Emit,
            Inst::Cr,
            Inst::Lit(5),
            Inst::Lit(128),
            Inst::PlusStore,
            Inst::Lit(128),
            Inst::Fetch,
        ]));
    }

    #[test]
    fn agree_on_calls_loops_and_rstack() {
        let mut b = ProgramBuilder::new();
        let square = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(8));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(square);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Lit(3));
        b.push(Inst::ToR);
        b.push(Inst::RFetch);
        b.push(Inst::FromR);
        b.push(Inst::Add);
        b.push(Inst::Add);
        b.push(Inst::Halt);
        b.bind(square).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        cross_validate(&b.finish().unwrap());
    }

    #[test]
    fn agree_on_conditionals_and_qdup() {
        let mut b = ProgramBuilder::new();
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.push(Inst::Lit(5));
        b.push(Inst::QDup);
        b.push(Inst::Sub); // 5-5 = 0
        b.push(Inst::QDup); // zero: no dup
        b.branch_if_zero(else_l);
        b.push(Inst::Lit(111));
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::Lit(222));
        b.bind(end_l).unwrap();
        b.push(Inst::Lit(1000));
        b.push(Inst::Add);
        b.push(Inst::Halt);
        cross_validate(&b.finish().unwrap());
    }

    #[test]
    fn agree_on_pick_and_depth() {
        cross_validate(&program_of(&[
            Inst::Lit(10),
            Inst::Lit(20),
            Inst::Lit(30),
            Inst::Lit(1),
            Inst::Pick,
            Inst::Depth,
            Inst::Add,
            Inst::Add,
            Inst::Add,
            Inst::Add,
        ]));
    }

    #[test]
    fn agree_on_execute() {
        let mut b = ProgramBuilder::new();
        let dbl = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(21));
        b.push(Inst::Lit(4)); // xt of `dbl` in the ORIGINAL program
        b.push(Inst::Execute);
        b.push(Inst::Halt);
        b.bind(dbl).unwrap();
        assert_eq!(b.here(), 4);
        b.push(Inst::TwoStar);
        b.push(Inst::Return);
        cross_validate(&b.finish().unwrap());
    }

    #[test]
    fn static_eliminates_dispatches() {
        let p = program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Swap,
            Inst::Swap,
            Inst::Drop,
            Inst::Drop,
            Inst::Lit(9),
        ]);
        let exe = compile_static(&p, 2);
        assert!(exe.stats.eliminated >= 4, "stats: {:?}", exe.stats);
        assert!(exe.stats.compiled < exe.stats.original);
        let mut m = Machine::with_memory(64);
        let stats = run_staticcache(&exe, &mut m, 1000).unwrap();
        assert!(stats.executed < 8, "dispatches: {}", stats.executed);
        assert_eq!(m.stack(), &[9]);
    }

    #[test]
    fn static_plus_loop_and_unloop() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(10));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Add);
        b.push(Inst::Lit(3));
        b.plus_loop_inc(top);
        b.push(Inst::Halt);
        cross_validate(&b.finish().unwrap());
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::Nop);
        b.branch(top);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        assert!(matches!(
            run_dyncache(&p, &mut m, 100),
            Err(stackcache_vm::VmError::FuelExhausted { .. })
        ));
        let exe = compile_static(&p, 1);
        let mut m = Machine::with_memory(64);
        assert!(matches!(
            run_staticcache(&exe, &mut m, 100),
            Err(stackcache_vm::VmError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn dyncache_traps_match_reference() {
        for p in [
            program_of(&[Inst::Lit(1), Inst::Lit(0), Inst::Div]),
            program_of(&[Inst::Add]),
            program_of(&[Inst::FromR]),
            program_of(&[Inst::Lit(1 << 40), Inst::Fetch]),
        ] {
            let mut m_ref = Machine::with_memory(64);
            let e_ref = exec::run(&p, &mut m_ref, 1000).unwrap_err();
            let mut m = Machine::with_memory(64);
            let e = run_dyncache(&p, &mut m, 1000).unwrap_err();
            assert_eq!(e_ref, e);
        }
    }
}
