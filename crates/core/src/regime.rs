//! Counting regimes: instrumentation observers that measure the argument
//! access overhead of a program run under each caching discipline.
//!
//! Each regime implements [`ExecObserver`] and accumulates [`Counts`] while
//! the reference interpreter executes a workload — exactly the methodology
//! of the paper's Section 6 ("We instrumented a Forth system to collect
//! data about the behaviour of various stack caching organizations"):
//!
//! * [`SimpleRegime`] — no caching: the baseline characteristics of
//!   Fig. 20,
//! * [`ConstantKRegime`] — a fixed number of items in registers (Fig. 21),
//! * [`CachedRegime`] — on-demand (dynamic) stack caching over any
//!   organization and overflow-followup policy (Figs. 22 and 23),
//! * [`RStackRegime`] — return-stack caching with one register (the
//!   Section 6 note that it has virtually no effect),
//! * [`TwoStacksRegime`] — both stacks sharing one register file (the
//!   *two stacks* organization of Section 3.4).
//!
//! Several regimes can observe one execution simultaneously (see the
//! blanket `ExecObserver` impls for slices in `stackcache-vm`), which is
//! how the harness sweeps dozens of configurations in a single run.

use std::collections::HashMap;

use stackcache_vm::{EffectKind, ExecEvent, ExecObserver};

use crate::cost::Counts;
use crate::engine::{
    compute_transition, sig_slot_for_event, sig_slots, OpSig, Policy, TransitionTable,
};
use crate::org::Org;
use crate::state::StateId;

fn is_call(kind: EffectKind) -> bool {
    matches!(kind, EffectKind::Call)
}

/// The uncached baseline: every operand access is a memory access and the
/// stack pointer is updated whenever the depth changes (Fig. 11 / Fig. 20).
#[derive(Debug, Clone, Default)]
pub struct SimpleRegime {
    /// Accumulated counts.
    pub counts: Counts,
}

impl SimpleRegime {
    /// A fresh baseline counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecObserver for SimpleRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        c.insts += 1;
        c.dispatches += 1;
        c.loads += u64::from(e.pops);
        c.stores += u64::from(e.pushes);
        if e.pops != e.pushes {
            c.updates += 1;
        }
        c.rloads += u64::from(e.rloads);
        c.rstores += u64::from(e.rstores);
        if e.rnet != 0 {
            c.rupdates += 1;
        }
        if is_call(e.kind) {
            c.calls += 1;
        }
    }
}

/// On-demand stack caching (the *dynamic* method, Section 4): the cache
/// state machine of `org` advances with every executed instruction.
///
/// The `overflow_depth` of the [`Policy`] selects the overflow followup
/// state (Fig. 22's x-axis); the underflow followup holds exactly the
/// underflowing instruction's results, as in the paper.
#[derive(Debug, Clone)]
pub struct CachedRegime {
    /// Accumulated counts.
    pub counts: Counts,
    org_name: String,
    registers: u8,
    overflow_depth: u8,
    table: TransitionTable,
    state: StateId,
    start: StateId,
}

impl CachedRegime {
    /// Create a dynamic-caching counter for `org` with the given overflow
    /// followup depth.
    #[must_use]
    pub fn new(org: &Org, overflow_depth: u8) -> Self {
        let policy = Policy::on_demand(overflow_depth);
        let start = org.canonical_of_depth(0).expect("empty state exists");
        CachedRegime {
            counts: Counts::new(),
            org_name: org.name().to_string(),
            registers: org.registers(),
            overflow_depth,
            table: TransitionTable::build(org, &policy),
            state: start,
            start,
        }
    }

    /// The organization's name.
    #[must_use]
    pub fn org_name(&self) -> &str {
        &self.org_name
    }

    /// Number of cache registers.
    #[must_use]
    pub fn registers(&self) -> u8 {
        self.registers
    }

    /// The overflow followup depth this regime uses.
    #[must_use]
    pub fn overflow_depth(&self) -> u8 {
        self.overflow_depth
    }

    /// Reset the cache state (e.g. between workloads).
    pub fn reset_state(&mut self) {
        self.state = self.start;
    }
}

impl ExecObserver for CachedRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        c.insts += 1;
        c.dispatches += 1;
        let slot = sig_slot_for_event(ev);
        let t = self.table.get(self.state, slot);
        c.loads += u64::from(t.loads);
        c.stores += u64::from(t.stores);
        c.moves += u64::from(t.moves);
        c.updates += u64::from(t.updates);
        c.underflows += u64::from(t.underflow);
        c.overflows += u64::from(t.overflow);
        self.state = t.next;
        c.rloads += u64::from(e.rloads);
        c.rstores += u64::from(e.rstores);
        if e.rnet != 0 {
            c.rupdates += 1;
        }
        if is_call(e.kind) {
            c.calls += 1;
        }
    }
}

/// A constant number of top-of-stack items kept in registers (Section 2.3,
/// Fig. 21): the cache always holds exactly `min(k, depth)` items, so the
/// stack pointer tracks every depth change and refills/spills keep the
/// register file full.
#[derive(Debug, Clone)]
pub struct ConstantKRegime {
    /// Accumulated counts.
    pub counts: Counts,
    k: u8,
    org: Org,
    policy: Policy,
    sigs: Vec<OpSig>,
    state: StateId,
    /// true data-stack depth (tracked from events)
    depth: u64,
    memo: HashMap<(StateId, usize, u8), crate::engine::Trans>,
}

impl ConstantKRegime {
    /// Keep exactly `k >= 1` items in registers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 (use [`SimpleRegime`]) or greater than 32.
    #[must_use]
    pub fn new(k: u8) -> Self {
        assert!(k >= 1, "k = 0 is the SimpleRegime");
        let org = Org::minimal(k);
        ConstantKRegime {
            counts: Counts::new(),
            k,
            state: org.canonical_of_depth(0).expect("empty state"),
            org,
            policy: Policy::constant_k(k),
            sigs: sig_slots(),
            depth: 0,
            memo: HashMap::new(),
        }
    }

    /// The `k` this regime maintains.
    #[must_use]
    pub fn k(&self) -> u8 {
        self.k
    }
}

impl ExecObserver for ConstantKRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        c.insts += 1;
        c.dispatches += 1;
        let slot = sig_slot_for_event(ev);
        let cached = u64::from(self.org.state(self.state).depth());
        let deeper = self.depth.saturating_sub(cached);
        // The transition only depends on availability up to k + max pops.
        let deeper_clamped = deeper.min(u64::from(self.k) + 8) as u8;
        let key = (self.state, slot, deeper_clamped);
        let t = match self.memo.get(&key) {
            Some(t) => *t,
            None => {
                let t = compute_transition(
                    &self.org,
                    &self.policy,
                    self.state,
                    &self.sigs[slot],
                    deeper_clamped,
                );
                self.memo.insert(key, t);
                t
            }
        };
        c.loads += u64::from(t.loads);
        c.stores += u64::from(t.stores);
        c.moves += u64::from(t.moves);
        c.updates += u64::from(t.updates);
        c.underflows += u64::from(t.underflow);
        c.overflows += u64::from(t.overflow);
        self.state = t.next;
        self.depth = (self.depth as i64 + i64::from(e.pushes) - i64::from(e.pops)) as u64;
        c.rloads += u64::from(e.rloads);
        c.rstores += u64::from(e.rstores);
        if e.rnet != 0 {
            c.rupdates += 1;
        }
        if is_call(e.kind) {
            c.calls += 1;
        }
    }
}

/// Return-stack caching with a single register holding the top return-stack
/// item (Section 6: "always keeping one return stack item in a register has
/// virtually no effect").
///
/// Counts return-stack loads and stores under the k=1 discipline into
/// `counts.rloads` / `counts.rstores`; compare with [`SimpleRegime`]'s
/// uncached numbers.
#[derive(Debug, Clone, Default)]
pub struct RStackRegime {
    /// Accumulated counts (`rloads`/`rstores`/`rupdates` are the cached
    /// numbers; data-stack fields stay zero).
    pub counts: Counts,
    /// whether the cache register currently holds the top item
    warm: bool,
}

impl RStackRegime {
    /// A fresh return-stack k=1 counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecObserver for RStackRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        c.insts += 1;
        // Model: the top return-stack item lives in a register once the
        // stack is non-empty.
        //
        // pushes (rnet > 0): the old cached top is stored to memory
        //   (if warm), pushed items beyond the last land in memory too;
        //   the newest stays in the register.
        // pops (rnet < 0): the cached top is consumed for free; the new
        //   top must be reloaded if any instruction later reads it — we
        //   charge the reload eagerly (keep-1 discipline).
        // reads without net change (r@, i, j, (loop)): top reads are free,
        //   deeper reads load from memory.
        if e.rnet > 0 {
            let pushed = e.rnet as u64;
            let mut stores = pushed - 1; // all but the newest go to memory
            if self.warm {
                stores += 1; // previous cached top displaced
            }
            c.rstores += stores;
            self.warm = true;
            c.rupdates += 1;
        } else if e.rnet < 0 {
            let popped = (-e.rnet) as u64;
            // The cached top covers one popped item; the rest were in
            // memory. Loads: the instruction *read* e.rloads items; one of
            // them (the top) was cached.
            let reads = u64::from(e.rloads);
            c.rloads += reads.saturating_sub(1);
            // Refill the register with the new top.
            c.rloads += 1;
            let _ = popped;
            self.warm = true;
            c.rupdates += 1;
        } else if e.rloads > 0 || e.rstores > 0 {
            // Reads/writes without depth change: top access free, deeper
            // accesses from memory.
            c.rloads += u64::from(e.rloads).saturating_sub(1);
            c.rstores += u64::from(e.rstores).saturating_sub(1);
        }
        if is_call(e.kind) {
            c.calls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::{exec, program_of, Inst, Machine, ProgramBuilder};

    fn run_with<O: ExecObserver>(insts: &[Inst], obs: &mut O) {
        let p = program_of(insts);
        let mut m = Machine::with_memory(4096);
        exec::run_with_observer(&p, &mut m, 1_000_000, obs).expect("runs");
    }

    #[test]
    fn simple_counts_operand_traffic() {
        let mut r = SimpleRegime::new();
        // lit lit add: stores 1+1+1, loads 2, updates 3 (+halt: 0)
        run_with(&[Inst::Lit(1), Inst::Lit(2), Inst::Add], &mut r);
        assert_eq!(r.counts.insts, 4); // + halt
        assert_eq!(r.counts.loads, 2);
        assert_eq!(r.counts.stores, 3);
        assert_eq!(r.counts.updates, 3);
        assert_eq!(r.counts.dispatches, 4);
    }

    #[test]
    fn simple_counts_calls_and_rstack() {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let mut m = Machine::with_memory(64);
        let mut r = SimpleRegime::new();
        exec::run_with_observer(&p, &mut m, 1000, &mut r).unwrap();
        assert_eq!(r.counts.calls, 1);
        assert_eq!(r.counts.rstores, 1);
        assert_eq!(r.counts.rloads, 1);
        assert_eq!(r.counts.rupdates, 2);
    }

    #[test]
    fn cached_regime_avoids_traffic_for_balanced_code() {
        // lit lit add with a 3-register cache: everything stays in
        // registers; only the final halt leaves the value cached.
        let org = Org::minimal(3);
        let mut r = CachedRegime::new(&org, 3);
        run_with(&[Inst::Lit(1), Inst::Lit(2), Inst::Add], &mut r);
        assert_eq!(r.counts.loads, 0);
        assert_eq!(r.counts.stores, 0);
        assert_eq!(r.counts.updates, 0);
        assert_eq!(r.counts.overflows, 0);
        assert_eq!(r.counts.underflows, 0);
    }

    #[test]
    fn cached_regime_overflows_when_pushing_past_capacity() {
        let org = Org::minimal(2);
        let mut r = CachedRegime::new(&org, 2);
        run_with(
            &[Inst::Lit(1), Inst::Lit(2), Inst::Lit(3), Inst::Lit(4)],
            &mut r,
        );
        assert_eq!(r.counts.overflows, 2);
        assert_eq!(r.counts.stores, 2);
    }

    #[test]
    fn cached_regime_underflow_policy_keeps_results() {
        // Start empty; add underflows (2 loads), leaves result cached; a
        // following drop is then free.
        let org = Org::minimal(3);
        let mut r = CachedRegime::new(&org, 3);
        let p = program_of(&[Inst::Add, Inst::Drop]);
        let mut m = Machine::with_memory(64);
        m.push(1);
        m.push(2);
        exec::run_with_observer(&p, &mut m, 1000, &mut r).unwrap();
        assert_eq!(r.counts.loads, 2);
        assert_eq!(r.counts.underflows, 1);
        assert_eq!(r.counts.stores, 0);
        assert_eq!(r.counts.moves, 0);
    }

    #[test]
    fn constant_k_matches_paper_add_example() {
        // Deep stack, then add: k=1 keeps the top in a register, so add
        // loads one operand (Fig. 12), instead of two loads + a store.
        let mut r1 = ConstantKRegime::new(1);
        let p = program_of(&[Inst::Lit(5), Inst::Lit(6), Inst::Lit(7), Inst::Add]);
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1000, &mut r1).unwrap();
        // lit(5): cache it (store nothing: depth 0 -> 1, reg holds it).
        // lit(6): displaced 5 stored (1 store). lit(7): 6 stored (1 store).
        // add: operand 6 loaded (1 load), result in reg.
        assert_eq!(r1.counts.stores, 2);
        assert_eq!(r1.counts.loads, 1);
        // sp updates on every net change: 4 instructions
        assert_eq!(r1.counts.updates, 4);
    }

    #[test]
    fn constant_k_moves_grow_with_k() {
        // swap-heavy code: with k=3 a swap shuffles registers (3 moves);
        // with k=1 it touches memory instead.
        let prog = &[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Swap,
            Inst::Swap,
            Inst::Swap,
        ];
        let mut r1 = ConstantKRegime::new(1);
        run_with(prog, &mut r1);
        let mut r3 = ConstantKRegime::new(3);
        run_with(prog, &mut r3);
        assert!(r3.counts.moves > r1.counts.moves);
        assert!(r3.counts.loads + r3.counts.stores < r1.counts.loads + r1.counts.stores);
    }

    #[test]
    fn rstack_k1_saves_rfetch_only() {
        // >r r@ r@ r>: uncached: 1 store + 3 loads. k=1: push free-ish,
        // r@ free, pop refill.
        let mut simple = SimpleRegime::new();
        let mut cached = RStackRegime::new();
        let prog = &[
            Inst::Lit(5),
            Inst::ToR,
            Inst::RFetch,
            Inst::RFetch,
            Inst::FromR,
        ];
        run_with(prog, &mut simple);
        run_with(prog, &mut cached);
        assert_eq!(simple.counts.rloads, 3);
        assert_eq!(simple.counts.rstores, 1);
        // cached: >r costs 0 (register), r@ free twice, r> reads cached
        // top free but refills: 1 load.
        assert!(
            cached.counts.rloads + cached.counts.rstores
                < simple.counts.rloads + simple.counts.rstores
        );
    }

    #[test]
    fn rstack_k1_no_effect_on_call_return() {
        // pure call/return traffic: k=1 saves nothing.
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        for _ in 0..5 {
            b.call(w);
        }
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Return);
        let p = b.finish().unwrap();

        let mut simple = SimpleRegime::new();
        let mut cached = RStackRegime::new();
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1000, &mut simple).unwrap();
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1000, &mut cached).unwrap();
        // call: store return address; return: load it. k=1 converts the
        // store into a displaced-store on the 2nd..5th call and adds a
        // refill per return: no improvement.
        assert!(
            cached.counts.rloads + cached.counts.rstores + 1
                >= simple.counts.rloads + simple.counts.rstores,
            "k=1 should not help pure call/return: cached {} vs simple {}",
            cached.counts.rloads + cached.counts.rstores,
            simple.counts.rloads + simple.counts.rstores
        );
    }

    #[test]
    fn regimes_can_share_one_execution() {
        let mut sims: Vec<CachedRegime> = (1..=4u8)
            .map(|n| CachedRegime::new(&Org::minimal(n), n))
            .collect();
        let p = program_of(&[Inst::Lit(1), Inst::Lit(2), Inst::Add, Inst::Dup, Inst::Mul]);
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1000, &mut sims).unwrap();
        for s in &sims {
            assert_eq!(s.counts.insts, 6);
        }
        // more registers never increase memory traffic
        for w in sims.windows(2) {
            assert!(
                w[1].counts.loads + w[1].counts.stores <= w[0].counts.loads + w[0].counts.stores
            );
        }
    }
}

/// Data- and return-stack caching sharing one register file (the *two
/// stacks* organization of Section 3.4 / Fig. 18): minimal data-stack
/// discipline plus up to two cached return-stack items, with the data
/// stack taking priority when registers run short.
///
/// Policy (documented, on-demand):
/// * data-stack transitions follow the minimal organization with a
///   near-full overflow followup, over the registers not holding cached
///   return-stack items;
/// * a return-stack push is cached when a register is free (at most two),
///   otherwise it goes to memory; pops and top reads hit the cache;
/// * when the data stack needs a register and none is free, the deepest
///   cached return-stack item is evicted to memory.
#[derive(Debug, Clone)]
pub struct TwoStacksRegime {
    /// Accumulated counts (data-stack fields + rloads/rstores/rupdates).
    pub counts: Counts,
    registers: u8,
    /// transition tables for the minimal organization at each capacity
    /// `registers - r` (index = r)
    tables: Vec<TransitionTable>,
    /// cached data items (top of data stack); doubles as the state id in
    /// the minimal organization (states are ordered by depth)
    d: u8,
    /// cached return items (top of return stack)
    r: u8,
}

impl TwoStacksRegime {
    /// A two-stacks cache over `registers` shared registers.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is less than 3 (two return-stack slots plus
    /// at least one data slot).
    #[must_use]
    pub fn new(registers: u8) -> Self {
        assert!(registers >= 3, "at least three shared registers");
        let tables = (0..=2u8)
            .map(|r| {
                let cap = registers - r;
                TransitionTable::build(&Org::minimal(cap), &Policy::on_demand(cap))
            })
            .collect();
        TwoStacksRegime {
            counts: Counts::new(),
            registers,
            tables,
            d: 0,
            r: 0,
        }
    }

    /// Number of shared registers.
    #[must_use]
    pub fn registers(&self) -> u8 {
        self.registers
    }

    /// Data-stack items currently cached in registers.
    ///
    /// Exposed so lockstep checkers (the harness's rdepth-aware
    /// conservation invariant) can audit the cache against the true
    /// stack depths.
    #[must_use]
    pub fn cached_data(&self) -> u8 {
        self.d
    }

    /// Return-stack items currently cached in registers.
    #[must_use]
    pub fn cached_return(&self) -> u8 {
        self.r
    }

    /// Run the data-stack side of one instruction through the engine's
    /// minimal-organization tables at the current capacity, evicting
    /// cached return items when the data stack would otherwise spill.
    fn data_event(&mut self, ev: &ExecEvent) {
        let slot = sig_slot_for_event(ev);
        loop {
            let t = *self.tables[self.r as usize].get(StateId(u32::from(self.d)), slot);
            if t.overflow && self.r > 0 {
                // give the data stack the register instead of spilling
                self.r -= 1;
                self.counts.rstores += 1;
                self.counts.rupdates += 1;
                continue;
            }
            self.counts.loads += u64::from(t.loads);
            self.counts.stores += u64::from(t.stores);
            self.counts.moves += u64::from(t.moves);
            self.counts.updates += u64::from(t.updates);
            self.counts.underflows += u64::from(t.underflow);
            self.counts.overflows += u64::from(t.overflow);
            self.d = t.next.0 as u8; // minimal org: state id == depth
            break;
        }
    }

    fn rpush(&mut self, n: u8) {
        for _ in 0..n {
            if self.r < 2 && self.d + self.r < self.registers {
                self.r += 1; // cached, no traffic
            } else {
                // no free register (or the return cache is full): the new
                // item (or the displaced deepest one) goes to memory
                self.counts.rstores += 1;
            }
        }
        self.counts.rupdates += 1;
    }

    fn rpop(&mut self, n: u8, reads: u8) {
        // reads beyond the cached top items come from memory
        let cached_reads = reads.min(self.r);
        self.counts.rloads += u64::from(reads - cached_reads);
        let cached_pops = n.min(self.r);
        self.r -= cached_pops;
        self.counts.rupdates += 1;
    }
}

impl ExecObserver for TwoStacksRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        self.counts.insts += 1;
        self.counts.dispatches += 1;
        self.data_event(ev);
        // return-stack side
        if e.rnet > 0 {
            self.rpush(e.rnet as u8);
        } else if e.rnet < 0 {
            self.rpop((-e.rnet) as u8, e.rloads);
        } else if e.rloads > 0 || e.rstores > 0 {
            // reads/writes without a depth change (r@, i, j, (loop))
            let cached = e.rloads.min(self.r);
            self.counts.rloads += u64::from(e.rloads - cached);
            self.counts.rstores += u64::from(e.rstores.saturating_sub(self.r.min(1)));
        }
        if is_call(e.kind) {
            self.counts.calls += 1;
        }
    }
}

#[cfg(test)]
mod two_stacks_tests {
    use super::*;
    use stackcache_vm::{exec, Inst, Machine, ProgramBuilder};

    fn run_with<O: ExecObserver>(p: &stackcache_vm::Program, obs: &mut O) {
        let mut m = Machine::with_memory(4096);
        exec::run_with_observer(p, &mut m, 1_000_000, obs).expect("runs");
    }

    fn call_heavy_program() -> stackcache_vm::Program {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(5));
        for _ in 0..10 {
            b.call(w);
        }
        b.push(Inst::Drop);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::OnePlus);
        b.push(Inst::Return);
        b.finish().unwrap()
    }

    #[test]
    fn caches_call_return_pairs() {
        let p = call_heavy_program();
        let mut shared = TwoStacksRegime::new(4);
        let mut simple = SimpleRegime::new();
        let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut shared, &mut simple];
        run_with(&p, &mut obs);
        // calls push a return address that the matching return pops while
        // still cached: shared caching must beat the uncached baseline on
        // return-stack traffic.
        assert!(
            shared.counts.rloads + shared.counts.rstores
                < simple.counts.rloads + simple.counts.rstores,
            "shared {} vs simple {}",
            shared.counts.rloads + shared.counts.rstores,
            simple.counts.rloads + simple.counts.rstores
        );
        // and data traffic must not exceed the baseline either
        assert!(
            shared.counts.loads + shared.counts.stores
                <= simple.counts.loads + simple.counts.stores
        );
    }

    #[test]
    fn data_stack_evicts_return_items_under_pressure() {
        // fill the data cache; return items must yield
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(1));
        b.push(Inst::ToR); // cache a return item
        for i in 0..4 {
            b.push(Inst::Lit(i)); // data pressure on a 3-register file
        }
        b.push(Inst::FromR);
        b.extend([Inst::Add, Inst::Add, Inst::Add, Inst::Add]);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut shared = TwoStacksRegime::new(3);
        run_with(&p, &mut shared);
        // the cached return item was displaced to memory (one rstore) and
        // read back (one rload)
        assert!(shared.counts.rstores >= 1);
        assert!(shared.counts.rloads >= 1);
    }

    #[test]
    fn never_worse_than_uncached_on_workload_like_mix() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(6));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Drop);
        b.loop_inc(top);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let mut shared = TwoStacksRegime::new(4);
        let mut simple = SimpleRegime::new();
        let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut shared, &mut simple];
        run_with(&p, &mut obs);
        let model = crate::CostModel::paper();
        let total = |c: &Counts| c.access_cycles(&model) + c.rloads + c.rstores;
        assert!(total(&shared.counts) <= total(&simple.counts));
    }
}

/// Section 6 counting under superinstruction fusion: the full dynamic
/// stack-caching accounting of [`CachedRegime`], with `dispatches`
/// counted per *fused group* instead of per instruction.
///
/// Fusion leaves the program text (and therefore every per-instruction
/// cache transition) unchanged — only the dispatch count collapses. This
/// regime models that exactly: it replays the reference interpreter's
/// event stream through an inner [`CachedRegime`] and cancels the
/// dispatch increment for every instruction that executes as the
/// continuation of a fused group, mirroring the group loop in
/// `stackcache_vm::fusion::run_fused`. With `quicken` set it instead
/// mirrors `run_quickened`: the first visit to each fused site dispatches
/// per instruction (the site is still rewriting itself), later visits
/// dispatch per group.
#[derive(Debug, Clone)]
pub struct FusedRegime {
    inner: CachedRegime,
    group_len: Vec<u8>,
    quicken: bool,
    /// per-site: has this fused site executed (and thus quickened) yet?
    warm: Vec<bool>,
    /// continuation instructions left in the currently dispatched group
    remaining: u8,
    /// ip the next continuation must have (groups are straight-line)
    expected_ip: usize,
}

impl FusedRegime {
    /// Count `fused`'s dispatch collapse over `org` with the given
    /// overflow followup depth. `quicken` selects the quickening model
    /// (first visit per site dispatches unfused).
    #[must_use]
    pub fn new(
        fused: &stackcache_vm::FusedProgram,
        org: &Org,
        overflow_depth: u8,
        quicken: bool,
    ) -> Self {
        let group_len = fused.group_len().to_vec();
        let warm = vec![false; group_len.len()];
        FusedRegime {
            inner: CachedRegime::new(org, overflow_depth),
            group_len,
            quicken,
            warm,
            remaining: 0,
            expected_ip: 0,
        }
    }

    /// The accumulated counts (`dispatches` is per fused group; every
    /// other field is identical to the unfused [`CachedRegime`]).
    #[must_use]
    pub fn counts(&self) -> &Counts {
        &self.inner.counts
    }

    /// Whether this regime models quickening (first visit unfused).
    #[must_use]
    pub fn quicken(&self) -> bool {
        self.quicken
    }

    /// Fused sites visited (and therefore quickened) so far.
    #[must_use]
    pub fn warm_sites(&self) -> usize {
        self.warm
            .iter()
            .zip(&self.group_len)
            .filter(|(&w, &l)| w && l > 1)
            .count()
    }

    /// Reset the cache state and group tracking (e.g. between
    /// workloads); quickening warmth persists, like the real dispatch
    /// map.
    pub fn reset_state(&mut self) {
        self.inner.reset_state();
        self.remaining = 0;
        self.expected_ip = 0;
    }
}

impl ExecObserver for FusedRegime {
    fn event(&mut self, ev: &ExecEvent) {
        self.inner.event(ev);
        if self.remaining > 0 && ev.ip == self.expected_ip {
            // continuation of the dispatched group: no handler dispatch
            self.inner.counts.dispatches -= 1;
            self.remaining -= 1;
            self.expected_ip += 1;
            return;
        }
        // a dispatch: how much of a group does this one handler cover?
        let mut glen = self.group_len.get(ev.ip).copied().unwrap_or(1);
        if self.quicken {
            if let Some(w) = self.warm.get_mut(ev.ip) {
                if !*w {
                    *w = true;
                    glen = 1; // first visit runs unfused while it quickens
                }
            }
        }
        self.remaining = glen.saturating_sub(1);
        self.expected_ip = ev.ip + 1;
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use stackcache_vm::fusion::{fuse, run_fused, run_quickened, FusionPlan, Quickened};
    use stackcache_vm::{exec, Inst, Machine, ProgramBuilder};

    fn fused_loop_program() -> stackcache_vm::Program {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(20));
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::OneMinus);
        b.push(Inst::Dup);
        b.push(Inst::ZeroEq);
        b.branch_if_zero(top);
        b.push(Inst::Drop);
        b.push(Inst::Halt);
        b.finish().unwrap()
    }

    fn body_plan() -> FusionPlan {
        let seq: Vec<u8> = [Inst::OneMinus, Inst::Dup, Inst::ZeroEq]
            .iter()
            .map(Inst::opcode)
            .collect();
        FusionPlan::from_hot_sequences(&[(seq, 20)], 4)
    }

    #[test]
    fn dispatch_count_matches_the_fused_executor() {
        let p = fused_loop_program();
        let fused = fuse(&p, &body_plan());
        let org = Org::minimal(2);
        let mut regime = FusedRegime::new(&fused, &org, 2, false);
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1_000_000, &mut regime).unwrap();

        let mut m2 = Machine::with_memory(64);
        let stats = run_fused(&fused, &mut m2, 1_000_000).unwrap();
        assert_eq!(regime.counts().insts, stats.executed);
        assert_eq!(regime.counts().dispatches, stats.dispatches);
        assert!(stats.dispatches < stats.executed);
    }

    #[test]
    fn quicken_model_matches_the_quickened_executor() {
        let p = fused_loop_program();
        let fused = fuse(&p, &body_plan());
        let org = Org::minimal(2);
        let mut regime = FusedRegime::new(&fused, &org, 2, true);
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1_000_000, &mut regime).unwrap();

        let quick = Quickened::new(fuse(&p, &body_plan()));
        let mut m2 = Machine::with_memory(64);
        let stats = run_quickened(&quick, &mut m2, 1_000_000).unwrap();
        assert_eq!(regime.counts().dispatches, stats.dispatches);
        assert_eq!(regime.warm_sites(), quick.quickened_sites());
    }

    #[test]
    fn every_other_count_is_unchanged_by_fusion() {
        let p = fused_loop_program();
        let fused = fuse(&p, &body_plan());
        let org = Org::minimal(2);
        let mut plain = CachedRegime::new(&org, 2);
        let mut under_fusion = FusedRegime::new(&fused, &org, 2, false);
        let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut plain, &mut under_fusion];
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1_000_000, &mut obs).unwrap();

        let (a, b) = (&plain.counts, under_fusion.counts());
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.stores, b.stores);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.overflows, b.overflows);
        assert_eq!(a.underflows, b.underflows);
        assert_eq!(a.rloads, b.rloads);
        assert_eq!(a.rstores, b.rstores);
        assert_eq!(a.calls, b.calls);
        assert!(b.dispatches < a.dispatches);
    }
}

/// Prefetching stack cache (Section 3.6): on-demand caching over the
/// minimal organization, but states with fewer than `min_items` cached
/// are forbidden — the cache eagerly refills from memory after popping
/// below the threshold.
///
/// The paper notes this trades slightly higher memory traffic (useless
/// prefetches before pushes, extra spills on overflow) for the
/// latency-hiding benefit of having operands loaded early; only the
/// traffic side is measurable in this cost model.
#[derive(Debug, Clone)]
pub struct PrefetchRegime {
    /// Accumulated counts.
    pub counts: Counts,
    registers: u8,
    min_items: u8,
    org: Org,
    policy: Policy,
    sigs: Vec<OpSig>,
    state: StateId,
    /// true data-stack depth (tracked from events)
    depth: u64,
    memo: HashMap<(StateId, usize, u8), crate::engine::Trans>,
}

impl PrefetchRegime {
    /// Prefetch at least `min_items` of `registers` cache registers.
    ///
    /// # Panics
    ///
    /// Panics if `min_items > registers` or `registers` is zero.
    #[must_use]
    pub fn new(registers: u8, min_items: u8) -> Self {
        assert!(registers >= 1, "at least one register");
        assert!(
            min_items <= registers,
            "cannot prefetch past the register file"
        );
        let org = Org::minimal(registers);
        PrefetchRegime {
            counts: Counts::new(),
            registers,
            min_items,
            state: org.canonical_of_depth(0).expect("empty state"),
            org,
            policy: Policy::prefetch(min_items, registers),
            sigs: sig_slots(),
            depth: 0,
            memo: HashMap::new(),
        }
    }

    /// The prefetch threshold.
    #[must_use]
    pub fn min_items(&self) -> u8 {
        self.min_items
    }

    /// Number of cache registers.
    #[must_use]
    pub fn registers(&self) -> u8 {
        self.registers
    }
}

impl ExecObserver for PrefetchRegime {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        c.insts += 1;
        c.dispatches += 1;
        let slot = sig_slot_for_event(ev);
        let cached = u64::from(self.org.state(self.state).depth());
        let deeper = self.depth.saturating_sub(cached);
        let deeper_clamped = deeper.min(u64::from(self.registers) + 8) as u8;
        let key = (self.state, slot, deeper_clamped);
        let t = match self.memo.get(&key) {
            Some(t) => *t,
            None => {
                let t = compute_transition(
                    &self.org,
                    &self.policy,
                    self.state,
                    &self.sigs[slot],
                    deeper_clamped,
                );
                self.memo.insert(key, t);
                t
            }
        };
        c.loads += u64::from(t.loads);
        c.stores += u64::from(t.stores);
        c.moves += u64::from(t.moves);
        c.updates += u64::from(t.updates);
        c.underflows += u64::from(t.underflow);
        c.overflows += u64::from(t.overflow);
        self.state = t.next;
        self.depth = (self.depth as i64 + i64::from(e.pushes) - i64::from(e.pops)) as u64;
        c.rloads += u64::from(e.rloads);
        c.rstores += u64::from(e.rstores);
        if e.rnet != 0 {
            c.rupdates += 1;
        }
        if is_call(e.kind) {
            c.calls += 1;
        }
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use stackcache_vm::{exec, program_of, Inst, Machine};

    fn run_all(insts: &[Inst]) -> (Counts, Counts, Counts) {
        let p = program_of(insts);
        let org = Org::minimal(4);
        let mut on_demand = CachedRegime::new(&org, 4);
        let mut pf0 = PrefetchRegime::new(4, 0);
        let mut pf2 = PrefetchRegime::new(4, 2);
        let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut on_demand, &mut pf0, &mut pf2];
        let mut m = Machine::with_memory(4096);
        m.push(1);
        m.push(2);
        m.push(3);
        m.push(4);
        exec::run_with_observer(&p, &mut m, 1_000_000, &mut obs).expect("runs");
        (on_demand.counts, pf0.counts, pf2.counts)
    }

    #[test]
    fn prefetch_zero_equals_on_demand() {
        let (od, pf0, _) = run_all(&[
            Inst::Add,
            Inst::Lit(7),
            Inst::Mul,
            Inst::Drop,
            Inst::Swap,
            Inst::Sub,
        ]);
        assert_eq!(od, pf0);
    }

    #[test]
    fn prefetch_loads_eagerly() {
        // popping below the threshold triggers refills even before any
        // instruction needs the items
        let (od, _, pf2) = run_all(&[Inst::Add, Inst::Drop, Inst::Drop]);
        assert!(
            pf2.loads > od.loads,
            "prefetch {} vs on-demand {}",
            pf2.loads,
            od.loads
        );
        // but later consumers then find their operands cached: underflows
        // cannot be more frequent than on demand
        assert!(pf2.underflows <= od.underflows);
    }

    #[test]
    fn prefetch_traffic_is_never_below_on_demand() {
        let (od, _, pf2) = run_all(&[
            Inst::Add,
            Inst::Add,
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Swap,
            Inst::Drop,
            Inst::Drop,
            Inst::Add,
        ]);
        assert!(pf2.loads + pf2.stores >= od.loads + od.stores);
    }
}
