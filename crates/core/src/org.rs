//! Cache organizations: the allowed sets of cache states (Section 3, Fig. 18).
//!
//! An *organization* fixes the finite set of cache states an interpreter or
//! compiler may use, for a given number of cache registers. The paper
//! discusses six (Fig. 18); all are provided here as constructors on
//! [`Org`], and the unit tests reproduce the Fig. 18 state counts exactly.
//!
//! | organization | states (n registers) |
//! |---|---|
//! | [`Org::minimal`] | `n + 1` |
//! | [`Org::overflow_opt`] | `n² + 1` |
//! | [`Org::arbitrary_shuffles`] | `Σ_{i=0..n} n!/i!` |
//! | [`Org::n_plus_one`] | `Σ_{d=0..n+1} n^d` |
//! | [`Org::one_dup`] | `n(n+1)(n+2)/6 + n + 1` |
//! | [`Org::two_stacks`] | `3n` |
//!
//! (The printed formula for *one duplication* in the ACM scan is garbled;
//! the closed form above reproduces the paper's table row
//! `3 7 14 25 41 63 92 129` exactly.)

use std::collections::HashMap;

use crate::state::{CacheState, Reg, StateId};

/// A cache organization: a named, enumerated set of [`CacheState`]s over a
/// fixed number of registers.
///
/// # Examples
///
/// ```
/// use stackcache_core::Org;
///
/// let org = Org::minimal(4);
/// assert_eq!(org.state_count(), 5);
/// assert_eq!(org.registers(), 4);
///
/// // Fig. 18, row "one duplication", 8 registers:
/// assert_eq!(Org::one_dup(8).state_count(), 129);
/// ```
#[derive(Debug, Clone)]
pub struct Org {
    name: String,
    registers: u8,
    states: Vec<CacheState>,
    index: HashMap<CacheState, StateId>,
    by_depth: Vec<Vec<StateId>>,
}

impl Org {
    fn build(name: String, registers: u8, mut states: Vec<CacheState>) -> Self {
        states.sort();
        states.dedup();
        // Stable, readable ordering: by depth, then lexicographic word.
        states.sort_by(|a, b| {
            (a.depth(), a.rdepth(), a.word()).cmp(&(b.depth(), b.rdepth(), b.word()))
        });
        let mut index = HashMap::with_capacity(states.len());
        let max_depth = states.iter().map(|s| s.depth() as usize).max().unwrap_or(0);
        let mut by_depth = vec![Vec::new(); max_depth + 1];
        for (i, s) in states.iter().enumerate() {
            let id = StateId(i as u32);
            index.insert(s.clone(), id);
            by_depth[s.depth() as usize].push(id);
        }
        Org {
            name,
            registers,
            states,
            index,
            by_depth,
        }
    }

    /// The *minimal* organization: one state per number of cached items,
    /// canonical register assignment (Section 3.2).
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 32.
    #[must_use]
    pub fn minimal(registers: u8) -> Self {
        assert!((1..=32).contains(&registers), "1..=32 registers supported");
        let states = (0..=registers).map(CacheState::canonical).collect();
        Org::build(format!("minimal({registers})"), registers, states)
    }

    /// Minimal organization extended so overflow never moves registers:
    /// the bottom of the cache may start at any register, wrapping around
    /// (Section 3.3, "overflow move optimization").
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 32.
    #[must_use]
    pub fn overflow_opt(registers: u8) -> Self {
        assert!((1..=32).contains(&registers), "1..=32 registers supported");
        let n = registers;
        let mut states = vec![CacheState::empty()];
        for d in 1..=n {
            for start in 0..n {
                let word: Vec<Reg> = (0..d).map(|i| Reg((start + i) % n)).collect();
                states.push(CacheState::from_word(word));
            }
        }
        Org::build(format!("overflow-opt({n})"), n, states)
    }

    /// All injective assignments of distinct stack items to registers:
    /// stack-shuffling instructions never cost a move (Section 3.4,
    /// "arbitrary shuffles").
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 8 (the state count grows
    /// as `Σ n!/i!`).
    #[must_use]
    pub fn arbitrary_shuffles(registers: u8) -> Self {
        assert!((1..=8).contains(&registers), "1..=8 registers supported");
        let n = registers;
        let mut states = Vec::new();
        // Enumerate injective words of each length 0..=n.
        fn rec(n: u8, word: &mut Vec<Reg>, used: &mut Vec<bool>, out: &mut Vec<CacheState>) {
            out.push(CacheState::from_word(word.clone()));
            if word.len() == n as usize {
                return;
            }
            for r in 0..n {
                if !used[r as usize] {
                    used[r as usize] = true;
                    word.push(Reg(r));
                    rec(n, word, used, out);
                    word.pop();
                    used[r as usize] = false;
                }
            }
        }
        rec(
            n,
            &mut Vec::new(),
            &mut vec![false; n as usize],
            &mut states,
        );
        Org::build(format!("arbitrary-shuffles({n})"), n, states)
    }

    /// Up to `n + 1` stack items in `n` registers, in any order and with
    /// any duplication (Section 3.5, "n + 1 stack items").
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 6 (the state count grows
    /// as `Σ n^d`).
    #[must_use]
    pub fn n_plus_one(registers: u8) -> Self {
        assert!((1..=6).contains(&registers), "1..=6 registers supported");
        let n = registers;
        let mut states = Vec::new();
        // All words of length 0..=n+1 over n registers.
        let mut stack: Vec<Vec<Reg>> = vec![Vec::new()];
        while let Some(word) = stack.pop() {
            states.push(CacheState::from_word(word.clone()));
            if word.len() < (n as usize) + 1 {
                for r in 0..n {
                    let mut w = word.clone();
                    w.push(Reg(r));
                    stack.push(w);
                }
            }
        }
        Org::build(format!("n-plus-one({n})"), n, states)
    }

    /// The minimal organization extended with states representing one
    /// duplication of a cached stack item (Section 3.4/3.5, Fig. 17).
    ///
    /// A duplication state is a canonical word `r0 .. r(k-1)` with one
    /// extra occurrence of some `r_i` inserted above its original
    /// position. State count: `n(n+1)(n+2)/6 + n + 1`, matching Fig. 18.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 32.
    #[must_use]
    pub fn one_dup(registers: u8) -> Self {
        assert!((1..=32).contains(&registers), "1..=32 registers supported");
        let n = registers;
        let mut states: Vec<CacheState> = (0..=n).map(CacheState::canonical).collect();
        for k in 1..=n {
            // canonical word of k distinct registers + one duplicate of r_i
            // inserted at position p, i < p <= k.
            for i in 0..k {
                for p in (i + 1)..=k {
                    let mut word: Vec<Reg> = (0..k).map(Reg).collect();
                    word.insert(p as usize, Reg(i));
                    states.push(CacheState::from_word(word));
                }
            }
        }
        Org::build(format!("one-dup({n})"), n, states)
    }

    /// Minimal data-stack caching combined with caching up to two items of
    /// the return stack in the same register file (Section 3.4,
    /// "two stacks"). Return-stack items occupy the top registers.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 32.
    #[must_use]
    pub fn two_stacks(registers: u8) -> Self {
        assert!((1..=32).contains(&registers), "1..=32 registers supported");
        let n = registers;
        let mut states = Vec::new();
        for r in 0..=2u8.min(n) {
            for d in 0..=(n - r) {
                states.push(CacheState::canonical(d).with_rdepth(r));
            }
        }
        Org::build(format!("two-stacks({n})"), n, states)
    }

    /// The organization used for the paper's static-caching measurements
    /// (Section 6): the minimal organization plus every state reachable by
    /// applying one stack-manipulation word to a minimal state when its
    /// arguments are already in registers.
    ///
    /// Concretely: all words obtained from a canonical word by applying one
    /// of the shuffle permutations of the instruction set to its top slots.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is 0 or greater than 16.
    #[must_use]
    pub fn static_shuffle(registers: u8) -> Self {
        assert!((1..=16).contains(&registers), "1..=16 registers supported");
        let n = registers;
        let mut states: Vec<CacheState> = (0..=n).map(CacheState::canonical).collect();
        for inst in stackcache_vm::Inst::all() {
            let eff = inst.effect();
            if let stackcache_vm::EffectKind::Shuffle(perm) = eff.kind {
                let x = eff.pops;
                for d in x..=n {
                    let base: Vec<Reg> = (0..d).map(Reg).collect();
                    let keep = (d - x) as usize;
                    let mut word: Vec<Reg> = base[..keep].to_vec();
                    for &src in perm {
                        word.push(base[keep + src as usize]);
                    }
                    if word.len() <= n as usize + 1 {
                        states.push(CacheState::from_word(word));
                    }
                }
            }
        }
        Org::build(format!("static-shuffle({n})"), n, states)
    }

    /// The organization's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cache registers.
    #[must_use]
    pub fn registers(&self) -> u8 {
        self.registers
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// All states, ordered by depth then word.
    #[must_use]
    pub fn states(&self) -> &[CacheState] {
        &self.states
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn state(&self, id: StateId) -> &CacheState {
        &self.states[id.index()]
    }

    /// Look up a state's id.
    #[must_use]
    pub fn lookup(&self, state: &CacheState) -> Option<StateId> {
        self.index.get(state).copied()
    }

    /// Ids of all states with the given cached depth.
    #[must_use]
    pub fn states_of_depth(&self, depth: u8) -> &[StateId] {
        self.by_depth
            .get(depth as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Greatest cached depth any state supports.
    #[must_use]
    pub fn max_depth(&self) -> u8 {
        (self.by_depth.len() - 1) as u8
    }

    /// The canonical state of the given depth, if this organization has it.
    #[must_use]
    pub fn canonical_of_depth(&self, depth: u8) -> Option<StateId> {
        self.lookup(&CacheState::canonical(depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 18: number of cache states per organization and register count.
    #[test]
    fn fig18_minimal() {
        for (n, want) in [
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
        ] {
            assert_eq!(Org::minimal(n).state_count(), want, "minimal({n})");
        }
    }

    #[test]
    fn fig18_overflow_opt() {
        for (n, want) in [
            (1, 2),
            (2, 5),
            (3, 10),
            (4, 17),
            (5, 26),
            (6, 37),
            (7, 50),
            (8, 65),
        ] {
            assert_eq!(
                Org::overflow_opt(n).state_count(),
                want,
                "overflow-opt({n})"
            );
        }
    }

    #[test]
    fn fig18_arbitrary_shuffles() {
        for (n, want) in [
            (1, 2),
            (2, 5),
            (3, 16),
            (4, 65),
            (5, 326),
            (6, 1957),
            (7, 13700),
            (8, 109_601),
        ] {
            assert_eq!(
                Org::arbitrary_shuffles(n).state_count(),
                want,
                "shuffles({n})"
            );
        }
    }

    #[test]
    fn fig18_n_plus_one() {
        for (n, want) in [(1, 3), (2, 15), (3, 121), (4, 1365), (5, 19_531)] {
            assert_eq!(Org::n_plus_one(n).state_count(), want, "n-plus-one({n})");
        }
        // Fig. 18 prints 1,356 for n=4 and 6,725,601/153,391,689 beyond; the
        // printed 1,356 is inconsistent with the generating rule (words of
        // length <= n+1 over n registers, a geometric sum): for n=4 the sum
        // 1+4+16+64+256+1024 = 1365. n in {1,2,3,5} match the paper exactly,
        // so we take 1,356 to be a typo for 1,365.
    }

    #[test]
    fn fig18_one_dup() {
        for (n, want) in [
            (1, 3),
            (2, 7),
            (3, 14),
            (4, 25),
            (5, 41),
            (6, 63),
            (7, 92),
            (8, 129),
        ] {
            assert_eq!(Org::one_dup(n).state_count(), want, "one-dup({n})");
        }
        // closed form
        for n in 1..=8u32 {
            let want = n * (n + 1) * (n + 2) / 6 + n + 1;
            assert_eq!(Org::one_dup(n as u8).state_count(), want as usize);
        }
    }

    #[test]
    fn fig18_two_stacks() {
        for (n, want) in [
            (1, 3),
            (2, 6),
            (3, 9),
            (4, 12),
            (5, 15),
            (6, 18),
            (7, 21),
            (8, 24),
        ] {
            assert_eq!(Org::two_stacks(n).state_count(), want, "two-stacks({n})");
        }
    }

    #[test]
    fn states_are_within_register_budget() {
        for org in [
            Org::minimal(4),
            Org::overflow_opt(4),
            Org::arbitrary_shuffles(4),
            Org::n_plus_one(4),
            Org::one_dup(4),
            Org::two_stacks(4),
            Org::static_shuffle(4),
        ] {
            for s in org.states() {
                assert!(
                    s.regs_used() <= org.registers(),
                    "{}: state {s} uses too many registers",
                    org.name()
                );
                for r in s.word() {
                    assert!(
                        r.0 < org.registers(),
                        "{}: register out of range in {s}",
                        org.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_roundtrips() {
        for org in [
            Org::minimal(5),
            Org::one_dup(4),
            Org::overflow_opt(3),
            Org::static_shuffle(4),
        ] {
            for (i, s) in org.states().iter().enumerate() {
                assert_eq!(org.lookup(s), Some(StateId(i as u32)), "{}", org.name());
                assert_eq!(org.state(StateId(i as u32)), s);
            }
            assert_eq!(
                org.lookup(&CacheState::from_regs(&[7, 7, 7, 7, 7, 7, 7])),
                None
            );
        }
    }

    #[test]
    fn states_of_depth_partitions_states() {
        for org in [
            Org::minimal(5),
            Org::one_dup(4),
            Org::n_plus_one(3),
            Org::static_shuffle(5),
        ] {
            let total: usize = (0..=org.max_depth())
                .map(|d| org.states_of_depth(d).len())
                .sum();
            assert_eq!(total, org.state_count(), "{}", org.name());
            for d in 0..=org.max_depth() {
                for &id in org.states_of_depth(d) {
                    assert_eq!(org.state(id).depth(), d);
                }
            }
        }
    }

    #[test]
    fn canonical_of_depth_exists_in_all_orgs() {
        for org in [
            Org::minimal(4),
            Org::overflow_opt(4),
            Org::arbitrary_shuffles(4),
            Org::n_plus_one(4),
            Org::one_dup(4),
            Org::two_stacks(4),
            Org::static_shuffle(4),
        ] {
            for d in 0..=org.registers() {
                assert!(
                    org.canonical_of_depth(d).is_some(),
                    "{} lacks canonical depth {d}",
                    org.name()
                );
            }
        }
    }

    #[test]
    fn one_dup_contains_fig17_like_states() {
        // With 2 registers: minimal states plus [r0 r0], [r0 r1 r0], [r0 r1 r1], [r0 r0 r1]
        let org = Org::one_dup(2);
        assert_eq!(org.state_count(), 7);
        assert!(org.lookup(&CacheState::from_regs(&[0, 0])).is_some());
        assert!(org.lookup(&CacheState::from_regs(&[0, 1, 0])).is_some());
        assert!(org.lookup(&CacheState::from_regs(&[0, 1, 1])).is_some());
        assert!(org.lookup(&CacheState::from_regs(&[0, 0, 1])).is_some());
        // but not arbitrary shuffles:
        assert!(org.lookup(&CacheState::from_regs(&[1, 0])).is_none());
    }

    #[test]
    fn static_shuffle_contains_swap_results() {
        let org = Org::static_shuffle(3);
        // swap applied to canonical depth 2: [r1 r0]
        assert!(org.lookup(&CacheState::from_regs(&[1, 0])).is_some());
        // rot applied to canonical depth 3: [r1 r2 r0]
        assert!(org.lookup(&CacheState::from_regs(&[1, 2, 0])).is_some());
        // dup applied to canonical depth 1: [r0 r0]
        assert!(org.lookup(&CacheState::from_regs(&[0, 0])).is_some());
        // over applied to depth 2: [r0 r1 r0]
        assert!(org.lookup(&CacheState::from_regs(&[0, 1, 0])).is_some());
    }

    #[test]
    fn two_stacks_respects_budget() {
        let org = Org::two_stacks(2);
        // (d, r): (0,0) (1,0) (2,0) (0,1) (1,1) (0,2) = 6 states
        assert_eq!(org.state_count(), 6);
        assert!(org
            .lookup(&CacheState::canonical(2).with_rdepth(0))
            .is_some());
        assert!(org
            .lookup(&CacheState::canonical(2).with_rdepth(1))
            .is_none());
    }
}
