//! Compiled-artifact handles: translate a program once, execute it many
//! times.
//!
//! Static stack caching (and peephole optimization) are *compile* steps
//! whose cost is amortized across executions. A [`CompiledArtifact`]
//! packages the result of that translation for one
//! ([`EngineRegime`], peephole) configuration behind cheap `Arc` clones,
//! so a serving layer can cache it, share it across worker threads, and
//! run it on fresh machines without recompiling.

use std::sync::Arc;

use stackcache_vm::fusion::{
    fuse, run_fused_with_checks, run_quickened_with_checks, FusedProgram, FusionPlan, Quickened,
    DEFAULT_TOP_K,
};
use stackcache_vm::interp::{run_baseline_with_checks, run_tos_with_checks};
use stackcache_vm::{exec, peephole, Checks, ExecObserver, Machine, Program, VmError};

use crate::interp::{
    compile_static, run_dyncache_with_checks, run_staticcache_with_checks, StaticExecutable,
};

/// A wall-clock execution regime: which interpreter runs the program.
///
/// This mirrors the engine ladder the paper measures (and the harness
/// cross-validates): the checked reference interpreter, the baseline and
/// top-of-stack interpreters, the dynamically stack-cached interpreter,
/// and the statically cached interpreter at each canonical depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineRegime {
    /// The checked reference interpreter (`stackcache_vm::exec`).
    Reference,
    /// The uncached baseline interpreter (Fig. 11).
    Baseline,
    /// The constant top-of-stack interpreter (Fig. 12).
    Tos,
    /// The dynamically stack-cached interpreter (Section 4).
    Dyncache,
    /// The statically stack-cached interpreter at canonical depth
    /// `0..=3` (Section 5).
    Static(u8),
    /// The superinstruction interpreter: one dispatch per fused group,
    /// under a plan derived statically or from a profile (ISSUE 6).
    Fused,
    /// The quickening interpreter: starts unfused and rewrites its
    /// dispatch map in place after first execution of each hot site.
    Quickened,
    /// The template JIT: per-block native code with static cache states
    /// held in machine registers, deoptimizing to the interpreter on any
    /// guard (ISSUE 10). Degrades to the baseline interpreter on hosts
    /// without an x86-64 native backend.
    Jit,
}

impl EngineRegime {
    /// Every regime, in ladder order: the eight engines of the paper's
    /// wall-clock comparison, the two superinstruction tiers, and the
    /// template-JIT native tier.
    pub const ALL: [EngineRegime; 11] = [
        EngineRegime::Reference,
        EngineRegime::Baseline,
        EngineRegime::Tos,
        EngineRegime::Dyncache,
        EngineRegime::Static(0),
        EngineRegime::Static(1),
        EngineRegime::Static(2),
        EngineRegime::Static(3),
        EngineRegime::Fused,
        EngineRegime::Quickened,
        EngineRegime::Jit,
    ];

    /// A dense index in `0..EngineRegime::ALL.len()` (metrics slots).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EngineRegime::Reference => 0,
            EngineRegime::Baseline => 1,
            EngineRegime::Tos => 2,
            EngineRegime::Dyncache => 3,
            EngineRegime::Static(c) => 4 + usize::from(c.min(3)),
            EngineRegime::Fused => 8,
            EngineRegime::Quickened => 9,
            EngineRegime::Jit => 10,
        }
    }

    /// Display name, e.g. `"static(c=2)"`.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            EngineRegime::Reference => "reference".to_string(),
            EngineRegime::Baseline => "baseline".to_string(),
            EngineRegime::Tos => "tos".to_string(),
            EngineRegime::Dyncache => "dyncache".to_string(),
            EngineRegime::Static(c) => format!("static(c={c})"),
            EngineRegime::Fused => "fused".to_string(),
            EngineRegime::Quickened => "quickened".to_string(),
            EngineRegime::Jit => "jit".to_string(),
        }
    }

    /// Whether this regime supports mid-run cooperative cancellation
    /// (only the reference interpreter takes an observer).
    #[must_use]
    pub fn cancellable(self) -> bool {
        matches!(self, EngineRegime::Reference)
    }
}

/// The translate-once result for one `(program, regime, peephole)`
/// configuration: the (optionally peephole-optimized) program plus, for
/// static regimes, the statically compiled executable.
///
/// Cloning is cheap (`Arc` all the way down); a sharded cache of these is
/// what lets static-cache codegen run once per program rather than once
/// per request.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    regime: EngineRegime,
    peephole: bool,
    program: Arc<Program>,
    exe: Option<Arc<StaticExecutable>>,
    fused: Option<Arc<FusedProgram>>,
    quick: Option<Arc<Quickened>>,
}

impl CompiledArtifact {
    /// Translate `program` for `regime`, peephole-optimizing first when
    /// `peephole` is set. This is the expensive step a cache amortizes.
    ///
    /// The fused and quickened regimes derive their fusion plan
    /// statically ([`FusionPlan::static_default`]) here; use
    /// [`compile_with_plan`](CompiledArtifact::compile_with_plan) to
    /// supply a profile-guided plan instead.
    #[must_use]
    pub fn compile(program: &Program, regime: EngineRegime, peephole: bool) -> Self {
        CompiledArtifact::compile_with_plan(program, regime, peephole, None)
    }

    /// [`compile`](CompiledArtifact::compile) with an explicit fusion
    /// plan for the fused/quickened regimes (ignored by the others).
    /// `None` falls back to the deterministic static-default plan, so
    /// identical inputs always produce identical artifacts.
    #[must_use]
    pub fn compile_with_plan(
        program: &Program,
        regime: EngineRegime,
        peephole: bool,
        plan: Option<&FusionPlan>,
    ) -> Self {
        let program = if peephole {
            Arc::new(peephole::optimize(program).0)
        } else {
            Arc::new(program.clone())
        };
        let exe = match regime {
            EngineRegime::Static(c) => Some(Arc::new(compile_static(&program, c))),
            _ => None,
        };
        // fusion plans apply to the program as executed (post-peephole)
        let fuse_now = || match plan {
            Some(plan) => fuse(&program, plan),
            None => fuse(
                &program,
                &FusionPlan::static_default(&program, DEFAULT_TOP_K),
            ),
        };
        let (fused, quick) = match regime {
            EngineRegime::Fused => (Some(Arc::new(fuse_now())), None),
            EngineRegime::Quickened => (None, Some(Arc::new(Quickened::new(fuse_now())))),
            _ => (None, None),
        };
        CompiledArtifact {
            regime,
            peephole,
            program,
            exe,
            fused,
            quick,
        }
    }

    /// The fused dispatch map, for [`EngineRegime::Fused`] artifacts.
    #[must_use]
    pub fn fused(&self) -> Option<&Arc<FusedProgram>> {
        self.fused.as_ref()
    }

    /// The quickening state, for [`EngineRegime::Quickened`] artifacts.
    /// Shared across clones: quickening performed by one execution
    /// persists for every holder of the artifact.
    #[must_use]
    pub fn quickened(&self) -> Option<&Arc<Quickened>> {
        self.quick.as_ref()
    }

    /// The regime this artifact was compiled for.
    #[must_use]
    pub fn regime(&self) -> EngineRegime {
        self.regime
    }

    /// Whether the program was peephole-optimized before translation.
    #[must_use]
    pub fn peephole(&self) -> bool {
        self.peephole
    }

    /// The (possibly optimized) program this artifact executes.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Execute on `machine` with an instruction budget.
    ///
    /// Returns the number of dispatched instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap.
    pub fn run(&self, machine: &mut Machine, fuel: u64) -> Result<u64, VmError> {
        self.run_observed_with_checks(machine, fuel, &mut (), Checks::Full)
    }

    /// [`run`](CompiledArtifact::run) at a selectable [`Checks`] level.
    ///
    /// Levels above [`Checks::Full`] are sound only for programs whose
    /// depth bounds were proven by static analysis; see [`Checks`].
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap the chosen level still
    /// detects.
    pub fn run_with_checks(
        &self,
        machine: &mut Machine,
        fuel: u64,
        checks: Checks,
    ) -> Result<u64, VmError> {
        self.run_observed_with_checks(machine, fuel, &mut (), checks)
    }

    /// Execute on `machine`, delivering events to `observer` and honouring
    /// its [`poll_cancel`](ExecObserver::poll_cancel) hook.
    ///
    /// Only the reference regime executes under an observer; the
    /// wall-clock regimes run uninstrumented (the observer is ignored) —
    /// bound those with `fuel` instead.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap (including
    /// [`VmError::Cancelled`] when the observer cancels a reference run).
    pub fn run_observed<O: ExecObserver + ?Sized>(
        &self,
        machine: &mut Machine,
        fuel: u64,
        observer: &mut O,
    ) -> Result<u64, VmError> {
        self.run_observed_with_checks(machine, fuel, observer, Checks::Full)
    }

    /// [`run_observed`](CompiledArtifact::run_observed) at a selectable
    /// [`Checks`] level.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime trap the chosen level still
    /// detects (including [`VmError::Cancelled`] on reference runs).
    pub fn run_observed_with_checks<O: ExecObserver + ?Sized>(
        &self,
        machine: &mut Machine,
        fuel: u64,
        observer: &mut O,
        checks: Checks,
    ) -> Result<u64, VmError> {
        match self.regime {
            EngineRegime::Reference => {
                exec::run_with_observer_checks(&self.program, machine, fuel, observer, checks)
                    .map(|o| o.executed)
            }
            EngineRegime::Baseline => {
                run_baseline_with_checks(&self.program, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Tos => {
                run_tos_with_checks(&self.program, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Dyncache => {
                run_dyncache_with_checks(&self.program, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Static(_) => {
                let exe = self.exe.as_ref().expect("static artifacts carry an exe");
                run_staticcache_with_checks(exe, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Fused => {
                let fp = self.fused.as_ref().expect("fused artifacts carry a map");
                run_fused_with_checks(fp, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Quickened => {
                let q = self
                    .quick
                    .as_ref()
                    .expect("quickened artifacts carry state");
                run_quickened_with_checks(q, machine, fuel, checks).map(|s| s.executed)
            }
            EngineRegime::Jit => {
                stackcache_jit::run_jit_with_checks(&self.program, machine, fuel, checks)
                    .map(|s| s.executed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::{program_of, Inst};

    fn square_program() -> Program {
        program_of(&[
            Inst::Lit(6),
            Inst::Dup,
            Inst::Mul,
            Inst::Lit(1),
            Inst::Drop,
            Inst::Dot,
            Inst::Halt,
        ])
    }

    #[test]
    fn every_regime_agrees_through_the_artifact() {
        let p = square_program();
        for peephole in [false, true] {
            for regime in EngineRegime::ALL {
                let a = CompiledArtifact::compile(&p, regime, peephole);
                let mut m = Machine::with_memory(256);
                a.run(&mut m, 1_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", regime.name()));
                assert_eq!(m.output_string(), "36 ", "{}", regime.name());
                assert!(m.stack().is_empty(), "{}", regime.name());
            }
        }
    }

    #[test]
    fn check_levels_agree_across_regimes() {
        use stackcache_vm::ProgramBuilder;
        // loop + call + rstack traffic: exercises every gated macro class
        let mut b = ProgramBuilder::new();
        let square = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(0));
        b.push(Inst::Lit(6));
        b.push(Inst::Lit(0));
        b.push(Inst::DoSetup);
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Inst::LoopI);
        b.call(square);
        b.push(Inst::Add);
        b.loop_inc(top);
        b.push(Inst::Lit(7));
        b.push(Inst::ToR);
        b.push(Inst::RFetch);
        b.push(Inst::FromR);
        b.push(Inst::Add);
        b.push(Inst::Add);
        b.push(Inst::Halt);
        b.bind(square).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();

        for regime in EngineRegime::ALL {
            let a = CompiledArtifact::compile(&p, regime, false);
            let mut reference = Machine::with_memory(4096);
            a.run(&mut reference, 1_000_000).expect("full checks run");
            for checks in [Checks::NoUnderflow, Checks::None] {
                let mut m = Machine::with_memory(4096);
                a.run_with_checks(&mut m, 1_000_000, checks)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", regime.name(), checks.name()));
                assert_eq!(reference.stack(), m.stack(), "{}", regime.name());
                assert_eq!(reference.rstack(), m.rstack(), "{}", regime.name());
                assert_eq!(reference.output(), m.output(), "{}", regime.name());
            }
        }
    }

    #[test]
    fn regime_indices_are_dense_and_unique() {
        let mut seen = [false; EngineRegime::ALL.len()];
        for r in EngineRegime::ALL {
            let i = r.index();
            assert!(!seen[i], "{} reuses slot {i}", r.name());
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn static_artifacts_translate_once() {
        let p = square_program();
        let a = CompiledArtifact::compile(&p, EngineRegime::Static(2), true);
        // the clone shares the compiled executable (translate once,
        // execute many times)
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.program, &b.program));
        let (ea, eb) = (a.exe.unwrap(), b.exe.unwrap());
        assert!(Arc::ptr_eq(&ea, &eb));
    }
}
