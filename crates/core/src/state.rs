//! Cache states: mappings of stack items to machine registers.

use std::fmt;

/// A cache register (one of the real-machine registers dedicated to stack
/// caching). Registers are numbered `0..n` within an organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a cache state within an [`Org`](crate::org::Org).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A cache state: which register holds each cached stack slot.
///
/// `word[i]` is the register holding the cached data-stack slot `i`,
/// counted *bottom-first* (slot 0 is the deepest cached item, the last slot
/// is the top of stack). Two slots may name the same register — that
/// represents a *duplication*: the stack logically holds the value twice
/// but it is stored once (Section 3.4).
///
/// `rdepth` is the number of return-stack items cached (only non-zero in
/// the *two stacks* organization, Section 3.4); return-stack slots occupy
/// the highest-numbered registers, growing downward.
///
/// The stack pointer kept in memory differs from the true stack pointer by
/// exactly `depth()` items (stack-pointer update minimization,
/// Section 3.1).
///
/// # Examples
///
/// ```
/// use stackcache_core::{CacheState, Reg};
///
/// let s = CacheState::canonical(3);          // r0 r1 r2, top in r2
/// assert_eq!(s.depth(), 3);
/// assert_eq!(s.top(), Some(Reg(2)));
/// assert!(!s.has_duplication());
///
/// let dup = CacheState::from_regs(&[0, 1, 1]); // top two share r1
/// assert!(dup.has_duplication());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CacheState {
    word: Vec<Reg>,
    rdepth: u8,
}

impl CacheState {
    /// The empty cache state.
    #[must_use]
    pub fn empty() -> Self {
        CacheState::default()
    }

    /// The canonical state of depth `d`: slot `i` in register `i`.
    #[must_use]
    pub fn canonical(d: u8) -> Self {
        CacheState {
            word: (0..d).map(Reg).collect(),
            rdepth: 0,
        }
    }

    /// A state from raw register numbers, bottom-first.
    #[must_use]
    pub fn from_regs(regs: &[u8]) -> Self {
        CacheState {
            word: regs.iter().copied().map(Reg).collect(),
            rdepth: 0,
        }
    }

    /// A state from a register word, bottom-first.
    #[must_use]
    pub fn from_word(word: Vec<Reg>) -> Self {
        CacheState { word, rdepth: 0 }
    }

    /// This state with `rdepth` cached return-stack items.
    #[must_use]
    pub fn with_rdepth(mut self, rdepth: u8) -> Self {
        self.rdepth = rdepth;
        self
    }

    /// Number of cached data-stack slots.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.word.len() as u8
    }

    /// Number of cached return-stack items.
    #[must_use]
    pub fn rdepth(&self) -> u8 {
        self.rdepth
    }

    /// The register word, bottom-first.
    #[must_use]
    pub fn word(&self) -> &[Reg] {
        &self.word
    }

    /// The register holding slot `i` (bottom-first).
    #[must_use]
    pub fn slot(&self, i: usize) -> Option<Reg> {
        self.word.get(i).copied()
    }

    /// The register holding the top of stack.
    #[must_use]
    pub fn top(&self) -> Option<Reg> {
        self.word.last().copied()
    }

    /// Number of *distinct* registers used by data slots.
    #[must_use]
    pub fn distinct_regs(&self) -> u8 {
        let mut seen = 0u64;
        for r in &self.word {
            seen |= 1 << r.0;
        }
        seen.count_ones() as u8
    }

    /// `true` if two slots share a register (a duplicated stack item).
    #[must_use]
    pub fn has_duplication(&self) -> bool {
        self.distinct_regs() < self.depth()
    }

    /// `true` if this is the canonical prefix state of its depth.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.word.iter().enumerate().all(|(i, r)| r.0 as usize == i)
    }

    /// Total registers occupied, counting cached return-stack items.
    #[must_use]
    pub fn regs_used(&self) -> u8 {
        self.distinct_regs() + self.rdepth
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.word.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")?;
        if self.rdepth > 0 {
            write!(f, "+R{}", self.rdepth)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_states() {
        let s = CacheState::canonical(0);
        assert_eq!(s, CacheState::empty());
        assert_eq!(s.depth(), 0);
        assert_eq!(s.top(), None);
        assert!(s.is_canonical());

        let s = CacheState::canonical(4);
        assert_eq!(s.depth(), 4);
        assert_eq!(s.top(), Some(Reg(3)));
        assert_eq!(s.slot(0), Some(Reg(0)));
        assert!(s.is_canonical());
        assert!(!s.has_duplication());
        assert_eq!(s.distinct_regs(), 4);
    }

    #[test]
    fn duplication_detection() {
        let s = CacheState::from_regs(&[0, 1, 0]);
        assert!(s.has_duplication());
        assert_eq!(s.distinct_regs(), 2);
        assert!(!s.is_canonical());
    }

    #[test]
    fn rdepth_counts_toward_regs_used() {
        let s = CacheState::canonical(2).with_rdepth(1);
        assert_eq!(s.regs_used(), 3);
        assert_eq!(s.rdepth(), 1);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CacheState::empty().to_string(), "[]");
        assert_eq!(CacheState::canonical(2).to_string(), "[r0 r1]");
        assert_eq!(
            CacheState::canonical(1).with_rdepth(2).to_string(),
            "[r0]+R2"
        );
    }
}
