//! Stack caching for interpreters — the core of the reproduction of
//! M. Anton Ertl's PLDI 1995 paper.
//!
//! A virtual stack machine's interpreter spends much of its time loading
//! instruction operands from the stack in memory. *Stack caching* keeps
//! the top of the stack in machine registers instead; every mapping of
//! stack items to registers is a [`CacheState`], the allowed set of states
//! is an [`Org`]anization (Fig. 18 of the paper), and executing an
//! instruction is a state transition with a cost in loads, stores,
//! register moves and stack-pointer updates — computed by the
//! [transition engine](engine).
//!
//! On top of the engine sit:
//!
//! * [`regime`] — the instrumentation simulators of the paper's Section 6
//!   (no caching, constant-k, dynamic caching over any organization,
//!   return-stack and two-stacks caching, prefetching), which observe a
//!   program execution and accumulate [`Counts`],
//! * [`staticcache`] — the *static* method of Section 5: a compiler pass
//!   that tracks the cache state through every basic block, compiles pure
//!   stack manipulations to nothing, and reconciles to a canonical state
//!   at control-flow joins and calls — with both greedy and two-pass
//!   optimal (BURS-style) code generation,
//! * [`interp`] — *real* wall-clock interpreters: dynamically cached
//!   (Section 4) and statically compiled (Section 5), cross-validated
//!   against the reference interpreter of `stackcache-vm`,
//! * [`parcopy`] — parallel-copy sequentialization, the classic register
//!   shuffling algorithm behind every move-cost in the model.
//!
//! # Examples
//!
//! Count what a 3-register cache saves on a small program:
//!
//! ```
//! use stackcache_core::regime::{CachedRegime, SimpleRegime};
//! use stackcache_core::{CostModel, Org};
//! use stackcache_vm::{exec, program_of, Inst, Machine};
//!
//! let program = program_of(&[Inst::Lit(6), Inst::Lit(7), Inst::Mul, Inst::Dot]);
//! let mut uncached = SimpleRegime::new();
//! let mut cached = CachedRegime::new(&Org::minimal(3), 3);
//! let mut m = Machine::new();
//! exec::run_with_observer(&program, &mut m, 1_000, &mut uncached)?;
//! let mut m = Machine::new();
//! exec::run_with_observer(&program, &mut m, 1_000, &mut cached)?;
//!
//! let model = CostModel::paper();
//! assert!(cached.counts.access_per_inst(&model) < uncached.counts.access_per_inst(&model));
//! # Ok::<(), stackcache_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod artifact;
pub mod cost;
pub mod dot;
pub mod engine;
pub mod interp;
pub mod org;
pub mod parcopy;
pub mod regime;
pub mod state;
pub mod staticcache;

pub use artifact::{CompiledArtifact, EngineRegime};
pub use cost::{CostModel, Counts};
pub use engine::{
    compute_transition, compute_transition_all, reconcile, sig_slot_for_event, sig_slot_name,
    sig_slots, OpSig, Policy, ReconcileCost, SigKind, Trans, TransitionTable, QDUP_ZERO_SLOT,
    SIG_SLOTS,
};
pub use org::Org;
pub use state::{CacheState, Reg, StateId};
