//! The cache-state transition engine.
//!
//! Executing (or compiling) a virtual-machine instruction moves the stack
//! cache from one state to another and costs some combination of loads,
//! stores, register moves and stack-pointer updates (Section 3).  This
//! module computes those transitions for *any* [`Org`] — it is shared by
//! the dynamic-caching simulators (Section 4), the constant-k regime
//! (Section 2.3) and the static-caching compiler (Section 5).
//!
//! The accounting rules implemented here are spelled out in `DESIGN.md`
//! §6; the key ones:
//!
//! * stack-pointer-update minimization: the in-memory stack pointer differs
//!   from the true one by the cached depth, so it is only updated when the
//!   cache exchanges items with memory (underflow/overflow),
//! * on underflow, missing operands are loaded directly where they are
//!   needed (no moves) and the followup state holds exactly the
//!   instruction's results — the paper's underflow policy,
//! * on overflow, the bottom of the cache is spilled down to the policy's
//!   *overflow followup* depth and surviving items shift (moves),
//! * pure stack manipulations whose result assignment is itself a state of
//!   the organization cost nothing — the basis of static elimination,
//! * move costs are exact minimal move-sequence lengths (see
//!   [`parcopy`](crate::parcopy)).

use std::collections::HashMap;

use stackcache_vm::{perm, EffectKind, ExecEvent, Inst};

use crate::org::Org;
use crate::parcopy::move_count;
use crate::state::{CacheState, Reg, StateId};

/// Behaviour class of an operation, as the cache engine sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigKind {
    /// Consumes inputs, produces fresh values.
    Normal,
    /// Pure stack manipulation; outputs copy inputs per the permutation.
    Shuffle(&'static [u8]),
    /// Needs the true stack pointer: flush the cache first.
    Opaque,
}

/// The cache-relevant signature of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSig {
    /// Data-stack cells popped.
    pub pops: u8,
    /// Data-stack cells pushed.
    pub pushes: u8,
    /// Behaviour class.
    pub kind: SigKind,
}

impl OpSig {
    /// A normal operation consuming `pops` and producing `pushes` cells.
    #[must_use]
    pub const fn normal(pops: u8, pushes: u8) -> Self {
        OpSig {
            pops,
            pushes,
            kind: SigKind::Normal,
        }
    }

    /// A pure shuffle with the given permutation (bottom-first).
    #[must_use]
    pub const fn shuffle(pops: u8, p: &'static [u8]) -> Self {
        OpSig {
            pops,
            pushes: p.len() as u8,
            kind: SigKind::Shuffle(p),
        }
    }

    /// A cache-opaque operation.
    #[must_use]
    pub const fn opaque(pops: u8, pushes: u8) -> Self {
        OpSig {
            pops,
            pushes,
            kind: SigKind::Opaque,
        }
    }
}

/// Number of signature slots: one per opcode, plus one for the zero
/// (`( a -- a )`) variant of `?dup`.
pub const SIG_SLOTS: usize = Inst::OPCODE_COUNT + 1;

/// The extra slot used by `?dup` when the top of stack was zero.
pub const QDUP_ZERO_SLOT: usize = Inst::OPCODE_COUNT;

/// The signature for each slot (see [`sig_slot_for_event`]).
#[must_use]
pub fn sig_slots() -> Vec<OpSig> {
    let mut slots: Vec<OpSig> = Inst::all()
        .map(|inst| {
            let eff = inst.effect();
            match eff.kind {
                EffectKind::Shuffle(p) => OpSig::shuffle(eff.pops, p),
                EffectKind::DynamicShuffle => OpSig::shuffle(1, perm::QDUP_NONZERO),
                EffectKind::Opaque => OpSig::opaque(eff.pops, eff.pushes),
                _ => OpSig::normal(eff.pops, eff.pushes),
            }
        })
        .collect();
    slots.push(OpSig::shuffle(1, perm::QDUP_ZERO));
    slots
}

/// The signature slot of an executed instruction.
///
/// Identical to the instruction's opcode, except that `?dup` on a zero top
/// of stack maps to [`QDUP_ZERO_SLOT`].
#[must_use]
pub fn sig_slot_for_event(ev: &ExecEvent) -> usize {
    if matches!(ev.inst, Inst::QDup) && ev.effect.kind == EffectKind::Shuffle(perm::QDUP_ZERO) {
        QDUP_ZERO_SLOT
    } else {
        ev.inst.opcode() as usize
    }
}

/// The display name of a signature slot: the instruction's conventional
/// Forth name, or `"?dup(zero)"` for [`QDUP_ZERO_SLOT`].
///
/// The inverse of [`sig_slot_for_event`] up to naming — profilers keying
/// counters by slot use this to label their rows.
#[must_use]
pub fn sig_slot_name(slot: usize) -> String {
    if slot == QDUP_ZERO_SLOT {
        return "?dup(zero)".to_string();
    }
    Inst::all()
        .find(|i| i.opcode() as usize == slot)
        .map_or_else(|| format!("op{slot}"), |i| i.name().to_string())
}

/// Transition policy knobs (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Cached depth to land in after an overflow spill (the *overflow
    /// followup state*). Clamped to what the organization can place.
    pub overflow_depth: u8,
    /// `Some(k)`: refill the cache from memory up to `min(k, stack depth)`
    /// items after every instruction. Combined with `sp_tracks_depth` this
    /// is the constant-k regime of Fig. 21; alone it is the *prefetching*
    /// variant of Section 3.6 (states with too few items are forbidden).
    /// `None`: cache purely on demand.
    pub refill_to: Option<u8>,
    /// `true`: the in-memory stack pointer tracks every depth change (the
    /// constant-k regime, where the cache/sp offset is fixed). `false`:
    /// stack-pointer-update minimization (Section 3.1).
    pub sp_tracks_depth: bool,
}

impl Policy {
    /// On-demand caching with the given overflow followup depth.
    #[must_use]
    pub const fn on_demand(overflow_depth: u8) -> Self {
        Policy {
            overflow_depth,
            refill_to: None,
            sp_tracks_depth: false,
        }
    }

    /// The constant-k regime: keep exactly `min(k, depth)` items cached.
    #[must_use]
    pub const fn constant_k(k: u8) -> Self {
        Policy {
            overflow_depth: k,
            refill_to: Some(k),
            sp_tracks_depth: true,
        }
    }

    /// Prefetching (Section 3.6): cache on demand but never hold fewer
    /// than `min_items` (refilling from memory), with the given overflow
    /// followup depth.
    #[must_use]
    pub const fn prefetch(min_items: u8, overflow_depth: u8) -> Self {
        Policy {
            overflow_depth,
            refill_to: Some(min_items),
            sp_tracks_depth: false,
        }
    }
}

/// The outcome of one instruction's cache transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trans {
    /// Successor cache state.
    pub next: StateId,
    /// Loads from the stack in memory.
    pub loads: u16,
    /// Stores to the stack in memory.
    pub stores: u16,
    /// Register-to-register moves.
    pub moves: u16,
    /// Stack-pointer updates.
    pub updates: u16,
    /// An underflow occurred.
    pub underflow: bool,
    /// An overflow occurred.
    pub overflow: bool,
    /// The operation was realized purely as a state change (no memory
    /// traffic, no moves): a statically removable stack manipulation.
    pub eliminated: bool,
}

/// A logical stack item during placement.
#[derive(Debug, Clone, Copy)]
enum Item {
    /// A value currently held in a cache register.
    FromReg { reg: Reg, vid: u32 },
    /// A value arriving from stack memory (underflow load or refill).
    Loaded { vid: u32 },
    /// A fresh value the operation computes.
    Fresh { vid: u32 },
}

impl Item {
    fn vid(&self) -> u32 {
        match *self {
            Item::FromReg { vid, .. } | Item::Loaded { vid } | Item::Fresh { vid } => vid,
        }
    }
}

/// Find the cheapest state of `org` with exactly `items.len()` slots that
/// can hold `items`, returning `(state, moves)`.
fn try_place(org: &Org, items: &[Item], rdepth: u8) -> Option<(StateId, u32)> {
    try_place_all(org, items, rdepth)
        .into_iter()
        .min_by_key(|&(id, m)| (m, id))
}

/// All states of `org` with exactly `items.len()` slots that can hold
/// `items`, each with its move cost.
///
/// Data transitions preserve cached return-stack items, so only states
/// with the source's `rdepth` are candidates (relevant to the two-stacks
/// organization only; every other organization has `rdepth == 0`
/// throughout).
fn try_place_all(org: &Org, items: &[Item], rdepth: u8) -> Vec<(StateId, u32)> {
    let Ok(depth) = u8::try_from(items.len()) else {
        return Vec::new();
    };
    let mut found = Vec::new();
    'cand: for &id in org.states_of_depth(depth) {
        if org.state(id).rdepth() != rdepth {
            continue;
        }
        let word = org.state(id).word();
        // Validity: slots sharing a register must hold the same value.
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if word[i] == word[j] && items[i].vid() != items[j].vid() {
                    continue 'cand;
                }
            }
        }
        // Cost: moves for register-resident values; loads/fresh values are
        // produced directly into their target registers; a duplicated
        // loaded value costs one move per extra placement.
        let mut asg: Vec<(u8, u8)> = Vec::new();
        let mut placed_loaded: HashMap<u32, u8> = HashMap::new();
        let mut extra = 0u32;
        for (i, item) in items.iter().enumerate() {
            let dst = word[i].0;
            match *item {
                Item::FromReg { reg, .. } => {
                    if !asg.iter().any(|&(d, _)| d == dst) {
                        asg.push((dst, reg.0));
                    }
                }
                Item::Loaded { vid } => match placed_loaded.get(&vid) {
                    None => {
                        placed_loaded.insert(vid, dst);
                    }
                    Some(&first) => {
                        if first != dst {
                            extra += 1;
                        }
                    }
                },
                Item::Fresh { .. } => {}
            }
        }
        let moves = move_count(&asg) as u32 + extra;
        found.push((id, moves));
    }
    found
}

/// Compute the transition for executing an operation with signature `sig`
/// in state `from`, under `policy`.
///
/// `deeper` is the number of stack items in memory below the cached ones
/// (used for refilling in the constant-k regime; on-demand transitions
/// ignore it).
///
/// # Panics
///
/// Panics if `org` lacks an empty state (all provided organizations have
/// one).
#[must_use]
pub fn compute_transition(
    org: &Org,
    policy: &Policy,
    from: StateId,
    sig: &OpSig,
    deeper: u8,
) -> Trans {
    let rdepth = org.state(from).rdepth();
    let (t, items) = transition_prep(org, policy, from, sig, deeper);
    match items {
        None => t,
        Some(items) => match try_place(org, &items, rdepth) {
            Some((next, moves)) => finish_placed(policy, sig, t, next, moves),
            None => finish_overflow(org, policy, sig, t, &items, rdepth),
        },
    }
}

/// Compute *all* candidate transitions for executing `sig` in state `from`:
/// one per valid placement of the result in a state of the organization.
///
/// Used by the two-pass optimal static code generator (Section 5), which
/// chooses between candidates with lookahead instead of greedily. When the
/// operation overflows there is a single candidate (the policy's followup).
#[must_use]
pub fn compute_transition_all(
    org: &Org,
    policy: &Policy,
    from: StateId,
    sig: &OpSig,
    deeper: u8,
) -> Vec<Trans> {
    let rdepth = org.state(from).rdepth();
    let (t, items) = transition_prep(org, policy, from, sig, deeper);
    match items {
        None => vec![t],
        Some(items) => {
            let placements = try_place_all(org, &items, rdepth);
            if placements.is_empty() {
                vec![finish_overflow(org, policy, sig, t, &items, rdepth)]
            } else {
                placements
                    .into_iter()
                    .map(|(next, moves)| finish_placed(policy, sig, t, next, moves))
                    .collect()
            }
        }
    }
}

/// Shared first phase: underflow loads, refill, logical item list.
/// Returns `(t, None)` when fully handled (opaque operations).
fn transition_prep(
    org: &Org,
    policy: &Policy,
    from: StateId,
    sig: &OpSig,
    deeper: u8,
) -> (Trans, Option<Vec<Item>>) {
    let cur = org.state(from).clone();
    let d = cur.depth();
    let x = sig.pops;
    let y = sig.pushes;
    let mut t = Trans {
        next: from,
        ..Trans::default()
    };

    if matches!(sig.kind, SigKind::Opaque) {
        // Flush every cached slot to memory, run the operation against
        // memory, refill if the policy demands it.
        t.stores += u16::from(d);
        if d > 0 {
            t.updates += 1;
        }
        t.loads += u16::from(x);
        t.stores += u16::from(y);
        if x != y {
            t.updates += 1;
        }
        let total_after =
            (u16::from(deeper) + u16::from(d) + u16::from(y)).saturating_sub(u16::from(x));
        let mut refill = match policy.refill_to {
            Some(k) => u16::from(k).min(total_after),
            None => 0,
        };
        // Cached return-stack items survive the data flush: the followup
        // keeps the source rdepth, reducing the refill if that leaves
        // fewer registers for data.
        let next = loop {
            let cand = CacheState::canonical(refill as u8).with_rdepth(cur.rdepth());
            if let Some(id) = org.lookup(&cand) {
                break id;
            }
            assert!(refill > 0, "organizations include the empty state");
            refill -= 1;
        };
        t.loads += refill;
        t.next = next;
        if policy.sp_tracks_depth {
            t.updates = u16::from(x != y);
        }
        return (t, None);
    }

    // --- inputs ---------------------------------------------------------
    let cached_inputs = d.min(x);
    let from_mem = x - cached_inputs; // underflow loads
    if from_mem > 0 {
        t.loads += u16::from(from_mem);
        t.updates += 1;
        t.underflow = true;
    }
    let survivors = d - cached_inputs;

    // --- build the logical item list (bottom-first) ----------------------
    let mut vid_counter = 1000u32;
    let mut items: Vec<Item> = Vec::with_capacity(usize::from(survivors + y) + 8);

    // Refill items go below everything else.
    let deeper_after_inputs = u16::from(deeper).saturating_sub(u16::from(from_mem));
    let natural = u16::from(survivors) + u16::from(y);
    let refill = match policy.refill_to {
        Some(k) => {
            let total_after = deeper_after_inputs + natural;
            u16::from(k).min(total_after).saturating_sub(natural)
        }
        None => 0,
    };
    for i in 0..refill {
        items.push(Item::Loaded {
            vid: 2000 + u32::from(i),
        });
    }
    t.loads += refill;
    if refill > 0 && !policy.sp_tracks_depth {
        // prefetch refills move the in-memory stack pointer
        t.updates += 1;
    }

    // Survivors keep their registers; the register number identifies the
    // value (each register holds one value).
    for i in 0..survivors {
        let reg = cur.word()[i as usize];
        items.push(Item::FromReg {
            reg,
            vid: u32::from(reg.0),
        });
    }

    // Outputs.
    match sig.kind {
        SigKind::Normal => {
            for _ in 0..y {
                vid_counter += 1;
                items.push(Item::Fresh { vid: vid_counter });
            }
        }
        SigKind::Shuffle(p) => {
            for &src in p {
                if src < from_mem {
                    // Input still in memory: loaded directly into place.
                    items.push(Item::Loaded {
                        vid: 3000 + u32::from(src),
                    });
                } else {
                    let slot = usize::from(survivors + (src - from_mem));
                    let reg = cur.word()[slot];
                    items.push(Item::FromReg {
                        reg,
                        vid: u32::from(reg.0),
                    });
                }
            }
        }
        SigKind::Opaque => unreachable!("handled above"),
    }

    (t, Some(items))
}

/// Final accounting for a successful (non-spilling) placement.
fn finish_placed(policy: &Policy, sig: &OpSig, mut t: Trans, next: StateId, moves: u32) -> Trans {
    t.next = next;
    t.moves += moves as u16;
    if policy.sp_tracks_depth {
        t.updates = u16::from(sig.pops != sig.pushes);
    }
    // Statically removable only if it costs nothing at all — under the
    // constant-k regime a depth-changing shuffle still pays its sp update.
    if matches!(sig.kind, SigKind::Shuffle(_))
        && t.loads == 0
        && t.stores == 0
        && t.moves == 0
        && t.updates == 0
        && !t.underflow
        && !t.overflow
    {
        t.eliminated = true;
    }
    t
}

/// Final accounting when the result does not fit: spill the bottom of the
/// cache down to the policy's overflow followup depth.
fn finish_overflow(
    org: &Org,
    policy: &Policy,
    sig: &OpSig,
    mut t: Trans,
    items: &[Item],
    rdepth: u8,
) -> Trans {
    let want = items.len() as u8;
    t.overflow = true;
    t.updates += 1;
    let mut f = policy.overflow_depth.min(want.saturating_sub(1));
    let (next, moves) = loop {
        let top = &items[usize::from(want - f)..];
        if let Some((id, moves)) = try_place(org, top, rdepth) {
            t.stores += u16::from(want - f);
            break (id, moves);
        }
        assert!(f > 0, "empty state must always be placeable");
        f -= 1;
    };
    t.next = next;
    t.moves += moves as u16;
    if policy.sp_tracks_depth {
        t.updates = u16::from(sig.pops != sig.pushes);
    }
    t
}

/// A precomputed transition table: one [`Trans`] per (state, signature
/// slot) pair, for on-demand policies.
///
/// Constant-k policies depend on how many items are available below the
/// cache and must use [`compute_transition`] directly (memoized).
#[derive(Debug, Clone)]
pub struct TransitionTable {
    trans: Vec<Trans>,
}

impl TransitionTable {
    /// Precompute all transitions of `org` under an on-demand `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy` refills (use [`compute_transition`] for
    /// constant-k).
    #[must_use]
    pub fn build(org: &Org, policy: &Policy) -> Self {
        assert!(
            policy.refill_to.is_none(),
            "tables are for on-demand policies"
        );
        let sigs = sig_slots();
        let mut trans = Vec::with_capacity(org.state_count() * SIG_SLOTS);
        for s in 0..org.state_count() {
            let from = StateId(s as u32);
            for sig in &sigs {
                trans.push(compute_transition(org, policy, from, sig, 0));
            }
        }
        TransitionTable { trans }
    }

    /// The transition for `state` and signature `slot`.
    #[must_use]
    pub fn get(&self, state: StateId, slot: usize) -> &Trans {
        &self.trans[state.index() * SIG_SLOTS + slot]
    }
}

/// Cost of reconciling the cache from state `a` to state `b` by explicit
/// code (moves, loads and stores), as static caching must do at control
/// flow joins and calls (Section 5).
///
/// Register-resident values move; slots of `b` deeper than `a`'s cached
/// depth are loaded; slots of `a` below `b`'s depth are stored.
///
/// The reconciliation is *positional*: slot `i` of `b` must hold the same
/// stack item as slot `i` of `a` (counting from the top of stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconcileCost {
    /// Loads from memory.
    pub loads: u16,
    /// Stores to memory.
    pub stores: u16,
    /// Register moves.
    pub moves: u16,
    /// Stack-pointer updates.
    pub updates: u16,
}

impl ReconcileCost {
    /// Total of all components (unit weights).
    #[must_use]
    pub fn total(&self) -> u32 {
        u32::from(self.loads)
            + u32::from(self.stores)
            + u32::from(self.moves)
            + u32::from(self.updates)
    }
}

/// Compute the cost of turning cache state `a` into cache state `b`.
///
/// Both states must belong to the same register file. See
/// [`ReconcileCost`].
#[must_use]
pub fn reconcile(a: &CacheState, b: &CacheState) -> ReconcileCost {
    let da = usize::from(a.depth());
    let db = usize::from(b.depth());
    let mut cost = ReconcileCost::default();

    // Align by top of stack: item at a-slot (da-1-k) == b-slot (db-1-k).
    // b-slots deeper than a's cache come from memory (loads); a-slots
    // deeper than b's target go to memory (stores).
    if db > da {
        cost.loads += (db - da) as u16;
    }
    if da > db {
        cost.stores += (da - db) as u16;
    }
    if da != db {
        cost.updates += 1;
    }
    let common = da.min(db);
    let mut asg: Vec<(u8, u8)> = Vec::new();
    for k in 0..common {
        let src = a.word()[da - 1 - k];
        let dst = b.word()[db - 1 - k];
        if !asg.iter().any(|&(d2, _)| d2 == dst.0) {
            asg.push((dst.0, src.0));
        } else {
            // dst already assigned: consistent only if same source; if a
            // duplicated target wants two different values, the deeper one
            // must go through memory. Count a store+load pair.
            if !asg.iter().any(|&(d2, s2)| d2 == dst.0 && s2 == src.0) {
                cost.stores += 1;
                cost.loads += 1;
            }
        }
    }
    // Duplicated *sources* feeding distinct targets are fine (fan-out).
    cost.moves += move_count(&asg) as u16;
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::Org;

    fn minimal(n: u8) -> Org {
        Org::minimal(n)
    }

    fn run(org: &Org, policy: &Policy, from_depth: u8, sig: OpSig) -> Trans {
        let from = org.canonical_of_depth(from_depth).unwrap();
        compute_transition(org, policy, from, &sig, 32)
    }

    #[test]
    fn add_in_full_cache_is_free() {
        let org = minimal(3);
        let p = Policy::on_demand(3);
        // add with 3 cached: consumes r1,r2, result fresh -> depth 2, no cost
        let t = run(&org, &p, 3, OpSig::normal(2, 1));
        assert_eq!(org.state(t.next).depth(), 2);
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (0, 0, 0, 0));
    }

    #[test]
    fn add_underflow_loads_missing_operands() {
        let org = minimal(3);
        let p = Policy::on_demand(3);
        // add with 1 cached: one load, result cached, one sp update
        let t = run(&org, &p, 1, OpSig::normal(2, 1));
        assert_eq!(org.state(t.next).depth(), 1);
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (1, 0, 0, 1));
        assert!(t.underflow);

        // add with empty cache: two loads
        let t = run(&org, &p, 0, OpSig::normal(2, 1));
        assert_eq!(org.state(t.next).depth(), 1);
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (2, 0, 0, 1));
    }

    #[test]
    fn push_overflow_spills_to_followup_depth() {
        let org = minimal(3);
        // lit with full cache, followup = full (3): spill 1, survivors shift
        let t = run(&org, &Policy::on_demand(3), 3, OpSig::normal(0, 1));
        assert_eq!(org.state(t.next).depth(), 3);
        assert!(t.overflow);
        assert_eq!(t.stores, 1);
        // two surviving old items shift down one register each
        assert_eq!(t.moves, 2);
        assert_eq!(t.updates, 1);

        // followup = 1: spill 3, no moves (only the new value is cached)
        let t = run(&org, &Policy::on_demand(1), 3, OpSig::normal(0, 1));
        assert_eq!(org.state(t.next).depth(), 1);
        assert_eq!(t.stores, 3);
        assert_eq!(t.moves, 0);
    }

    #[test]
    fn overflow_in_rotation_org_avoids_moves() {
        // With the overflow-move-optimized organization, the spill can keep
        // survivors where they are (rotated state), so no moves are needed.
        let org = Org::overflow_opt(3);
        let t = run(&org, &Policy::on_demand(3), 3, OpSig::normal(0, 1));
        assert!(t.overflow);
        assert_eq!(t.stores, 1);
        assert_eq!(t.moves, 0, "rotation states eliminate overflow moves");
        assert_eq!(org.state(t.next).depth(), 3);
    }

    #[test]
    fn swap_costs_three_moves_in_minimal() {
        let org = minimal(3);
        let p = Policy::on_demand(3);
        let t = run(&org, &p, 2, OpSig::shuffle(2, perm::SWAP));
        assert_eq!(org.state(t.next).depth(), 2);
        assert_eq!(t.moves, 3, "swap = cycle of two = 3 moves with scratch");
        assert!(!t.eliminated);
    }

    #[test]
    fn swap_is_free_in_shuffle_org() {
        let org = Org::arbitrary_shuffles(3);
        let p = Policy::on_demand(3);
        let t = run(&org, &p, 2, OpSig::shuffle(2, perm::SWAP));
        assert_eq!((t.loads, t.stores, t.moves), (0, 0, 0));
        assert!(t.eliminated);
        // target state is [r1 r0]
        assert_eq!(org.state(t.next), &CacheState::from_regs(&[1, 0]));
    }

    #[test]
    fn dup_costs_one_move_in_minimal_but_is_free_in_one_dup() {
        let m = minimal(3);
        let t = run(&m, &Policy::on_demand(3), 1, OpSig::shuffle(1, perm::DUP));
        assert_eq!(t.moves, 1);
        assert!(!t.eliminated);

        let od = Org::one_dup(3);
        let t = run(&od, &Policy::on_demand(3), 1, OpSig::shuffle(1, perm::DUP));
        assert_eq!(t.moves, 0);
        assert!(t.eliminated);
        assert_eq!(od.state(t.next), &CacheState::from_regs(&[0, 0]));
    }

    #[test]
    fn drop_is_free_everywhere_when_cached() {
        for org in [minimal(3), Org::one_dup(3), Org::arbitrary_shuffles(3)] {
            let t = run(
                &org,
                &Policy::on_demand(3),
                2,
                OpSig::shuffle(1, perm::DROP),
            );
            assert_eq!(
                (t.loads, t.stores, t.moves, t.updates),
                (0, 0, 0, 0),
                "{}",
                org.name()
            );
            assert!(t.eliminated);
        }
    }

    #[test]
    fn swap_with_underflow_loads_into_place() {
        let org = minimal(3);
        let t = run(
            &org,
            &Policy::on_demand(3),
            1,
            OpSig::shuffle(2, perm::SWAP),
        );
        // cached: [b] (the top item, in r0); `swap` needs `a` from memory.
        // After the swap the stack is ( b a ): b stays in r0 (slot 0) and
        // `a` is loaded directly into r1 — one load, no moves.
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (1, 0, 0, 1));
        assert!(t.underflow);
        assert_eq!(org.state(t.next).depth(), 2);
    }

    #[test]
    fn qdup_zero_variant_is_identity() {
        let org = minimal(3);
        let t = run(
            &org,
            &Policy::on_demand(3),
            2,
            OpSig::shuffle(1, perm::QDUP_ZERO),
        );
        assert_eq!((t.loads, t.stores, t.moves), (0, 0, 0));
        assert!(t.eliminated);
        assert_eq!(org.state(t.next).depth(), 2);
    }

    #[test]
    fn opaque_flushes_cache() {
        let org = minimal(3);
        let p = Policy::on_demand(3);
        // depth with 2 cached: store both, sp update; op pushes 1 from mem
        let t = run(&org, &p, 2, OpSig::opaque(0, 1));
        assert_eq!(t.stores, 2 + 1); // flush 2 + store result
        assert_eq!(t.loads, 0);
        assert_eq!(org.state(t.next).depth(), 0);
        assert!(t.updates >= 2);
    }

    #[test]
    fn constant_k_add_refills() {
        let org = minimal(2);
        let p = Policy::constant_k(2);
        // add with k=2 and a deep stack: consume both, refill one below the
        // fresh result -> 1 load; result written to r1 directly, no move;
        // sp update because depth changed.
        let t = run(&org, &p, 2, OpSig::normal(2, 1));
        assert_eq!(org.state(t.next).depth(), 2);
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (1, 0, 0, 1));
    }

    #[test]
    fn constant_k_lit_spills() {
        let org = minimal(2);
        let p = Policy::constant_k(2);
        let t = run(&org, &p, 2, OpSig::normal(0, 1));
        assert_eq!(org.state(t.next).depth(), 2);
        // bottom item stored, survivor moves down, new value to r1
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (0, 1, 1, 1));
    }

    #[test]
    fn constant_k_swap_costs_moves_but_no_update() {
        let org = minimal(2);
        let p = Policy::constant_k(2);
        let t = run(&org, &p, 2, OpSig::shuffle(2, perm::SWAP));
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (0, 0, 3, 0));
    }

    #[test]
    fn constant_k_respects_shallow_stack() {
        let org = minimal(4);
        let p = Policy::constant_k(4);
        // Only 1 item exists below the cache (deeper=1), cache holds 2:
        // lit pushes 1 -> depth 3, refill limited by availability: desired
        // min(4, 1+2+1)=4 -> refill 1.
        let from = org.canonical_of_depth(2).unwrap();
        let t = compute_transition(&org, &p, from, &OpSig::normal(0, 1), 1);
        assert_eq!(org.state(t.next).depth(), 4);
        assert_eq!(t.loads, 1);
    }

    #[test]
    fn branch_like_ops_keep_state() {
        let org = minimal(3);
        let p = Policy::on_demand(3);
        let t = run(&org, &p, 2, OpSig::normal(0, 0));
        assert_eq!(org.state(t.next).depth(), 2);
        assert_eq!((t.loads, t.stores, t.moves, t.updates), (0, 0, 0, 0));
    }

    #[test]
    fn two_dup_overflow_in_small_minimal_org() {
        let org = minimal(2);
        let p = Policy::on_demand(2);
        // 2dup from depth 2: want 4 > 2: spill down to followup 2.
        let t = run(&org, &p, 2, OpSig::shuffle(2, perm::TWO_DUP));
        assert!(t.overflow);
        assert_eq!(org.state(t.next).depth(), 2);
        assert_eq!(t.stores, 2);
    }

    #[test]
    fn transition_table_matches_direct_computation() {
        let org = Org::one_dup(3);
        let p = Policy::on_demand(2);
        let table = TransitionTable::build(&org, &p);
        let sigs = sig_slots();
        for s in 0..org.state_count() {
            let from = StateId(s as u32);
            for (slot, sig) in sigs.iter().enumerate() {
                let direct = compute_transition(&org, &p, from, sig, 0);
                assert_eq!(*table.get(from, slot), direct);
            }
        }
    }

    #[test]
    fn sig_slots_cover_all_opcodes() {
        let slots = sig_slots();
        assert_eq!(slots.len(), SIG_SLOTS);
        // add
        assert_eq!(slots[Inst::Add.opcode() as usize], OpSig::normal(2, 1));
        // swap
        assert_eq!(
            slots[Inst::Swap.opcode() as usize],
            OpSig::shuffle(2, perm::SWAP)
        );
        // ?dup variants
        assert_eq!(
            slots[Inst::QDup.opcode() as usize],
            OpSig::shuffle(1, perm::QDUP_NONZERO)
        );
        assert_eq!(slots[QDUP_ZERO_SLOT], OpSig::shuffle(1, perm::QDUP_ZERO));
        // pick is opaque
        assert!(matches!(
            slots[Inst::Pick.opcode() as usize].kind,
            SigKind::Opaque
        ));
    }

    #[test]
    fn reconcile_same_state_is_free() {
        let a = CacheState::canonical(3);
        assert_eq!(reconcile(&a, &a).total(), 0);
    }

    #[test]
    fn reconcile_depth_changes() {
        let a = CacheState::canonical(3);
        let b = CacheState::canonical(1);
        // top item: a's r2 -> b's r0 (1 move); two stores; 1 update
        let c = reconcile(&a, &b);
        assert_eq!((c.loads, c.stores, c.moves, c.updates), (0, 2, 1, 1));

        let c = reconcile(&b, &a);
        // load two deeper items; top moves r0 -> r2
        assert_eq!((c.loads, c.stores, c.moves, c.updates), (2, 0, 1, 1));
    }

    #[test]
    fn reconcile_permuted_states() {
        let a = CacheState::from_regs(&[1, 0]);
        let b = CacheState::canonical(2);
        let c = reconcile(&a, &b);
        assert_eq!(c.moves, 3); // swap
        assert_eq!((c.loads, c.stores, c.updates), (0, 0, 0));
    }

    #[test]
    fn reconcile_collapses_duplicates() {
        // a has a dup [r0 r0], b wants canonical [r0 r1]:
        // top (a r0) -> b r1: 1 move; bottom (a r0) -> b r0: free.
        let a = CacheState::from_regs(&[0, 0]);
        let b = CacheState::canonical(2);
        let c = reconcile(&a, &b);
        assert_eq!(c.moves, 1);
        assert_eq!(c.total(), 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::org::Org;

    /// Independent closed-form derivation of minimal-organization
    /// transitions for normal operations, from Section 3 of the paper.
    /// Cross-checked against the general engine.
    fn minimal_normal_closed_form(n: u8, f: u8, d: u8, x: u8, y: u8) -> Trans {
        let mut t = Trans::default();
        let survivors;
        if x > d {
            t.loads = u16::from(x - d);
            t.updates += 1;
            t.underflow = true;
            survivors = 0;
        } else {
            survivors = d - x;
        }
        let want = survivors + y;
        let next;
        if want > n {
            t.overflow = true;
            t.updates += 1;
            // followup depth, clamped so at least one item spills; with a
            // shallow followup even fresh outputs go straight to memory
            let fu = f.min(want - 1);
            t.stores = u16::from(want - fu);
            t.moves = u16::from(fu.saturating_sub(y));
            next = fu;
        } else {
            next = want;
        }
        t.next = StateId(u32::from(next));
        t
    }

    #[test]
    fn engine_matches_closed_form_for_minimal_normal_ops() {
        for n in 1..=8u8 {
            let org = Org::minimal(n);
            let policy = Policy::on_demand(n); // full followup
            for d in 0..=n {
                let from = org.canonical_of_depth(d).unwrap();
                for x in 0..=4u8 {
                    for y in 0..=4u8 {
                        let sig = OpSig::normal(x, y);
                        let got = compute_transition(&org, &policy, from, &sig, 16);
                        let want = minimal_normal_closed_form(n, n, d, x, y);
                        // minimal org states sort by depth, so StateId == depth
                        assert_eq!(
                            (got.next, got.loads, got.stores, got.moves, got.updates),
                            (want.next, want.loads, want.stores, want.moves, want.updates),
                            "n={n} d={d} x={x} y={y}: got {got:?} want {want:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_matches_closed_form_for_all_followup_states() {
        for n in 2..=6u8 {
            let org = Org::minimal(n);
            for f in 0..=n {
                let policy = Policy::on_demand(f);
                for d in 0..=n {
                    let from = org.canonical_of_depth(d).unwrap();
                    for (x, y) in [(0u8, 1u8), (0, 2), (1, 2), (2, 3)] {
                        let got = compute_transition(&org, &policy, from, &OpSig::normal(x, y), 16);
                        let want = minimal_normal_closed_form(n, f, d, x, y);
                        assert_eq!(
                            (got.next, got.loads, got.stores, got.moves, got.updates),
                            (want.next, want.loads, want.stores, want.moves, want.updates),
                            "n={n} f={f} d={d} x={x} y={y}: got {got:?} want {want:?}"
                        );
                    }
                }
            }
        }
    }

    /// Transitions never fabricate or lose stack items: depth bookkeeping
    /// must balance across loads, stores and the state change.
    #[test]
    fn depth_conservation_across_all_orgs_and_sigs() {
        let orgs = [
            Org::minimal(4),
            Org::one_dup(4),
            Org::overflow_opt(4),
            Org::arbitrary_shuffles(4),
            Org::static_shuffle(4),
        ];
        let sigs = sig_slots();
        for org in &orgs {
            for f in 0..=org.registers() {
                let policy = Policy::on_demand(f);
                for s in 0..org.state_count() {
                    let from = StateId(s as u32);
                    let d = i32::from(org.state(from).depth());
                    for sig in &sigs {
                        if matches!(sig.kind, SigKind::Opaque) {
                            continue; // flush semantics checked separately
                        }
                        let t = compute_transition(org, &policy, from, sig, 16);
                        let d2 = i32::from(org.state(t.next).depth());
                        let net = i32::from(sig.pushes) - i32::from(sig.pops);
                        // cached + in-memory depth change must equal net:
                        // cached change = d2 - d; memory change = stores - loads
                        assert_eq!(
                            d2 - d + i32::from(t.stores) - i32::from(t.loads),
                            net,
                            "{}: state {} sig {:?} trans {:?}",
                            org.name(),
                            org.state(from),
                            sig,
                            t
                        );
                    }
                }
            }
        }
    }

    /// Eliminated transitions are exactly the zero-cost shuffles.
    #[test]
    fn eliminated_implies_zero_cost() {
        let orgs = [Org::minimal(3), Org::one_dup(3), Org::arbitrary_shuffles(3)];
        let sigs = sig_slots();
        for org in &orgs {
            let policy = Policy::on_demand(org.registers());
            for s in 0..org.state_count() {
                let from = StateId(s as u32);
                for sig in &sigs {
                    let t = compute_transition(org, &policy, from, sig, 16);
                    if t.eliminated {
                        assert!(matches!(sig.kind, SigKind::Shuffle(_)));
                        assert_eq!(
                            (t.loads, t.stores, t.moves, t.updates),
                            (0, 0, 0, 0),
                            "{}: {sig:?}",
                            org.name()
                        );
                    }
                }
            }
        }
    }

    /// The candidates returned by `compute_transition_all` include the
    /// greedy choice and agree with it on everything except placement.
    #[test]
    fn candidates_contain_the_greedy_transition() {
        let org = Org::static_shuffle(4);
        let policy = Policy::on_demand(2);
        let sigs = sig_slots();
        for s in 0..org.state_count() {
            let from = StateId(s as u32);
            for sig in &sigs {
                let greedy = compute_transition(&org, &policy, from, sig, 8);
                let all = compute_transition_all(&org, &policy, from, sig, 8);
                assert!(!all.is_empty());
                assert!(
                    all.contains(&greedy),
                    "{}: greedy {greedy:?} missing from {} candidates",
                    org.name(),
                    all.len()
                );
                // greedy has minimal move cost among candidates
                assert!(all.iter().all(|t| t.moves >= greedy.moves));
            }
        }
    }

    /// For transitions that do not overflow, richer organizations never
    /// cost more than the minimal one: their candidate placements are a
    /// superset of the minimal org's at the same depth. (On overflow a
    /// richer org may legitimately pay moves *instead of* a spill — it
    /// keeps more items cached — so pointwise dominance does not hold
    /// there.)
    #[test]
    fn richer_orgs_dominate_minimal_without_overflow() {
        let n = 3u8;
        let minimal = Org::minimal(n);
        let richer = [
            Org::one_dup(n),
            Org::arbitrary_shuffles(n),
            Org::static_shuffle(n),
        ];
        let sigs = sig_slots();
        let policy = Policy::on_demand(n);
        for d in 0..=n {
            let from_min = minimal.canonical_of_depth(d).unwrap();
            for sig in &sigs {
                let base = compute_transition(&minimal, &policy, from_min, sig, 8);
                if base.overflow {
                    continue;
                }
                let base_cost = base.loads + base.stores + base.moves;
                for org in &richer {
                    let from = org.canonical_of_depth(d).unwrap();
                    let t = compute_transition(org, &policy, from, sig, 8);
                    if t.overflow {
                        continue;
                    }
                    let cost = t.loads + t.stores + t.moves;
                    assert!(
                        cost <= base_cost,
                        "{} must not beat {} from canonical({d}) on {sig:?}: {cost} vs {base_cost}",
                        minimal.name(),
                        org.name()
                    );
                }
            }
        }
    }
}
