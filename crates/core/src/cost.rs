//! Cost model and event counters (Section 6).
//!
//! The paper weighs the components of interpreter overhead as: loads,
//! stores, moves and stack-pointer updates cost one cycle each, instruction
//! dispatch costs four. [`CostModel`] makes the weights explicit (Fig. 26's
//! sensitivity discussion re-runs the comparison with dispatch at 5 and 6
//! cycles); [`Counts`] accumulates the raw event counts that every regime
//! simulator produces.

use std::ops::{Add, AddAssign};

/// Cycle weights for the overhead components.
///
/// # Examples
///
/// ```
/// use stackcache_core::CostModel;
///
/// let m = CostModel::paper();
/// assert_eq!(m.dispatch, 4);
/// let slow_dispatch = CostModel { dispatch: 6, ..CostModel::paper() };
/// assert_eq!(slow_dispatch.load, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a load from the stack in memory.
    pub load: u32,
    /// Cost of a store to the stack in memory.
    pub store: u32,
    /// Cost of a register-to-register move.
    pub mv: u32,
    /// Cost of a stack-pointer update.
    pub update: u32,
    /// Cost of an instruction dispatch.
    pub dispatch: u32,
}

impl CostModel {
    /// The paper's weights: 1/1/1/1 and dispatch = 4 (Section 6).
    #[must_use]
    pub const fn paper() -> Self {
        CostModel {
            load: 1,
            store: 1,
            mv: 1,
            update: 1,
            dispatch: 4,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Raw event counts accumulated over a program run (or several).
///
/// `insts` counts *executed virtual-machine instructions*; for static stack
/// caching `dispatches` can be smaller than `insts` because statically
/// eliminated stack manipulations execute no dispatch (Section 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Executed VM instructions (original program instructions).
    pub insts: u64,
    /// Loads from the data stack in memory.
    pub loads: u64,
    /// Stores to the data stack in memory.
    pub stores: u64,
    /// Register-to-register moves.
    pub moves: u64,
    /// Data-stack-pointer updates.
    pub updates: u64,
    /// Instruction dispatches executed.
    pub dispatches: u64,
    /// Loads from the return stack in memory.
    pub rloads: u64,
    /// Stores to the return stack in memory.
    pub rstores: u64,
    /// Return-stack-pointer updates.
    pub rupdates: u64,
    /// Calls executed (static calls and `execute`).
    pub calls: u64,
    /// Cache underflow events.
    pub underflows: u64,
    /// Cache overflow events.
    pub overflows: u64,
}

impl Counts {
    /// An all-zero counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Data-stack *argument access* overhead in cycles under `model`:
    /// loads + stores + moves + updates, weighted. Dispatches are not
    /// included (they are reported separately, as in Figs. 21-25).
    #[must_use]
    pub fn access_cycles(&self, model: &CostModel) -> u64 {
        self.loads * u64::from(model.load)
            + self.stores * u64::from(model.store)
            + self.moves * u64::from(model.mv)
            + self.updates * u64::from(model.update)
    }

    /// Argument access overhead per executed instruction.
    #[must_use]
    pub fn access_per_inst(&self, model: &CostModel) -> f64 {
        ratio(self.access_cycles(model), self.insts)
    }

    /// Net overhead per instruction for static caching (Fig. 24): access
    /// cycles *minus* the dispatch cycles saved by eliminated instructions,
    /// per original instruction. Can be negative.
    #[must_use]
    pub fn net_overhead_per_inst(&self, model: &CostModel) -> f64 {
        let saved = (self.insts - self.dispatches) * u64::from(model.dispatch);
        let access = self.access_cycles(model);
        if self.insts == 0 {
            return 0.0;
        }
        (access as f64 - saved as f64) / self.insts as f64
    }

    /// Memory accesses (loads + stores) per instruction.
    #[must_use]
    pub fn mem_per_inst(&self) -> f64 {
        ratio(self.loads + self.stores, self.insts)
    }

    /// Moves per instruction.
    #[must_use]
    pub fn moves_per_inst(&self) -> f64 {
        ratio(self.moves, self.insts)
    }

    /// Stack-pointer updates per instruction.
    #[must_use]
    pub fn updates_per_inst(&self) -> f64 {
        ratio(self.updates, self.insts)
    }

    /// Dispatches per instruction (1.0 unless statically eliminated).
    #[must_use]
    pub fn dispatches_per_inst(&self) -> f64 {
        ratio(self.dispatches, self.insts)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for Counts {
    type Output = Counts;
    fn add(mut self, rhs: Counts) -> Counts {
        self += rhs;
        self
    }
}

impl AddAssign for Counts {
    fn add_assign(&mut self, rhs: Counts) {
        self.insts += rhs.insts;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.moves += rhs.moves;
        self.updates += rhs.updates;
        self.dispatches += rhs.dispatches;
        self.rloads += rhs.rloads;
        self.rstores += rhs.rstores;
        self.rupdates += rhs.rupdates;
        self.calls += rhs.calls;
        self.underflows += rhs.underflows;
        self.overflows += rhs.overflows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights() {
        let m = CostModel::paper();
        assert_eq!(
            (m.load, m.store, m.mv, m.update, m.dispatch),
            (1, 1, 1, 1, 4)
        );
        assert_eq!(CostModel::default(), m);
    }

    #[test]
    fn access_cycles_weighted() {
        let c = Counts {
            insts: 10,
            loads: 3,
            stores: 2,
            moves: 4,
            updates: 5,
            ..Counts::new()
        };
        let m = CostModel::paper();
        assert_eq!(c.access_cycles(&m), 14);
        assert!((c.access_per_inst(&m) - 1.4).abs() < 1e-12);
        let m2 = CostModel { mv: 2, ..m };
        assert_eq!(c.access_cycles(&m2), 18);
    }

    #[test]
    fn net_overhead_subtracts_saved_dispatches() {
        let c = Counts {
            insts: 100,
            dispatches: 80,
            loads: 10,
            ..Counts::new()
        };
        let m = CostModel::paper();
        // access = 10, saved = 20 * 4 = 80 => (10 - 80)/100 = -0.7
        assert!((c.net_overhead_per_inst(&m) + 0.7).abs() < 1e-12);
    }

    #[test]
    fn addition_accumulates() {
        let a = Counts {
            insts: 1,
            loads: 2,
            calls: 3,
            ..Counts::new()
        };
        let b = Counts {
            insts: 10,
            loads: 20,
            overflows: 1,
            ..Counts::new()
        };
        let c = a + b;
        assert_eq!(c.insts, 11);
        assert_eq!(c.loads, 22);
        assert_eq!(c.calls, 3);
        assert_eq!(c.overflows, 1);
    }

    #[test]
    fn ratios_handle_zero_instructions() {
        let c = Counts::new();
        assert_eq!(c.access_per_inst(&CostModel::paper()), 0.0);
        assert_eq!(c.net_overhead_per_inst(&CostModel::paper()), 0.0);
        assert_eq!(c.mem_per_inst(), 0.0);
    }
}
