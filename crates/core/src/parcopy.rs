//! Parallel-copy sequentialization (register shuffling).
//!
//! Every transition between two cache states boils down to a *parallel
//! assignment*: each destination register must receive the value currently
//! held by some source register. Sequentializing such an assignment into
//! individual moves — using at most one scratch register for cycles — is a
//! classic compiler problem; the number of emitted moves is exactly the
//! *move cost* the paper charges for stack-manipulation instructions and
//! cache reorganizations (Sections 3.3, 3.4).
//!
//! The algorithm: repeatedly emit moves whose destination is not read by
//! any pending move (tree edges), then break each remaining cycle by saving
//! one register to the scratch. A cycle of length `L ≥ 2` costs `L + 1`
//! moves; trees cost one move per edge; self-moves cost nothing.

use std::fmt;

/// One register-to-register move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move<R> {
    /// Destination register.
    pub dst: R,
    /// Source register.
    pub src: R,
}

impl<R: fmt::Display> fmt::Display for Move<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- {}", self.dst, self.src)
    }
}

/// Sequentialize the parallel assignment `dst[i] <- src[i]`.
///
/// Each destination must appear at most once in `assignment`; sources may
/// repeat (fan-out / duplication is allowed). `scratch` must be distinct
/// from every destination and source; it is only used when the assignment
/// contains cycles.
///
/// Returns the move sequence; executing it in order realizes the parallel
/// assignment.
///
/// # Panics
///
/// Panics if a destination appears twice, or if `scratch` collides with a
/// destination or source.
///
/// # Examples
///
/// ```
/// use stackcache_core::parcopy::{sequentialize, Move};
///
/// // swap r0 and r1 with scratch r2: three moves
/// let moves = sequentialize(&[(0u8, 1u8), (1, 0)], 2);
/// assert_eq!(moves.len(), 3);
///
/// // a simple copy chain needs no scratch
/// let moves = sequentialize(&[(2u8, 1u8), (1, 0)], 9);
/// assert_eq!(moves, vec![Move { dst: 2, src: 1 }, Move { dst: 1, src: 0 }]);
/// ```
pub fn sequentialize<R: Copy + Eq + fmt::Debug>(assignment: &[(R, R)], scratch: R) -> Vec<Move<R>> {
    // Validate.
    for (i, &(dst, src)) in assignment.iter().enumerate() {
        assert!(
            dst != scratch && src != scratch,
            "scratch {scratch:?} collides with assignment"
        );
        for &(dst2, _) in &assignment[i + 1..] {
            assert!(dst != dst2, "destination {dst:?} assigned twice");
        }
    }

    let mut pending: Vec<(R, R)> = assignment
        .iter()
        .copied()
        .filter(|&(d, s)| d != s)
        .collect();
    let mut out = Vec::with_capacity(pending.len() + 1);

    loop {
        // Emit every move whose destination no pending move reads.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let (dst, _) = pending[i];
                let is_read = pending.iter().any(|&(_, s)| s == dst);
                if is_read {
                    i += 1;
                } else {
                    let (dst, src) = pending.swap_remove(i);
                    out.push(Move { dst, src });
                    progressed = true;
                    // restart scan: earlier moves may have become leaves
                    i = 0;
                }
            }
        }
        if pending.is_empty() {
            return out;
        }
        // Every remaining destination is read by another pending move:
        // pure cycles. Break one by saving a destination to scratch.
        let (dst, _) = pending[0];
        out.push(Move {
            dst: scratch,
            src: dst,
        });
        for (_, src) in pending.iter_mut() {
            if *src == dst {
                *src = scratch;
            }
        }
    }
}

/// The number of moves [`sequentialize`] would emit, without materializing
/// the sequence.
///
/// This is the move-cost function used throughout the cost model:
/// non-trivial edges plus one extra move per cycle.
///
/// # Panics
///
/// Panics if a destination appears twice.
#[must_use]
pub fn move_count<R: Copy + Eq + fmt::Debug>(assignment: &[(R, R)]) -> usize {
    for (i, &(dst, _)) in assignment.iter().enumerate() {
        for &(dst2, _) in &assignment[i + 1..] {
            assert!(dst != dst2, "destination {dst:?} assigned twice");
        }
    }
    let nontrivial: Vec<(R, R)> = assignment
        .iter()
        .copied()
        .filter(|&(d, s)| d != s)
        .collect();
    let mut count = nontrivial.len();

    // Count cycles: a register is *in a cycle* if following the unique
    // source chain from it returns to it. Cycles are disjoint; each one of
    // length >= 2 costs one extra move.
    // An edge (d, s) is part of a cycle iff s is also a destination and the
    // chain d -> s -> src(s) -> ... returns to d.
    let src_of = |r: R| nontrivial.iter().find(|&&(d, _)| d == r).map(|&(_, s)| s);
    let mut visited: Vec<R> = Vec::new();
    for &(d, _) in &nontrivial {
        if visited.contains(&d) {
            continue;
        }
        // Walk the chain from d, detecting a return to d.
        let mut cur = d;
        let mut chain = vec![d];
        let cycle = loop {
            match src_of(cur) {
                Some(s) => {
                    if s == d {
                        break true;
                    }
                    if chain.contains(&s) {
                        // joined a cycle not through d
                        break false;
                    }
                    chain.push(s);
                    cur = s;
                }
                None => break false,
            }
        };
        if cycle {
            count += 1;
            visited.extend(chain);
        } else {
            visited.push(d);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Execute a move sequence over a register file and return it.
    fn apply(moves: &[Move<u8>], init: &HashMap<u8, i32>) -> HashMap<u8, i32> {
        let mut regs = init.clone();
        for m in moves {
            let v = regs[&m.src];
            regs.insert(m.dst, v);
        }
        regs
    }

    fn check(assignment: &[(u8, u8)], scratch: u8) {
        // Initialize each register with a unique value.
        let mut init = HashMap::new();
        for r in 0..16u8 {
            init.insert(r, i32::from(r) * 100);
        }
        let moves = sequentialize(assignment, scratch);
        assert_eq!(
            moves.len(),
            move_count(assignment),
            "count matches for {assignment:?}"
        );
        let after = apply(&moves, &init);
        for &(dst, src) in assignment {
            assert_eq!(
                after[&dst], init[&src],
                "dst {dst} should hold old value of {src} for {assignment:?}"
            );
        }
    }

    #[test]
    fn identity_is_free() {
        check(&[(0, 0), (1, 1)], 9);
        assert_eq!(move_count(&[(0u8, 0u8), (1, 1)]), 0);
    }

    #[test]
    fn chain() {
        check(&[(2, 1), (1, 0)], 9);
        assert_eq!(move_count(&[(2u8, 1u8), (1, 0)]), 2);
    }

    #[test]
    fn swap_costs_three() {
        check(&[(0, 1), (1, 0)], 9);
        assert_eq!(move_count(&[(0u8, 1u8), (1, 0)]), 3);
    }

    #[test]
    fn rotate_three_costs_four() {
        check(&[(0, 1), (1, 2), (2, 0)], 9);
        assert_eq!(move_count(&[(0u8, 1u8), (1, 2), (2, 0)]), 4);
    }

    #[test]
    fn duplication_fan_out() {
        check(&[(1, 0), (2, 0)], 9);
        assert_eq!(move_count(&[(1u8, 0u8), (2, 0)]), 2);
    }

    #[test]
    fn fan_out_plus_overwrite() {
        // r1 and r2 get r0's value while r0 gets r3's: tree, 3 moves.
        check(&[(1, 0), (2, 0), (0, 3)], 9);
        assert_eq!(move_count(&[(1u8, 0u8), (2, 0), (0, 3)]), 3);
    }

    #[test]
    fn cycle_plus_tree() {
        // swap r0,r1 and also copy r0's old value to r2
        check(&[(0, 1), (1, 0), (2, 0)], 9);
        assert_eq!(move_count(&[(0u8, 1u8), (1, 0), (2, 0)]), 4);
    }

    #[test]
    fn two_disjoint_cycles() {
        check(&[(0, 1), (1, 0), (2, 3), (3, 2)], 9);
        assert_eq!(move_count(&[(0u8, 1u8), (1, 0), (2, 3), (3, 2)]), 6);
    }

    #[test]
    fn long_cycle() {
        let a: Vec<(u8, u8)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        check(&a, 9);
        assert_eq!(move_count(&a), 6);
    }

    #[test]
    fn tail_into_cycle() {
        // r4 <- r0 (tail), and 0 -> 1 -> 0 cycle
        check(&[(4, 0), (0, 1), (1, 0)], 9);
        assert_eq!(move_count(&[(4u8, 0u8), (0, 1), (1, 0)]), 4);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_destination_panics() {
        let _ = sequentialize(&[(0u8, 1u8), (0, 2)], 9);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn scratch_collision_panics() {
        let _ = sequentialize(&[(0u8, 1u8)], 1);
    }

    #[test]
    fn exhaustive_small_permutations() {
        // All functions from 3 destinations to 3 sources.
        for a in 0..3u8 {
            for b in 0..3u8 {
                for c in 0..3u8 {
                    check(&[(0, a), (1, b), (2, c)], 9);
                }
            }
        }
    }
}
