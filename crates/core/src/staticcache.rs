//! Static stack caching (Section 5): the *compiler* tracks the cache state.
//!
//! The compiler walks every basic block with a finite state machine over
//! the cache organization. Each instruction is compiled in a known cache
//! state, so:
//!
//! * pure stack manipulations whose result assignment is itself a state of
//!   the organization compile to *nothing* — not even a dispatch,
//! * there is no per-state interpreter copy and no dispatch-time state
//!   tracking (direct threading stays fast),
//! * at basic-block boundaries the code *reconciles* the cache to a
//!   canonical state (the control-flow convention), and calls/returns use
//!   the same state as a calling convention.
//!
//! [`compile`] produces a [`StaticProgram`]: a per-instruction cost table
//! (plus static statistics). Because each original program point is
//! compiled in exactly one cache state, the *dynamic* cost of the
//! statically cached program is obtained by executing the original program
//! and summing the per-point costs — that is what [`StaticRegime`] does,
//! mirroring the paper's measurement setup for Figs. 24 and 25.
//!
//! [`StaticOptions::optimal`] enables the linear-time two-pass optimal code
//! generator the paper sketches (a dynamic program over cache states within
//! each basic block, BURS-style) instead of the greedy state walk.

use std::collections::{BTreeMap, HashMap};

use stackcache_vm::{Cfg, EffectKind, ExecEvent, ExecObserver, Inst, Program};

use crate::cost::Counts;
use crate::engine::{compute_transition, compute_transition_all, reconcile, OpSig, Policy, Trans};
use crate::org::Org;
use crate::state::StateId;

/// Options for the static-caching compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticOptions {
    /// Depth of the canonical state used at basic-block boundaries and as
    /// the calling convention (Fig. 24's x-axis).
    pub canonical: u8,
    /// Overflow followup depth for in-block transitions. The paper's
    /// experiments use the canonical state for this as well.
    pub overflow_depth: u8,
    /// Use the two-pass optimal code generator instead of the greedy walk.
    pub optimal: bool,
    /// Let a block with a unique predecessor inherit that predecessor's
    /// exit state instead of resetting to canonical (the paper's "branch
    /// performs the transition to the state at the branch target").
    pub threaded_joins: bool,
}

impl StaticOptions {
    /// Canonical and overflow followup depth `c`, greedy codegen.
    #[must_use]
    pub fn with_canonical(c: u8) -> Self {
        StaticOptions {
            canonical: c,
            overflow_depth: c,
            optimal: false,
            threaded_joins: false,
        }
    }
}

impl Default for StaticOptions {
    fn default() -> Self {
        StaticOptions::with_canonical(2)
    }
}

/// Compile-time cost of one original instruction site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstCost {
    /// Whether the instruction still executes a dispatch (false for
    /// statically eliminated stack manipulations).
    pub dispatched: bool,
    /// Loads from the stack in memory (operation + reconciliation).
    pub loads: u16,
    /// Stores to the stack in memory.
    pub stores: u16,
    /// Register moves.
    pub moves: u16,
    /// Stack-pointer updates.
    pub updates: u16,
    /// Cache state this site was compiled in.
    pub state_in: StateId,
}

impl InstCost {
    fn add_trans(&mut self, t: &Trans) {
        self.loads += t.loads;
        self.stores += t.stores;
        self.moves += t.moves;
        self.updates += t.updates;
    }

    fn add_reconcile(&mut self, c: &crate::engine::ReconcileCost) {
        self.loads += c.loads;
        self.stores += c.stores;
        self.moves += c.moves;
        self.updates += c.updates;
    }
}

/// Static compilation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of basic blocks compiled.
    pub blocks: usize,
    /// Instruction sites compiled away entirely (no dispatch).
    pub eliminated_sites: usize,
    /// Instruction sites that still dispatch.
    pub emitted_sites: usize,
    /// Block boundaries that reconciled to the canonical state.
    pub reconciled_edges: usize,
    /// Block boundaries that inherited a predecessor state
    /// (`threaded_joins`).
    pub inherited_edges: usize,
}

/// A statically compiled program: per-site costs for the original program.
#[derive(Debug, Clone)]
pub struct StaticProgram {
    costs: Vec<InstCost>,
    /// `?dup`-on-zero alternative costs.
    alt: HashMap<usize, InstCost>,
    /// Compilation statistics.
    pub stats: CompileStats,
}

impl StaticProgram {
    /// The compiled cost of the instruction at `ip` for an execution with
    /// the given resolved event.
    #[must_use]
    pub fn cost_for(&self, ev: &ExecEvent) -> &InstCost {
        if matches!(ev.inst, Inst::QDup)
            && ev.effect.kind == EffectKind::Shuffle(stackcache_vm::perm::QDUP_ZERO)
        {
            if let Some(c) = self.alt.get(&ev.ip) {
                return c;
            }
        }
        &self.costs[ev.ip]
    }

    /// The compiled cost table, indexed by original instruction index.
    #[must_use]
    pub fn costs(&self) -> &[InstCost] {
        &self.costs
    }
}

/// One compilation step: an instruction's cache-relevant signature.
fn step_sig(inst: &Inst) -> StepKind {
    let eff = inst.effect();
    match eff.kind {
        EffectKind::Normal => StepKind::Op(OpSig::normal(eff.pops, eff.pushes)),
        EffectKind::Shuffle(p) => StepKind::Op(OpSig::shuffle(eff.pops, p)),
        EffectKind::DynamicShuffle => StepKind::QDup,
        EffectKind::Opaque => StepKind::Op(OpSig::opaque(eff.pops, eff.pushes)),
        // Control flow: only the data-stack consumption matters here; the
        // reconciliation is handled at the block boundary.
        EffectKind::Branch
        | EffectKind::CondBranch
        | EffectKind::Call
        | EffectKind::Return
        | EffectKind::Halt => StepKind::Op(OpSig::normal(eff.pops, 0)),
    }
}

#[derive(Debug, Clone, Copy)]
enum StepKind {
    Op(OpSig),
    /// `?dup`: compiled as a cache flush so both outcomes end in the same
    /// (empty) state; the zero variant gets an alternative cost entry.
    QDup,
}

/// Weight of a transition for the optimal planner: access cycles plus the
/// dispatch unless eliminated (paper weights, dispatch = 4).
fn trans_weight(t: &Trans) -> u32 {
    let access =
        u32::from(t.loads) + u32::from(t.stores) + u32::from(t.moves) + u32::from(t.updates);
    access + if t.eliminated { 0 } else { 4 }
}

/// Compile `program` for static stack caching over `org`.
///
/// # Panics
///
/// Panics if `org` lacks the canonical state of depth `opts.canonical`.
#[must_use]
pub fn compile(program: &Program, org: &Org, opts: &StaticOptions) -> StaticProgram {
    let canonical = org
        .canonical_of_depth(opts.canonical)
        .expect("organization must contain the canonical state");
    let policy = Policy::on_demand(opts.overflow_depth);
    let insts = program.insts();
    let cfg = Cfg::build(program);
    let blocks = cfg.blocks();

    let mut costs = vec![InstCost::default(); insts.len()];
    let mut alt: HashMap<usize, InstCost> = HashMap::new();
    let mut stats = CompileStats {
        blocks: blocks.len(),
        ..CompileStats::default()
    };

    // ---- entry-state assignment (threaded joins) -------------------------
    // A block may inherit its unique predecessor's exit state if: it is not
    // the program entry, not a call target, not a call-return point, and
    // exactly one block branches/falls through to it — and that predecessor
    // has exactly one successor and appears earlier in program order.
    let mut call_targets: Vec<usize> = Vec::new();
    for inst in insts {
        if let Inst::Call(t) = inst {
            call_targets.push(*t as usize);
        }
    }
    // predecessor lists by block leader
    let mut preds: HashMap<usize, Vec<usize>> = HashMap::new();
    for (bi, b) in blocks.iter().enumerate() {
        for &s in &b.successors {
            preds.entry(s).or_default().push(bi);
        }
    }
    let leader_of = |ip: usize| -> usize { blocks.partition_point(|b| b.end <= ip) };
    let mut inherits_from: HashMap<usize, usize> = HashMap::new(); // block idx -> pred block idx
    if opts.threaded_joins {
        for (bi, b) in blocks.iter().enumerate() {
            let start = b.start;
            if start == program.entry() || call_targets.contains(&start) {
                continue;
            }
            // call-return points get the calling-convention state anyway,
            // which equals canonical; treat them as canonical entries.
            let Some(ps) = preds.get(&start) else {
                continue;
            };
            if ps.len() != 1 {
                continue;
            }
            let p = ps[0];
            if p >= bi {
                continue; // back edge: keep canonical
            }
            // predecessor must have this block as its only successor and
            // must not be a call block (call returns in canonical state).
            if blocks[p].successors.len() == 1 && blocks[p].call_target.is_none() {
                // The predecessor terminator must not be a call-return edge.
                inherits_from.insert(bi, p);
            }
        }
    }

    // exit states of processed blocks (state after last step, before any
    // reconcile), for inheritance.
    let mut exit_state: HashMap<usize, StateId> = HashMap::new();

    for (bi, b) in blocks.iter().enumerate() {
        let entry = match inherits_from.get(&bi) {
            Some(p) => *exit_state.get(p).unwrap_or(&canonical),
            None => canonical,
        };

        // Build the step list.
        let steps: Vec<(usize, StepKind)> = (b.start..b.end)
            .map(|ip| (ip, step_sig(&insts[ip])))
            .collect();

        // Plan transitions (greedy or optimal DP).
        let last_inst = insts[b.end - 1];
        let inherited_exit = blocks
            .iter()
            .enumerate()
            .any(|(ci, _)| inherits_from.get(&ci) == Some(&bi));
        // A block needs a final reconcile unless it ends in halt, or its
        // unique successor inherits its exit state.
        let needs_reconcile = !matches!(last_inst, Inst::Halt) && !inherited_exit;
        let final_target = if needs_reconcile {
            Some(canonical)
        } else {
            None
        };

        let plan = if opts.optimal {
            plan_optimal(org, &policy, entry, &steps, final_target)
        } else {
            plan_greedy(org, &policy, entry, &steps)
        };

        // Attribute costs.
        let mut state = entry;
        for ((ip, kind), t) in steps.iter().zip(&plan) {
            let mut c = InstCost {
                dispatched: !t.eliminated,
                state_in: state,
                ..InstCost::default()
            };
            c.add_trans(t);
            if t.eliminated {
                stats.eliminated_sites += 1;
            } else {
                stats.emitted_sites += 1;
            }
            if let StepKind::QDup = kind {
                // Alternative cost for the zero outcome.
                let tz = compute_transition(org, &policy, state, &OpSig::opaque(1, 1), 0);
                debug_assert_eq!(
                    tz.next, t.next,
                    "?dup variants must agree on the next state"
                );
                let mut cz = InstCost {
                    dispatched: true,
                    state_in: state,
                    ..InstCost::default()
                };
                cz.add_trans(&tz);
                alt.insert(*ip, cz);
            }
            state = t.next;
            costs[*ip] = c;
        }

        // Final reconcile, charged to the block's last instruction.
        if needs_reconcile {
            let rc = reconcile(org.state(state), org.state(canonical));
            costs[b.end - 1].add_reconcile(&rc);
            // ?dup as terminator would need its alt reconciled too, but
            // ?dup never ends a block (it is not a block-ender).
            stats.reconciled_edges += 1;
            state = canonical;
        } else if inherited_exit {
            stats.inherited_edges += 1;
        }
        exit_state.insert(bi, state);
        let _ = leader_of;
    }

    StaticProgram { costs, alt, stats }
}

/// Greedy plan: locally cheapest transition per step.
fn plan_greedy(
    org: &Org,
    policy: &Policy,
    entry: StateId,
    steps: &[(usize, StepKind)],
) -> Vec<Trans> {
    let mut state = entry;
    let mut plan = Vec::with_capacity(steps.len());
    for (_, kind) in steps {
        let t = match kind {
            StepKind::Op(sig) => compute_transition(org, policy, state, sig, 0),
            StepKind::QDup => compute_transition(org, policy, state, &OpSig::opaque(1, 2), 0),
        };
        state = t.next;
        plan.push(t);
    }
    plan
}

/// Optimal plan: dynamic program over cache states within the block,
/// minimizing total weighted cost including the final reconciliation —
/// the two-pass (cost pass + emit pass) scheme of Section 5.
fn plan_optimal(
    org: &Org,
    policy: &Policy,
    entry: StateId,
    steps: &[(usize, StepKind)],
    final_target: Option<StateId>,
) -> Vec<Trans> {
    // frontier: state -> (cost so far, step index chain). BTreeMaps, not
    // HashMaps: equal-cost ties are broken by the first predecessor seen,
    // so iteration order must be deterministic or recompiling the same
    // program can park sites in different (equally cheap) states.
    #[derive(Clone, Copy)]
    struct Entry {
        cost: u32,
        prev: StateId,
        trans: Trans,
    }
    let mut frontiers: Vec<BTreeMap<StateId, Entry>> = Vec::with_capacity(steps.len());
    let mut cur: BTreeMap<StateId, u32> = BTreeMap::new();
    cur.insert(entry, 0);

    for (_, kind) in steps {
        let mut next_front: BTreeMap<StateId, Entry> = BTreeMap::new();
        for (&s, &c) in &cur {
            let cands = match kind {
                StepKind::Op(sig) => compute_transition_all(org, policy, s, sig, 0),
                StepKind::QDup => {
                    vec![compute_transition(org, policy, s, &OpSig::opaque(1, 2), 0)]
                }
            };
            for t in cands {
                let nc = c + trans_weight(&t);
                let e = next_front.entry(t.next).or_insert(Entry {
                    cost: u32::MAX,
                    prev: s,
                    trans: t,
                });
                if nc < e.cost {
                    *e = Entry {
                        cost: nc,
                        prev: s,
                        trans: t,
                    };
                }
            }
        }
        cur = next_front.iter().map(|(&s, e)| (s, e.cost)).collect();
        frontiers.push(next_front);
    }

    // Pick the best final state.
    let (mut state, _) = cur
        .iter()
        .map(|(&s, &c)| {
            let fin = match final_target {
                Some(t) => reconcile(org.state(s), org.state(t)).total(),
                None => 0,
            };
            (s, c + fin)
        })
        .min_by_key(|&(s, c)| (c, s))
        .expect("frontier is never empty");

    // Backtrack.
    let mut plan = vec![Trans::default(); steps.len()];
    for i in (0..steps.len()).rev() {
        let e = frontiers[i][&state];
        plan[i] = e.trans;
        state = e.prev;
    }
    plan
}

/// Execution-counting observer for a statically compiled program: executes
/// the *original* program and charges each site its compiled cost
/// (Figs. 24, 25).
#[derive(Debug, Clone)]
pub struct StaticRegime<'a> {
    /// Accumulated counts.
    pub counts: Counts,
    prog: &'a StaticProgram,
}

impl<'a> StaticRegime<'a> {
    /// Count executions of `prog`'s sites.
    #[must_use]
    pub fn new(prog: &'a StaticProgram) -> Self {
        StaticRegime {
            counts: Counts::new(),
            prog,
        }
    }
}

impl ExecObserver for StaticRegime<'_> {
    fn event(&mut self, ev: &ExecEvent) {
        let e = &ev.effect;
        let c = &mut self.counts;
        let site = self.prog.cost_for(ev);
        c.insts += 1;
        if site.dispatched {
            c.dispatches += 1;
        }
        c.loads += u64::from(site.loads);
        c.stores += u64::from(site.stores);
        c.moves += u64::from(site.moves);
        c.updates += u64::from(site.updates);
        c.rloads += u64::from(e.rloads);
        c.rstores += u64::from(e.rstores);
        if e.rnet != 0 {
            c.rupdates += 1;
        }
        if matches!(e.kind, EffectKind::Call) {
            c.calls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::regime::SimpleRegime;
    use stackcache_vm::{exec, program_of, Machine, ProgramBuilder};

    fn org4() -> Org {
        Org::static_shuffle(4)
    }

    fn count_static(p: &Program, org: &Org, opts: &StaticOptions) -> Counts {
        let sp = compile(p, org, opts);
        let mut reg = StaticRegime::new(&sp);
        let mut m = Machine::with_memory(4096);
        exec::run_with_observer(p, &mut m, 1_000_000, &mut reg).expect("program runs");
        reg.counts
    }

    #[test]
    fn shuffles_are_eliminated() {
        // swap and dup applied in canonical states compile to nothing; a
        // shuffle applied in an already-shuffled state is not free (the
        // organization only has one-shuffle states, as in the paper).
        let p = program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Swap,
            Inst::Add,
            Inst::Lit(2),
            Inst::Dup,
            Inst::Mul,
            Inst::Add,
        ]);
        let org = org4();
        let sp = compile(&p, &org, &StaticOptions::with_canonical(0));
        assert!(sp.stats.eliminated_sites >= 2, "stats: {:?}", sp.stats);
        let counts = count_static(&p, &org, &StaticOptions::with_canonical(0));
        assert!(counts.dispatches < counts.insts);
        // one straight-line block: no branches, everything stays cached
        assert_eq!(counts.loads, 0);
        assert_eq!(counts.moves, 0);
    }

    #[test]
    fn net_overhead_can_be_negative() {
        // Eliminated dispatches (4 cycles each) can outweigh access costs.
        let p = program_of(&[
            Inst::Lit(1),
            Inst::Lit(2),
            Inst::Swap,
            Inst::Swap,
            Inst::Swap,
            Inst::Swap,
            Inst::Add,
        ]);
        let counts = count_static(&p, &org4(), &StaticOptions::with_canonical(0));
        assert!(counts.net_overhead_per_inst(&CostModel::paper()) < 0.0);
    }

    #[test]
    fn branches_reconcile_to_canonical() {
        // if/else: both arms end reconciled, so costs are consistent.
        let mut b = ProgramBuilder::new();
        let else_l = b.new_label();
        let end_l = b.new_label();
        b.push(Inst::Lit(1));
        b.push(Inst::Lit(0));
        b.branch_if_zero(else_l);
        b.push(Inst::OnePlus);
        b.branch(end_l);
        b.bind(else_l).unwrap();
        b.push(Inst::OneMinus);
        b.bind(end_l).unwrap();
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let org = org4();
        let sp = compile(&p, &org, &StaticOptions::with_canonical(1));
        assert!(sp.stats.reconciled_edges >= 2);
        // Execute both paths and ensure the cost model is well-defined.
        let mut reg = StaticRegime::new(&sp);
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 1000, &mut reg).unwrap();
        // lit, lit, ?branch (taken), 1-, halt
        assert_eq!(reg.counts.insts, 5);
    }

    #[test]
    fn calls_use_the_calling_convention() {
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(3));
        b.call(w);
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Dup);
        b.push(Inst::Mul);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let org = org4();
        for c in 0..=3u8 {
            let counts = count_static(&p, &org, &StaticOptions::with_canonical(c));
            assert_eq!(counts.insts, 6, "canonical {c}");
        }
    }

    #[test]
    fn qdup_variants_agree_on_state() {
        let p = program_of(&[
            Inst::Lit(0),
            Inst::QDup,
            Inst::Drop,
            Inst::Lit(2),
            Inst::QDup,
            Inst::Add,
        ]);
        let counts = count_static(&p, &org4(), &StaticOptions::with_canonical(2));
        assert_eq!(counts.insts, 7);
    }

    /// The second ROADMAP correctness suspect, promoted to a named
    /// deterministic test: `?dup`'s alternative (zero-outcome) cost under
    /// `optimal` codegen. The optimal planner may park the site in a
    /// non-canonical state; the zero outcome must then be charged its own
    /// alternative cost — not the dup variant's — while both variants
    /// agree on the state every later site was compiled in.
    #[test]
    fn qdup_alternative_cost_paths_under_optimal_codegen() {
        use stackcache_vm::perm::QDUP_ZERO;
        use stackcache_vm::{EffectKind, ExecEvent};

        /// Observes a run, resolving each event's compiled cost exactly
        /// like [`StaticRegime`], and records how the `?dup` site was
        /// charged.
        struct QDupWatch<'a> {
            sp: &'a StaticProgram,
            zero: Option<InstCost>,
            nonzero: Option<InstCost>,
        }
        impl ExecObserver for QDupWatch<'_> {
            fn event(&mut self, ev: &ExecEvent) {
                if !matches!(ev.inst, Inst::QDup) {
                    return;
                }
                let c = *self.sp.cost_for(ev);
                if ev.effect.kind == EffectKind::Shuffle(QDUP_ZERO) {
                    self.zero = Some(c);
                } else {
                    self.nonzero = Some(c);
                }
            }
        }

        // Three lits fill a 3-register cache, so the site sits in a deep
        // state where the dup and zero variants cost differently.
        let variant = |top: i64| {
            program_of(&[
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::Lit(top),
                Inst::QDup,
                Inst::Drop,
                Inst::Drop,
                Inst::Drop,
                Inst::Halt,
            ])
        };
        let org = Org::static_shuffle(3);
        for c in 0..=3u8 {
            let mut opts = StaticOptions::with_canonical(c);
            opts.optimal = true;
            for threaded in [false, true] {
                opts.threaded_joins = threaded;
                let mut charged = [None, None];
                for (i, top) in [0i64, 5].into_iter().enumerate() {
                    let p = variant(top);
                    let sp = compile(&p, &org, &opts);
                    let mut watch = QDupWatch {
                        sp: &sp,
                        zero: None,
                        nonzero: None,
                    };
                    let mut reg = StaticRegime::new(&sp);
                    let mut m = Machine::with_memory(4096);
                    let out = {
                        let mut obs: Vec<&mut dyn stackcache_vm::ExecObserver> =
                            vec![&mut watch, &mut reg];
                        exec::run_with_observer(&p, &mut m, 1_000_000, &mut obs)
                            .expect("both variants run clean")
                    };
                    // the zero variant executes two fewer drops' worth of
                    // stack, but every executed site is charged once
                    assert_eq!(reg.counts.insts, out.executed, "canonical {c}");
                    assert!(reg.counts.dispatches <= reg.counts.insts);
                    charged[i] = if top == 0 { watch.zero } else { watch.nonzero };
                    assert!(charged[i].is_some(), "?dup never resolved a cost");
                }
                let (zero, nonzero) = (charged[0].unwrap(), charged[1].unwrap());
                // both outcomes were compiled in the same state...
                assert_eq!(zero.state_in, nonzero.state_in, "canonical {c}");
                // ...but from a full cache the dup variant must pay for
                // the extra item (spill or deeper state) while the zero
                // variant keeps the depth — the alternative entry, not
                // the base cost, must be what the zero path is charged
                assert_ne!(zero, nonzero, "canonical {c}, threaded {threaded}");
                assert!(zero.dispatched, "?dup always dispatches");
            }
        }
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let model = CostModel::paper();
        let org = org4();
        let programs = [
            program_of(&[
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::Swap,
                Inst::Over,
                Inst::Rot,
                Inst::Add,
                Inst::Sub,
            ]),
            program_of(&[
                Inst::Lit(5),
                Inst::Dup,
                Inst::Dup,
                Inst::Mul,
                Inst::Swap,
                Inst::Tuck,
                Inst::Add,
                Inst::Sub,
            ]),
        ];
        for p in &programs {
            for c in 0..=3u8 {
                let greedy = count_static(p, &org, &StaticOptions::with_canonical(c));
                let mut o = StaticOptions::with_canonical(c);
                o.optimal = true;
                let optimal = count_static(p, &org, &o);
                let g = greedy.access_cycles(&model) as i64 + 4 * (greedy.dispatches as i64);
                let ob = optimal.access_cycles(&model) as i64 + 4 * (optimal.dispatches as i64);
                assert!(
                    ob <= g,
                    "optimal {ob} worse than greedy {g} at canonical {c}"
                );
            }
        }
    }

    #[test]
    fn threaded_joins_reduce_reconciliations() {
        // An unconditional branch to a target with no other predecessors:
        // the branch can carry the cache state to the target.
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push(Inst::Lit(1));
        b.push(Inst::Lit(2));
        b.branch(l);
        b.bind(l).unwrap();
        b.push(Inst::Add);
        b.push(Inst::Halt);
        let p = b.finish().unwrap();
        let org = org4();
        let plain = compile(&p, &org, &StaticOptions::with_canonical(2));
        let mut o = StaticOptions::with_canonical(2);
        o.threaded_joins = true;
        let threaded = compile(&p, &org, &o);
        assert!(threaded.stats.inherited_edges >= 1);
        assert!(threaded.stats.reconciled_edges < plain.stats.reconciled_edges);
    }

    #[test]
    fn threaded_joins_back_edge_keeps_canonical() {
        // A chain of single-successor blocks ending in a loop. The chain
        // blocks (c1, c2) inherit their unique predecessor's exit state;
        // the loop body — whose only predecessor is the backward branch
        // from a *later* block — must keep the canonical entry state (the
        // "back edge: keep canonical" branch of the entry-state
        // assignment).
        let mut b = ProgramBuilder::new();
        let body = b.new_label();
        let c1 = b.new_label();
        let c2 = b.new_label();
        let cond = b.new_label();
        let exit = b.new_label();
        b.entry_here();
        b.push(Inst::Lit(5)); // ip 0
        b.branch(cond); // ip 1
        b.bind(body).unwrap();
        b.push(Inst::Dup); // ip 2: deepens the cache past canonical
        b.branch(c1); // ip 3
        b.bind(c1).unwrap();
        b.push(Inst::OneMinus); // ip 4: inherits body's deep exit state
        b.branch(c2); // ip 5
        b.bind(c2).unwrap();
        b.push(Inst::Nip); // ip 6: inherits c1's deep exit state
        b.branch(cond); // ip 7
        b.bind(cond).unwrap();
        b.push(Inst::Dup); // ip 8 (join of entry and c2: canonical)
        b.push(Inst::ZeroGt); // ip 9
        b.branch_if_zero(exit); // ip 10
        b.branch(body); // ip 11: the only edge into `body`
        b.bind(exit).unwrap();
        b.push(Inst::Dot); // ip 12
        b.push(Inst::Halt); // ip 13
        let p = b.finish().unwrap();

        let org = Org::static_shuffle(3);
        let mut o = StaticOptions::with_canonical(1);
        o.threaded_joins = true;
        let sp = compile(&p, &org, &o);

        let canonical = org.canonical_of_depth(1).expect("canonical state");
        assert!(
            sp.stats.inherited_edges >= 2,
            "chain blocks inherit: {:?}",
            sp.stats
        );
        // the chain really carried a non-canonical (depth-2) state across
        // its edges — the inherited entry states are the predecessors'
        // exit states, not the canonical depth-1 state
        assert_ne!(sp.costs()[4].state_in, canonical, "c1 inherits body's exit");
        assert_ne!(sp.costs()[6].state_in, canonical, "c2 inherits c1's exit");
        // the back-edge target did not inherit the ft-block's state
        assert_eq!(
            sp.costs()[2].state_in,
            canonical,
            "back edge target keeps the canonical entry state"
        );

        // and the per-site cost accounting still charges every executed
        // instruction exactly once
        let mut reg = StaticRegime::new(&sp);
        let mut m = Machine::with_memory(4096);
        let out = exec::run_with_observer(&p, &mut m, 1_000_000, &mut reg).expect("runs");
        assert_eq!(m.output_string(), "0 ");
        assert_eq!(reg.counts.insts, out.executed);
        assert!(reg.counts.dispatches <= reg.counts.insts);
    }

    #[test]
    fn static_beats_simple_on_shuffle_heavy_code() {
        let insts: Vec<Inst> = std::iter::repeat_n(
            [
                Inst::Lit(1),
                Inst::Lit(2),
                Inst::Swap,
                Inst::Over,
                Inst::Add,
                Inst::Add,
                Inst::Drop,
            ],
            10,
        )
        .flatten()
        .collect();
        let p = program_of(&insts);
        let org = org4();
        let stat = count_static(&p, &org, &StaticOptions::with_canonical(2));

        let mut simple = SimpleRegime::new();
        let mut m = Machine::with_memory(64);
        exec::run_with_observer(&p, &mut m, 10_000, &mut simple).unwrap();

        let model = CostModel::paper();
        assert!(
            stat.net_overhead_per_inst(&model) < simple.counts.access_per_inst(&model),
            "static {} vs simple {}",
            stat.net_overhead_per_inst(&model),
            simple.counts.access_per_inst(&model)
        );
    }

    #[test]
    fn deep_canonical_states_cost_more_on_call_heavy_code() {
        // every call/return reconciles; with canonical=0 reconciliation is
        // cheap on call-heavy code with shallow stacks.
        let mut b = ProgramBuilder::new();
        let w = b.new_label();
        b.entry_here();
        for _ in 0..20 {
            b.call(w);
        }
        b.push(Inst::Halt);
        b.bind(w).unwrap();
        b.push(Inst::Lit(1));
        b.push(Inst::Drop);
        b.push(Inst::Return);
        let p = b.finish().unwrap();
        let org = org4();
        let c0 = count_static(&p, &org, &StaticOptions::with_canonical(0));
        let c3 = count_static(&p, &org, &StaticOptions::with_canonical(3));
        let model = CostModel::paper();
        assert!(c0.access_cycles(&model) <= c3.access_cycles(&model));
    }
}
