//! Graphviz export of cache state machines (Figs. 13, 16 and 17).
//!
//! The paper illustrates organizations as state-transition diagrams:
//! Fig. 13 is the three-state machine of a two-register minimal cache,
//! Fig. 17 a two-register organization allowing one duplication. Those
//! diagrams are regenerated here for *any* [`Org`] and [`Policy`]:
//! [`state_machine_dot`] renders the states and, for a chosen set of
//! stack effects, the transitions with their costs.

use std::fmt::Write as _;

use crate::engine::{compute_transition, OpSig, Policy, SigKind};
use crate::org::Org;
use crate::state::StateId;

/// A labelled stack effect to draw transitions for.
///
/// The paper labels edges `w--`, `--w`, `ww--w` and by the names of the
/// stack-manipulation words.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSpec {
    /// Edge label (e.g. `"--w"` for a push, `"dup"`).
    pub label: &'static str,
    /// The operation.
    pub sig: OpSig,
}

/// The edge set of Fig. 13: pushes, pops and a two-to-one operation.
#[must_use]
pub fn fig13_edges() -> Vec<EdgeSpec> {
    vec![
        EdgeSpec {
            label: "--w",
            sig: OpSig::normal(0, 1),
        },
        EdgeSpec {
            label: "w--",
            sig: OpSig::normal(1, 0),
        },
        EdgeSpec {
            label: "ww--w",
            sig: OpSig::normal(2, 1),
        },
    ]
}

/// The edge set of Fig. 17: the classic stack-manipulation words.
#[must_use]
pub fn fig17_edges() -> Vec<EdgeSpec> {
    use stackcache_vm::perm;
    vec![
        EdgeSpec {
            label: "dup",
            sig: OpSig::shuffle(1, perm::DUP),
        },
        EdgeSpec {
            label: "over",
            sig: OpSig::shuffle(2, perm::OVER),
        },
        EdgeSpec {
            label: "swap",
            sig: OpSig::shuffle(2, perm::SWAP),
        },
        EdgeSpec {
            label: "drop",
            sig: OpSig::shuffle(1, perm::DROP),
        },
    ]
}

/// Render `org`'s state machine as Graphviz `dot`, with one edge per
/// state × [`EdgeSpec`].
///
/// Edges that move no data and execute as pure state changes (statically
/// eliminable shuffles) are drawn bold; edges that touch memory are
/// dashed and annotated with their load/store counts.
#[must_use]
pub fn state_machine_dot(org: &Org, policy: &Policy, edges: &[EdgeSpec]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", org.name());
    let _ = writeln!(out, "    rankdir=LR;");
    let _ = writeln!(out, "    node [shape=box, fontname=\"monospace\"];");
    for (i, state) in org.states().iter().enumerate() {
        let label = if state.depth() == 0 {
            "empty".to_string()
        } else {
            state.to_string()
        };
        let _ = writeln!(out, "    s{i} [label=\"{label}\"];");
    }
    for i in 0..org.state_count() {
        let from = StateId(i as u32);
        for e in edges {
            // shuffles need their inputs; skip edges that cannot fire
            if matches!(e.sig.kind, SigKind::Shuffle(_)) && org.state(from).depth() < e.sig.pops {
                continue;
            }
            let t = compute_transition(org, policy, from, &e.sig, 8);
            let mut label = e.label.to_string();
            let mut style = "solid";
            if t.eliminated {
                style = "bold";
            }
            if t.loads + t.stores > 0 {
                style = "dashed";
                let _ = write!(label, " ({}L/{}S)", t.loads, t.stores);
            } else if t.moves > 0 {
                let _ = write!(label, " ({}M)", t.moves);
            }
            let _ = writeln!(
                out,
                "    s{i} -> s{} [label=\"{label}\", style={style}];",
                t.next.index()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_machine_has_three_states_and_push_pop_edges() {
        let org = Org::minimal(2);
        let dot = state_machine_dot(&org, &Policy::on_demand(2), &fig13_edges());
        assert!(dot.contains("digraph"));
        // three states: empty, [r0], [r0 r1]
        assert!(dot.contains("s0"));
        assert!(dot.contains("s2"));
        assert!(dot.contains("empty"));
        assert!(dot.contains("[r0 r1]"));
        // pushes from the full state spill (dashed, 1 store)
        assert!(dot.contains("1S"), "{dot}");
        // well-formed: one closing brace at the end
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn fig17_machine_marks_free_shuffles_bold() {
        let org = Org::one_dup(2);
        let dot = state_machine_dot(&org, &Policy::on_demand(2), &fig17_edges());
        assert!(
            dot.contains("style=bold"),
            "some shuffles are pure state changes:\n{dot}"
        );
        assert!(dot.contains("dup"));
        assert!(dot.contains("swap"));
    }

    #[test]
    fn every_edge_points_at_a_real_state() {
        let org = Org::minimal(3);
        let dot = state_machine_dot(&org, &Policy::on_demand(3), &fig13_edges());
        for line in dot.lines() {
            if let Some(arrow) = line.find("->") {
                let dst = line[arrow + 2..].trim().split(' ').next().unwrap();
                let idx: usize = dst.trim_start_matches('s').parse().unwrap();
                assert!(idx < org.state_count());
            }
        }
    }
}
