//! The Hasegawa–Shigei random-walk model `[HS85]`.
//!
//! The paper's Section 6 contrasts measured overflow behaviour with the
//! random-walk model of stack activity, "where pushes and pops occur
//! equally likely irrespective of previous events", and finds that real
//! programs violate it ("there's a very strong tendency to go down after
//! going up"). [`random_walk_program`] generates an actual VM program whose
//! data-stack depth performs that random walk, so the same instrumentation
//! pipeline can be run on model traces and on real workloads.

use stackcache_vm::{Inst, Program, ProgramBuilder, Rng};

/// Configuration of a random-walk trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkConfig {
    /// Number of push/pop steps.
    pub steps: usize,
    /// Probability of a push at each step (the classic model uses 0.5).
    pub push_probability: f64,
    /// RNG seed (traces are deterministic given the seed).
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            steps: 100_000,
            push_probability: 0.5,
            seed: 0x4157_4B4C,
        }
    }
}

/// Generate a straight-line program whose stack depth performs the `[HS85]`
/// random walk: each step pushes (a literal) or pops (`drop`) with the
/// configured probability, reflecting at depth 0.
///
/// The program drains the stack and halts at the end, so it runs cleanly on
/// every interpreter in the workspace.
///
/// # Panics
///
/// Panics if `push_probability` is outside `[0, 1]`.
#[must_use]
pub fn random_walk_program(config: &RandomWalkConfig) -> Program {
    assert!(
        (0.0..=1.0).contains(&config.push_probability),
        "push_probability must be within [0, 1]"
    );
    let mut rng = Rng::new(config.seed);
    let mut b = ProgramBuilder::new();
    let mut depth: u64 = 0;
    for i in 0..config.steps {
        if depth == 0 || rng.chance(config.push_probability) {
            b.push(Inst::Lit(i as i64));
            depth += 1;
        } else {
            b.push(Inst::Drop);
            depth -= 1;
        }
    }
    for _ in 0..depth {
        b.push(Inst::Drop);
    }
    b.push(Inst::Halt);
    b.finish().expect("straight-line program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_vm::{exec, Machine};

    #[test]
    fn walk_runs_and_drains() {
        let p = random_walk_program(&RandomWalkConfig {
            steps: 10_000,
            ..RandomWalkConfig::default()
        });
        let mut m = Machine::with_memory(64);
        let out = exec::run(&p, &mut m, 1_000_000).unwrap();
        assert!(out.executed >= 10_000);
        assert!(m.stack().is_empty());
    }

    #[test]
    fn walk_is_deterministic() {
        let c = RandomWalkConfig {
            steps: 5_000,
            ..RandomWalkConfig::default()
        };
        assert_eq!(random_walk_program(&c), random_walk_program(&c));
        let c2 = RandomWalkConfig { seed: 7, ..c };
        assert_ne!(random_walk_program(&c), random_walk_program(&c2));
    }

    #[test]
    fn push_probability_shapes_the_walk() {
        // a pushier walk produces a longer program (more drains at the end
        // is not the point; same length) — instead check instruction mix
        let heavy = random_walk_program(&RandomWalkConfig {
            steps: 10_000,
            push_probability: 0.9,
            seed: 1,
        });
        let pushes = heavy
            .insts()
            .iter()
            .filter(|i| matches!(i, Inst::Lit(_)))
            .count();
        assert!(pushes > 8_000);
    }

    #[test]
    #[should_panic(expected = "push_probability")]
    fn invalid_probability_panics() {
        let _ = random_walk_program(&RandomWalkConfig {
            steps: 10,
            push_probability: 1.5,
            seed: 0,
        });
    }
}
