\ `cross` workload: a cross-compiler image generator.
\
\ Stands in for the paper's `cross` benchmark (a cross-compiler producing
\ a Forth image for a machine with different byte order): it byte-swaps
\ every cell of a source image into a target image, applies a relocation
\ pass, and prints a checksum. Factored into small words like a real
\ cross-compiler's code generator would be. The host injects the source
\ cells into `imgsrc` and the cell count into `n-items`.

create imgsrc 131072 allot
create imgdst 131072 allot
variable n-items
variable checksum

: src-cell ( i -- addr ) cells imgsrc + ;
: dst-cell ( i -- addr ) cells imgdst + ;
: get-byte ( addr i -- c ) + c@ ;
: mirror ( i -- j ) 7 swap - ;
: put-mirrored ( c addr i -- ) mirror + c! ;
: move-byte ( a1 a2 i -- a1 a2 )
  >r over r@ get-byte over r> put-mirrored ;
: bswap-cell ( a1 a2 -- )
  8 0 do i move-byte loop 2drop ;
: cross-cell ( i -- ) dup src-cell swap dst-cell bswap-cell ;
: byteswap-pass ( -- )
  n-items @ 0 ?do i cross-cell loop ;

: biased ( x -- x' ) dup 1 and if 4096 + then ;
: note ( x -- x ) dup checksum @ xor checksum ! ;
: reloc-cell ( i -- )
  dst-cell dup @ biased note swap ! ;
: relocate-pass ( -- )
  n-items @ 0 ?do i reloc-cell loop ;

: main
  0 checksum !
  byteswap-pass
  relocate-pass
  checksum @ . n-items @ . ;
