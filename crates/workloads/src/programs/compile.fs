\ `compile` workload: a Forth-in-Forth mini-compiler.
\
\ Stands in for the paper's `compile` benchmark (interpreting/compiling a
\ 1800-line program): it tokenizes a source text, looks every token up in
\ a dictionary with linear search and string comparison, recognizes
\ numbers, and emits threaded code into an object buffer. The input text
\ is injected by the host into `src` / `src-len`. Factored into small
\ words, as idiomatic Forth is — the call/return density matters for the
\ measurements (Fig. 20).

create src 262144 allot
variable src-len
create obj 262144 allot
variable obj-ptr
variable n-tokens
variable n-numbers
variable n-unknown

\ dictionary: [name-addr name-len code] triplets, built at load time
create dicttab 96 cells allot
variable n-words
: add-word ( addr u code -- )
  n-words @ 3 * cells dicttab +
  dup >r 2 cells + ! r>
  dup >r cell+ ! r> !
  n-words @ 1+ n-words ! ;

s" dup"    1 add-word
s" drop"   2 add-word
s" swap"   3 add-word
s" over"   4 add-word
s" rot"    5 add-word
s" +"      6 add-word
s" -"      7 add-word
s" *"      8 add-word
s" /"      9 add-word
s" @"     10 add-word
s" !"     11 add-word
s" if"    12 add-word
s" then"  13 add-word
s" else"  14 add-word
s" begin" 15 add-word
s" until" 16 add-word
s" :"     17 add-word
s" ;"     18 add-word
s" emit"  19 add-word
s" ."     20 add-word

: src-char ( i -- c ) src + c@ ;
: in-src? ( i -- flag ) src-len @ < ;
: blank? ( c -- flag ) 33 < ;
: blank-at? ( i -- flag ) dup in-src? if src-char blank? else drop false then ;
: token-at? ( i -- flag ) dup in-src? if src-char blank? 0= else drop false then ;

: skip-blanks ( i -- i' ) begin dup blank-at? while 1+ repeat ;
: scan-end ( i -- j ) begin dup token-at? while 1+ repeat ;

: nth-differ? ( a1 a2 i -- a1 a2 flag )
  >r over r@ + c@ over r> + c@ <> ;
: str= ( a1 u1 a2 u2 -- flag )
  rot over <> if 2drop drop false exit then
  ( a1 a2 u )
  0 ?do
    i nth-differ? if 2drop false unloop exit then
  loop 2drop true ;

: entry ( n -- eb ) 3 * cells dicttab + ;
: entry-name ( eb -- addr u ) dup @ swap cell+ @ ;
: entry-code ( eb -- code ) 2 cells + @ ;
: match? ( addr u n -- flag ) entry entry-name str= ;

: lookup ( addr u -- code flag )
  n-words @ 0 ?do
    2dup i match? if 2drop i entry entry-code true unloop exit then
  loop 2drop 0 false ;

: accumulate ( acc c -- acc' ) 48 - swap 10 * + ;
: number? ( addr u -- n flag | -- flag )
  0 -rot
  dup 0= if 2drop drop false exit then
  begin dup 0> while
    over c@ dup digit? 0= if drop 2drop drop false exit then
    >r rot r> accumulate -rot
    1- swap char+ swap
  repeat 2drop true ;

: emit-code ( x -- ) obj-ptr @ obj + ! obj-ptr @ cell+ obj-ptr ! ;
: note-word ( code -- ) emit-code 1 n-tokens +! ;
: note-number ( n -- ) 1000 + emit-code 1 n-numbers +! ;
: note-unknown ( -- ) 1 n-unknown +! ;

: compile-token ( addr u -- )
  2dup lookup if >r 2drop r> note-word exit then drop
  2dup number? if >r 2drop r> note-number exit then
  2drop note-unknown ;

variable tok-start
: token-bounds ( i -- j addr u )
  dup tok-start ! scan-end dup tok-start @ - tok-start @ src + swap ;
: compile-src ( -- )
  0 obj-ptr ! 0 n-tokens ! 0 n-numbers ! 0 n-unknown !
  0
  begin skip-blanks dup in-src? while
    token-bounds compile-token
  repeat drop ;

: obj-checksum ( -- x )
  0 obj-ptr @ 8 / 0 ?do obj i cells + @ xor loop ;

: main
  compile-src
  n-tokens @ . n-numbers @ . n-unknown @ . obj-checksum . ;
