\ `gray` workload: a recursive-descent expression parser/evaluator.
\
\ Stands in for the paper's `gray` benchmark (a parser generator run on an
\ Oberon grammar): like the original it "performs a graph walk using
\ recursion" — every grammar node is a (mutually recursive) call, so the
\ call/return density is high. The host injects an expression text of the
\ grammar  expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
\ factor := number | '(' expr ')'  into `src` / `src-len`, with
\ expressions separated by ';'.

create src 262144 allot
variable src-len
variable pos
variable n-nodes

: peek ( -- c ) pos @ dup src-len @ < if src + c@ else drop 0 then ;
: advance ( -- ) pos @ 1+ pos ! ;

defer expr

: number ( -- n )
  0
  begin peek digit? while
    peek 48 - swap 10 * +
    advance
  repeat
  1 n-nodes +! ;

: factor ( -- n )
  peek 40 = if            \ '('
    advance expr advance  \ skip ')'
  else
    number
  then
  1 n-nodes +! ;

: term ( -- n )
  factor
  begin peek 42 = while   \ '*'
    advance factor *
    1 n-nodes +!
  repeat ;

: more? ( -- c flag ) peek dup 43 = over 45 = or ;  \ '+' or '-'

: expr-impl ( -- n )
  term
  begin more? while       \ ( n c )
    advance term          \ ( n c m )
    swap 43 = if + else - then
    1 n-nodes +!
  repeat drop ;

' expr-impl is expr

: main
  0 pos ! 0 n-nodes !
  0
  begin pos @ src-len @ < while
    expr +
    peek 59 = if advance then  \ ';'
  repeat
  . n-nodes @ . ;
