\ `prims2x` workload: a text filter generating C code from a primitive
\ specification.
\
\ Stands in for the paper's `prims2x` benchmark (the filter that turns
\ Forth primitive specifications into C). The host injects spec lines of
\ the form  `name <inputs> <outputs>\n`  into `src` / `src-len`; for each
\ line the filter emits a C function skeleton, upper-casing the name —
\ character-at-a-time input scanning and output generation dominate.

create src 262144 allot
variable src-len
variable pos
variable n-prims
variable in-n
variable out-n

: peek ( -- c ) pos @ dup src-len @ < if src + c@ else drop 0 then ;
: advance ( -- ) pos @ 1+ pos ! ;
: at-end? ( -- flag ) pos @ src-len @ >= ;
: take ( -- c ) peek advance ;

: upper ( c -- C )
  dup 97 >= over 122 <= and if 32 - then ;
: emit-upper ( c -- ) upper emit ;
: emit-name ( addr u -- )
  0 ?do dup i + c@ emit-upper loop drop ;

: wordchar? ( -- flag )
  at-end? if false exit then
  peek dup 32 <> swap 10 <> and ;
: scan-word ( -- addr u )
  pos @ src + 0
  begin wordchar? while advance 1+ repeat ;
: skip-spaces ( -- ) begin peek 32 = while advance repeat ;
: skip-line-end ( -- ) peek 10 = if advance then ;

: accumulate ( acc c -- acc' ) 48 - swap 10 * + ;
: read-num ( -- n )
  0 begin peek digit? while take accumulate repeat ;

: header ( addr u -- )
  s" void prim_" type emit-name s" (void) {" type cr ;
: arg-line ( i -- )
  s"   int a" type dup . s" = sp[" type . s" ];" type cr ;
: sp-line ( -- )
  s"   sp += " type in-n @ out-n @ - . s" ;" type cr ;
: result-line ( i -- )
  s"   sp[" type . s" ] = a0;" type cr ;
: footer ( -- ) s" }" type cr ;

: gen-prim ( -- )
  scan-word                 ( addr u )
  skip-spaces read-num in-n !
  skip-spaces read-num out-n !
  skip-line-end
  header
  in-n @ 0 ?do i arg-line loop
  sp-line
  out-n @ 0 ?do i result-line loop
  footer
  1 n-prims +! ;

: main
  0 pos ! 0 n-prims !
  begin at-end? 0= while gen-prim repeat
  n-prims @ . ;
