//! Benchmark workloads for the stack-caching reproduction.
//!
//! The paper's evaluation (Section 6, Fig. 20) instruments four real-world
//! Forth programs: `compile` (interpreting/compiling a 1800-line program),
//! `gray` (a parser generator on an Oberon grammar), `prims2x` (a text
//! filter generating C from primitive specifications) and `cross` (a
//! cross-compiler producing a byte-swapped image). Those applications and
//! the raw data are no longer available, so this crate provides
//! *shape-preserving replacements* written in the `stackcache-forth`
//! dialect with deterministic, seeded inputs:
//!
//! * [`compile_workload`] — a Forth-in-Forth mini-compiler (tokenize,
//!   dictionary lookup with string comparison, code emission),
//! * [`gray_workload`] — a recursive-descent expression parser (call/
//!   return-dense, like the original's recursive graph walk),
//! * [`prims2x_workload`] — a character-level text filter emitting C
//!   skeletons,
//! * [`cross_workload`] — a byte-swapping image cross-compiler.
//!
//! [`random_walk_program`] additionally generates the synthetic push/pop
//! traces of the Hasegawa–Shigei random-walk model `[HS85]`, which the
//! paper contrasts with real program behaviour.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod randomwalk;

pub use randomwalk::{random_walk_program, RandomWalkConfig};

use stackcache_forth::{Forth, Image};
use stackcache_vm::{exec, Cell, ExecObserver, Machine, Outcome, Rng, VmError};

/// Workload input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick inputs for tests (tens of thousands of instructions).
    Small,
    /// Full inputs for experiments (millions of instructions).
    Full,
}

impl Scale {
    fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Full => 24,
        }
    }
}

/// A ready-to-run benchmark workload: a compiled Forth image and its name.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (`compile`, `gray`, `prims2x`, `cross`).
    pub name: &'static str,
    /// The compiled image (program + initialized data space).
    pub image: Image,
}

impl Workload {
    /// Execution budget that comfortably covers the workload.
    #[must_use]
    pub fn fuel(&self) -> u64 {
        500_000_000
    }

    /// Run on the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any trap (workloads are trap-free by
    /// construction; a trap indicates a bug).
    pub fn run_reference(&self) -> Result<(Machine, Outcome), VmError> {
        let mut m = self.image.machine();
        let out = exec::run(&self.image.program, &mut m, self.fuel())?;
        Ok((m, out))
    }

    /// Run on the reference interpreter with an instrumentation observer.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any trap.
    pub fn run_with_observer<O: ExecObserver + ?Sized>(
        &self,
        observer: &mut O,
    ) -> Result<(Machine, Outcome), VmError> {
        let mut m = self.image.machine();
        let out = exec::run_with_observer(&self.image.program, &mut m, self.fuel(), observer)?;
        Ok((m, out))
    }
}

/// All four workloads of the paper's Fig. 20, in paper order.
///
/// # Panics
///
/// Panics if a workload fails to build (a bug — inputs are deterministic).
#[must_use]
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        compile_workload(scale),
        gray_workload(scale),
        prims2x_workload(scale),
        cross_workload(scale),
    ]
}

fn build(name: &'static str, source: &str, inject: impl FnOnce(&mut Forth)) -> Workload {
    let mut forth = Forth::new();
    forth
        .interpret(source)
        .unwrap_or_else(|e| panic!("workload `{name}` fails to load: {e}"));
    inject(&mut forth);
    let image = forth
        .image("main")
        .unwrap_or_else(|e| panic!("workload `{name}` lacks main: {e}"));
    Workload { name, image }
}

fn poke_input(forth: &mut Forth, text: &[u8]) {
    let src = forth.constant_value("src").expect("workload defines src");
    let len = forth
        .constant_value("src-len")
        .expect("workload defines src-len");
    assert!(forth.poke_bytes(src, text), "input fits the src buffer");
    assert!(forth.poke_cell(len, text.len() as Cell));
}

/// The `compile` workload: a Forth-in-Forth mini-compiler compiling a
/// generated source text (see the crate docs).
///
/// # Panics
///
/// Panics if the embedded Forth source fails to build (a bug).
#[must_use]
pub fn compile_workload(scale: Scale) -> Workload {
    const VOCAB: &[&str] = &[
        "dup", "drop", "swap", "over", "rot", "+", "-", "*", "/", "@", "!", "if", "then", "else",
        "begin", "until", "emit", ".",
    ];
    let mut rng = Rng::new(0x5EED_C0FF_EE01);
    let lines = 90 * scale.factor();
    let mut text = String::new();
    for i in 0..lines {
        text.push_str(": w");
        text.push_str(&i.to_string());
        text.push(' ');
        let tokens = rng.range(4, 10);
        for _ in 0..tokens {
            match rng.range(0, 10) {
                0..=6 => {
                    text.push_str(VOCAB[rng.range(0, VOCAB.len())]);
                }
                7 | 8 => {
                    text.push_str(&rng.range(0, 1000).to_string());
                }
                _ => text.push_str("zzz"),
            }
            text.push(' ');
        }
        text.push_str(";\n");
    }
    build("compile", include_str!("programs/compile.fs"), |forth| {
        poke_input(forth, text.as_bytes());
    })
}

/// The `gray` workload: a recursive-descent parser over generated nested
/// expressions (call/return heavy, like the original's recursive grammar
/// walk).
///
/// # Panics
///
/// Panics if the embedded Forth source fails to build (a bug).
#[must_use]
pub fn gray_workload(scale: Scale) -> Workload {
    fn gen_expr(rng: &mut Rng, depth: u32, out: &mut String) {
        if depth == 0 || rng.range(0, 10) < 3 {
            out.push_str(&rng.range(1, 100).to_string());
            return;
        }
        out.push('(');
        gen_expr(rng, depth - 1, out);
        out.push(match rng.range(0, 3) {
            0 => '+',
            1 => '-',
            _ => '*',
        });
        gen_expr(rng, depth - 1, out);
        out.push(')');
    }
    let mut rng = Rng::new(0x5EED_C0FF_EE02);
    let exprs = 28 * scale.factor();
    let mut text = String::new();
    for _ in 0..exprs {
        gen_expr(&mut rng, 6, &mut text);
        text.push(';');
    }
    build("gray", include_str!("programs/gray.fs"), |forth| {
        poke_input(forth, text.as_bytes());
    })
}

/// The `prims2x` workload: a text filter generating C skeletons from
/// primitive specifications.
///
/// # Panics
///
/// Panics if the embedded Forth source fails to build (a bug).
#[must_use]
pub fn prims2x_workload(scale: Scale) -> Workload {
    const SYLLABLES: &[&str] = &[
        "add", "sub", "fetch", "store", "br", "lit", "du", "pi", "xo",
    ];
    let mut rng = Rng::new(0x5EED_C0FF_EE03);
    let prims = 110 * scale.factor();
    let mut text = String::new();
    for _ in 0..prims {
        let syl = rng.range(1, 4);
        for _ in 0..syl {
            text.push_str(SYLLABLES[rng.range(0, SYLLABLES.len())]);
        }
        text.push(' ');
        text.push_str(&rng.range(0, 5).to_string());
        text.push(' ');
        text.push_str(&rng.range(0, 4).to_string());
        text.push('\n');
    }
    build("prims2x", include_str!("programs/prims2x.fs"), |forth| {
        poke_input(forth, text.as_bytes());
    })
}

/// The `cross` workload: byte-swapping image generation with a relocation
/// pass.
///
/// # Panics
///
/// Panics if the embedded Forth source fails to build (a bug).
#[must_use]
pub fn cross_workload(scale: Scale) -> Workload {
    let mut rng = Rng::new(0x5EED_C0FF_EE04);
    let items = 500 * scale.factor();
    build("cross", include_str!("programs/cross.fs"), |forth| {
        let src = forth
            .constant_value("imgsrc")
            .expect("cross defines imgsrc");
        let n = forth
            .constant_value("n-items")
            .expect("cross defines n-items");
        for i in 0..items {
            let v: i64 = rng.next_i64();
            assert!(forth.poke_cell(src + (i as Cell) * 8, v));
        }
        assert!(forth.poke_cell(n, items as Cell));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackcache_core::interp::{compile_static, run_dyncache, run_staticcache};
    use stackcache_core::regime::SimpleRegime;
    use stackcache_vm::interp::{run_baseline, run_tos};
    use stackcache_vm::verify;

    #[test]
    fn workloads_build_verify_and_run() {
        for w in all_workloads(Scale::Small) {
            verify(&w.image.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let (m, out) = w
                .run_reference()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                out.executed > 10_000,
                "{}: only {} instructions",
                w.name,
                out.executed
            );
            assert!(!m.output().is_empty(), "{}: no output", w.name);
            assert!(
                m.stack().is_empty(),
                "{}: stack not empty: {:?}",
                w.name,
                m.stack()
            );
            assert!(m.rstack().is_empty(), "{}: rstack not empty", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for (a, b) in all_workloads(Scale::Small)
            .into_iter()
            .zip(all_workloads(Scale::Small))
        {
            let (ma, _) = a.run_reference().unwrap();
            let (mb, _) = b.run_reference().unwrap();
            assert_eq!(ma.output(), mb.output(), "{}", a.name);
        }
    }

    #[test]
    fn all_interpreters_agree_on_workloads() {
        for w in all_workloads(Scale::Small) {
            let (m_ref, _) = w.run_reference().unwrap();
            let expected = m_ref.output_string();

            let mut m = w.image.machine();
            run_baseline(&w.image.program, &mut m, w.fuel()).unwrap();
            assert_eq!(m.output_string(), expected, "{}: baseline", w.name);

            let mut m = w.image.machine();
            run_tos(&w.image.program, &mut m, w.fuel()).unwrap();
            assert_eq!(m.output_string(), expected, "{}: tos", w.name);

            let mut m = w.image.machine();
            run_dyncache(&w.image.program, &mut m, w.fuel()).unwrap();
            assert_eq!(m.output_string(), expected, "{}: dyncache", w.name);

            for c in 0..=3u8 {
                let exe = compile_static(&w.image.program, c);
                let mut m = w.image.machine();
                run_staticcache(&exe, &mut m, w.fuel()).unwrap();
                assert_eq!(m.output_string(), expected, "{}: static c={c}", w.name);
            }

            use stackcache_vm::fusion::{
                fuse, run_fused, run_quickened, FusionPlan, Quickened, DEFAULT_TOP_K,
            };
            let plan = FusionPlan::static_default(&w.image.program, DEFAULT_TOP_K);
            let fused = fuse(&w.image.program, &plan);
            let mut m = w.image.machine();
            run_fused(&fused, &mut m, w.fuel()).unwrap();
            assert_eq!(m.output_string(), expected, "{}: fused", w.name);

            let quick = Quickened::new(fused);
            let mut m = w.image.machine();
            run_quickened(&quick, &mut m, w.fuel()).unwrap();
            assert_eq!(m.output_string(), expected, "{}: quickened", w.name);
        }
    }

    #[test]
    fn gray_is_call_heavy() {
        // The paper notes every 3rd-4th instruction across the suite is a
        // call or return; gray (recursion) is the densest.
        let w = gray_workload(Scale::Small);
        let mut r = SimpleRegime::new();
        w.run_with_observer(&mut r).unwrap();
        let calls_and_returns = 2.0 * r.counts.calls as f64 / r.counts.insts as f64;
        assert!(
            calls_and_returns > 0.15,
            "gray calls+returns per instruction = {calls_and_returns}"
        );
    }

    #[test]
    fn workload_profiles_resemble_fig20() {
        // Fig. 20: loads/inst 0.69-0.76, updates/inst 0.43-0.55 across the
        // four programs. Our replacements should land in the same region.
        for w in all_workloads(Scale::Small) {
            let mut r = SimpleRegime::new();
            w.run_with_observer(&mut r).unwrap();
            let loads = r.counts.loads as f64 / r.counts.insts as f64;
            let updates = r.counts.updates as f64 / r.counts.insts as f64;
            assert!(
                loads > 0.4 && loads < 1.1,
                "{}: loads/inst {loads} far from the paper's range",
                w.name
            );
            assert!(
                updates > 0.3 && updates < 0.9,
                "{}: updates/inst {updates} far from the paper's range",
                w.name
            );
        }
    }

    #[test]
    fn depth_analysis_classifies_workload_words() {
        use stackcache_vm::depth::{analyze, WordEffect};
        // prims2x and cross use fixed-arity words throughout: the
        // analysis proves their stack discipline.
        for w in [prims2x_workload(Scale::Small), cross_workload(Scale::Small)] {
            let analysis = analyze(&w.image.program);
            assert!(analysis.is_consistent(), "{}", w.name);
            assert_eq!(
                analysis.effect_of(w.image.program.entry()),
                Some(WordEffect::Net {
                    net: 0,
                    consumes: 0
                }),
                "{}",
                w.name
            );
        }
        // compile uses the classic variable-arity idiom
        // ( addr u -- n true | false ) in `number?`/`lookup` consumers;
        // the analysis correctly flags that word and its callers.
        let w = compile_workload(Scale::Small);
        let analysis = analyze(&w.image.program);
        assert!(
            !analysis.is_consistent(),
            "number? is variable-arity by design"
        );
        // gray goes through `defer`red execution tokens: unknowable.
        let w = gray_workload(Scale::Small);
        let analysis = analyze(&w.image.program);
        assert!(analysis
            .words
            .values()
            .any(|e| matches!(e, WordEffect::Unknown)));
    }

    #[test]
    fn full_scale_is_larger() {
        // Build only; running full scale is the harness's job.
        let small = compile_workload(Scale::Small);
        let full = compile_workload(Scale::Full);
        assert!(full.image.memory.len() >= small.image.memory.len());
    }
}
