//! Randomized validation of the Forth compiler: seeded random arithmetic
//! expression trees are rendered to Forth source, compiled, executed on
//! the VM, and compared against a direct Rust evaluation. The generator
//! is driven by the workspace's deterministic [`Rng`], so every run tests
//! the same corpus and a failure message pins the reproducing seed.

use stackcache_forth::compile_source;
use stackcache_vm::Rng;

/// A tiny expression AST with Forth-representable operations.
#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Abs(Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Num(n) => *n,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::Min(a, b) => a.eval().min(b.eval()),
            Expr::Max(a, b) => a.eval().max(b.eval()),
            Expr::Neg(a) => a.eval().wrapping_neg(),
            Expr::Abs(a) => a.eval().wrapping_abs(),
        }
    }

    /// Postfix (Forth) rendering.
    fn to_forth(&self, out: &mut String) {
        match self {
            Expr::Num(n) => {
                out.push_str(&n.to_string());
                out.push(' ');
            }
            Expr::Add(a, b) => Self::binary(a, b, "+", out),
            Expr::Sub(a, b) => Self::binary(a, b, "-", out),
            Expr::Mul(a, b) => Self::binary(a, b, "*", out),
            Expr::Min(a, b) => Self::binary(a, b, "min", out),
            Expr::Max(a, b) => Self::binary(a, b, "max", out),
            Expr::Neg(a) => {
                a.to_forth(out);
                out.push_str("negate ");
            }
            Expr::Abs(a) => {
                a.to_forth(out);
                out.push_str("abs ");
            }
        }
    }

    fn binary(a: &Expr, b: &Expr, op: &str, out: &mut String) {
        a.to_forth(out);
        b.to_forth(out);
        out.push_str(op);
        out.push(' ');
    }
}

/// A random expression tree of bounded depth.
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.range(0, 4) == 0 {
        return Expr::Num(rng.range_i64(-10_000, 10_000));
    }
    match rng.range(0, 7) {
        0 => {
            let (l, r) = (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1));
            Expr::Add(l.into(), r.into())
        }
        1 => {
            let (l, r) = (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1));
            Expr::Sub(l.into(), r.into())
        }
        2 => {
            let (l, r) = (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1));
            Expr::Mul(l.into(), r.into())
        }
        3 => {
            let (l, r) = (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1));
            Expr::Min(l.into(), r.into())
        }
        4 => {
            let (l, r) = (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1));
            Expr::Max(l.into(), r.into())
        }
        5 => Expr::Neg(gen_expr(rng, depth - 1).into()),
        _ => Expr::Abs(gen_expr(rng, depth - 1).into()),
    }
}

#[test]
fn forth_evaluates_expressions_like_rust() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xE1_0000 + seed);
        let expr = gen_expr(&mut rng, 6);
        let mut body = String::new();
        expr.to_forth(&mut body);
        let src = format!(": main {body} ;");
        let image = compile_source(&src, "main")
            .unwrap_or_else(|e| panic!("seed {seed}: expression fails to compile: {e}\n{src}"));
        let machine = image
            .run(10_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            machine.stack(),
            &[expr.eval()],
            "seed {seed}, source: {src}"
        );
    }
}

#[test]
fn load_time_and_run_time_agree() {
    for seed in 0..64u64 {
        // evaluating at load time (interpret mode) must give the same
        // value as compiling into a word and running on the VM
        let mut rng = Rng::new(0xE2_0000 + seed);
        let expr = gen_expr(&mut rng, 6);
        let mut body = String::new();
        expr.to_forth(&mut body);
        let mut forth = stackcache_forth::Forth::new();
        forth
            .interpret(&body)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let loadtime = *forth.machine().stack().last().expect("value");
        assert_eq!(loadtime, expr.eval(), "seed {seed}");
    }
}

/// The lexer never panics and never loses non-comment words.
#[test]
fn lexer_is_total() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(0xE3_0000 + seed);
        let len = rng.range(0, 201);
        let src: String = (0..len)
            .map(|_| match rng.range(0, 20) {
                0 => '\n',
                1 => '\t',
                _ => char::from(rng.range(0x20, 0x7F) as u8),
            })
            .collect();
        match stackcache_forth::lexer::tokenize(&src) {
            Ok(tokens) => {
                for t in tokens {
                    assert!(!t.text.is_empty(), "seed {seed}: {src:?}");
                    assert!(t.line >= 1, "seed {seed}: {src:?}");
                }
            }
            Err(line) => assert!(line >= 1, "seed {seed}: {src:?}"),
        }
    }
}

/// Number parsing agrees with Rust's on plain decimals.
#[test]
fn parse_number_decimal() {
    let mut rng = Rng::new(0xE4_0000);
    for n in (0..256)
        .map(|_| rng.next_i64())
        .chain([0, 1, -1, i64::MAX, i64::MIN])
    {
        assert_eq!(
            stackcache_forth::lexer::parse_number(&n.to_string()),
            Some(n)
        );
    }
}
