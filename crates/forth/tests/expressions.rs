//! Property-based validation of the Forth compiler: random arithmetic
//! expression trees are rendered to Forth source, compiled, executed on
//! the VM, and compared against a direct Rust evaluation.

use proptest::prelude::*;
use stackcache_forth::compile_source;

/// A tiny expression AST with Forth-representable operations.
#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Abs(Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Num(n) => *n,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::Min(a, b) => a.eval().min(b.eval()),
            Expr::Max(a, b) => a.eval().max(b.eval()),
            Expr::Neg(a) => a.eval().wrapping_neg(),
            Expr::Abs(a) => a.eval().wrapping_abs(),
        }
    }

    /// Postfix (Forth) rendering.
    fn to_forth(&self, out: &mut String) {
        match self {
            Expr::Num(n) => {
                out.push_str(&n.to_string());
                out.push(' ');
            }
            Expr::Add(a, b) => Self::binary(a, b, "+", out),
            Expr::Sub(a, b) => Self::binary(a, b, "-", out),
            Expr::Mul(a, b) => Self::binary(a, b, "*", out),
            Expr::Min(a, b) => Self::binary(a, b, "min", out),
            Expr::Max(a, b) => Self::binary(a, b, "max", out),
            Expr::Neg(a) => {
                a.to_forth(out);
                out.push_str("negate ");
            }
            Expr::Abs(a) => {
                a.to_forth(out);
                out.push_str("abs ");
            }
        }
    }

    fn binary(a: &Expr, b: &Expr, op: &str, out: &mut String) {
        a.to_forth(out);
        b.to_forth(out);
        out.push_str(op);
        out.push(' ');
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-10_000i64..10_000).prop_map(Expr::Num);
    leaf.prop_recursive(6, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Max(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
            inner.prop_map(|a| Expr::Abs(a.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forth_evaluates_expressions_like_rust(expr in arb_expr()) {
        let mut body = String::new();
        expr.to_forth(&mut body);
        let src = format!(": main {body} ;");
        let image = compile_source(&src, "main").expect("expression compiles");
        let machine = image.run(10_000_000).expect("expression runs");
        prop_assert_eq!(machine.stack(), &[expr.eval()], "source: {}", src);
    }

    #[test]
    fn load_time_and_run_time_agree(expr in arb_expr()) {
        // evaluating at load time (interpret mode) must give the same
        // value as compiling into a word and running on the VM
        let mut body = String::new();
        expr.to_forth(&mut body);
        let mut forth = stackcache_forth::Forth::new();
        forth.interpret(&body).expect("interprets");
        let loadtime = *forth.machine().stack().last().expect("value");
        prop_assert_eq!(loadtime, expr.eval());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics and never loses non-comment words.
    #[test]
    fn lexer_is_total(src in "[ -~\n\t]{0,200}") {
        match stackcache_forth::lexer::tokenize(&src) {
            Ok(tokens) => {
                for t in tokens {
                    prop_assert!(!t.text.is_empty());
                    prop_assert!(t.line >= 1);
                }
            }
            Err(line) => prop_assert!(line >= 1),
        }
    }

    /// Number parsing agrees with Rust's on plain decimals.
    #[test]
    fn parse_number_decimal(n in any::<i64>()) {
        prop_assert_eq!(stackcache_forth::lexer::parse_number(&n.to_string()), Some(n));
    }
}
