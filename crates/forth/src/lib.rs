//! A Forth front end for the stack-caching virtual machine.
//!
//! This crate is the substrate that stands in for the Forth system the
//! paper instrumented: a lexer, a dictionary, an outer interpreter with
//! genuine load-time execution, and a colon compiler producing
//! [`stackcache_vm::Program`]s. The benchmark workloads of
//! `stackcache-workloads` are written in this Forth dialect.
//!
//! Supported: colon definitions, `if/else/then`, `begin/until/again/
//! while/repeat`, `do/?do/loop/+loop` with `i j leave unloop`, `exit`,
//! `recurse`, `variable/constant/create/allot/,/c,`, strings (`s" ."`),
//! `char/[char]`, tick/`execute`, comments, and the full primitive set of
//! the VM. Not supported (out of scope for the reproduction):
//! `does>`, user-defined immediate words, and input parsing words.
//!
//! # Examples
//!
//! ```
//! use stackcache_forth::compile_source;
//!
//! let image = compile_source(
//!     ": fact dup 1 <= if drop 1 else dup 1- recurse * then ;
//!      : main 5 fact . ;",
//!     "main",
//! )?;
//! assert_eq!(image.run(100_000)?.output_string(), "120 ");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod compiler;
mod error;
pub mod lexer;

pub use compiler::{compile_source, Forth, Image, DEFAULT_DATA_SPACE};
pub use error::{ForthError, ForthErrorKind};
